//! Solver-search regression gate over the diverging sweep.
//!
//! Replays `diverging_program(k)` for k ≤ 6 on the destabilized
//! backend and enforces two invariants the CDCL work must never lose:
//!
//! 1. **Learning pays for itself**: with clause learning on, the
//!    solver must never *search more* — decisions with learning on
//!    must not exceed decisions with learning off at any k (the
//!    counters are deterministic, so this gate cannot flake) — and at
//!    the largest k, where search dominates the fixed pipeline cost,
//!    wall clock (best of `--repeat` runs, noise-resistant) must not
//!    exceed the no-learn run either. Small k are excluded from the
//!    wall-clock gate on purpose: their search difference is
//!    microseconds against a ~2ms parse/translate floor, so a timing
//!    comparison there measures the scheduler, not the solver.
//! 2. **Search cost never creeps**: the deterministic counters —
//!    `conflicts` under the CDCL core, `dpll_branches` under the
//!    legacy DPLL core — must stay within 10% of the checked-in
//!    baselines in `BASELINE_solver.json` at the repo root.
//!
//! Both counters are bit-deterministic (fixed VSIDS decay, smallest-
//! index tie-break, Luby restarts), so the 10% headroom is purely for
//! intentional heuristic tuning; run with `--write-baseline` after
//! such a change to re-pin the file, and commit it.
//!
//! Usage:
//!     solver_regression [--repeat N] [--baseline PATH] [--write-baseline]
//!
//! Exits 0 when every gate holds, 1 on a regression, 2 on usage error.

use daenerys_bench::run_backend_with;
use daenerys_idf::{diverging_program, Backend, SolverCore, VerifierConfig};
use daenerys_obs::parse_json;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

/// Sweep sizes: kept ≤ 6 so the gate stays cheap enough for every CI
/// run while still covering the exponential no-learn blow-up.
const KS: [usize; 3] = [2, 4, 6];

/// Allowed headroom over the baseline counters.
const HEADROOM: f64 = 1.10;

struct Row {
    k: usize,
    learn_best: Duration,
    none_best: Duration,
    learn_decisions: usize,
    none_decisions: usize,
    conflicts: usize,
    dpll_branches: usize,
}

fn main() {
    let mut repeat = 5usize;
    let mut baseline_path = default_baseline_path();
    let mut write_baseline = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--repeat" => {
                i += 1;
                repeat = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => usage("--repeat needs a positive integer"),
                };
            }
            "--baseline" => {
                i += 1;
                baseline_path = match args.get(i) {
                    Some(p) => PathBuf::from(p),
                    None => usage("--baseline needs a path"),
                };
            }
            "--write-baseline" => write_baseline = true,
            other => usage(&format!("unknown flag {}", other)),
        }
        i += 1;
    }

    let rows: Vec<Row> = KS.iter().map(|&k| measure(k, repeat)).collect();
    println!("solver regression sweep (best of {} runs)\n", repeat);
    println!("   k |  µs_lrn µs_none | dec_lrn dec_none |  confl br_dpll");
    println!("  {}", "-".repeat(58));
    for r in &rows {
        println!(
            "  {:>2} | {:>7.1} {:>7.1} | {:>7} {:>8} | {:>6} {:>7}",
            r.k,
            r.learn_best.as_secs_f64() * 1e6,
            r.none_best.as_secs_f64() * 1e6,
            r.learn_decisions,
            r.none_decisions,
            r.conflicts,
            r.dpll_branches,
        );
    }

    if write_baseline {
        let body = render_baseline(&rows);
        std::fs::write(&baseline_path, body).expect("write baseline");
        println!("\nbaseline written to {}", baseline_path.display());
        return;
    }

    let mut failures = Vec::new();
    for r in &rows {
        if r.learn_decisions > r.none_decisions {
            failures.push(format!(
                "k={}: learning searches more than no-learn ({} > {} decisions)",
                r.k, r.learn_decisions, r.none_decisions,
            ));
        }
    }
    // Wall clock only where search dominates the fixed pipeline cost.
    if let Some(r) = rows.last() {
        if r.learn_best > r.none_best {
            failures.push(format!(
                "k={}: learning is slower than no-learn ({:.1}µs > {:.1}µs)",
                r.k,
                r.learn_best.as_secs_f64() * 1e6,
                r.none_best.as_secs_f64() * 1e6,
            ));
        }
    }
    match read_baseline(&baseline_path) {
        Some(baseline) => {
            for r in &rows {
                let Some((_, conflicts, branches)) = baseline.iter().copied().find(|b| b.0 == r.k)
                else {
                    failures.push(format!("k={}: missing from the baseline file", r.k));
                    continue;
                };
                check_counter(&mut failures, r.k, "conflicts", r.conflicts, conflicts);
                check_counter(
                    &mut failures,
                    r.k,
                    "dpll_branches",
                    r.dpll_branches,
                    branches,
                );
            }
        }
        None => failures.push(format!(
            "cannot read baseline {} (regenerate with --write-baseline)",
            baseline_path.display()
        )),
    }

    if failures.is_empty() {
        println!("\nall solver-regression gates hold");
    } else {
        eprintln!();
        for f in &failures {
            eprintln!("REGRESSION: {}", f);
        }
        exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("solver_regression: {}", msg);
    eprintln!("usage: solver_regression [--repeat N] [--baseline PATH] [--write-baseline]");
    exit(2);
}

/// The committed baseline lives next to `BENCH_verifier.json` at the
/// repo root, two levels above this crate.
fn default_baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BASELINE_solver.json")
}

/// One sweep size: best-of-N wall clock for learn vs. no-learn under
/// the CDCL core, plus the deterministic search counters for both
/// cores (memo caches off so the counters measure raw search).
fn measure(k: usize, repeat: usize) -> Row {
    let src = diverging_program(k);
    let base = VerifierConfig {
        cache: false,
        ..VerifierConfig::default()
    };
    let learn_cfg = base.clone();
    let none_cfg = VerifierConfig {
        learn: false,
        ..base.clone()
    };
    let dpll_cfg = VerifierConfig {
        solver: SolverCore::Dpll,
        ..base.clone()
    };
    let learn_best = best_of(&src, &learn_cfg, repeat);
    let none_best = best_of(&src, &none_cfg, repeat);
    let counted = run_backend_with(&src, Backend::Destabilized, learn_cfg);
    let no_learn = run_backend_with(&src, Backend::Destabilized, none_cfg);
    let dpll = run_backend_with(&src, Backend::Destabilized, dpll_cfg);
    Row {
        k,
        learn_best,
        none_best,
        learn_decisions: counted.total(|s| s.solver_branches),
        none_decisions: no_learn.total(|s| s.solver_branches),
        conflicts: counted.total(|s| s.solver_conflicts),
        dpll_branches: dpll.total(|s| s.solver_branches),
    }
}

/// Minimum wall clock over `repeat` runs after one untimed warmup —
/// the minimum is the standard noise-resistant statistic for a
/// deterministic workload.
fn best_of(src: &str, cfg: &VerifierConfig, repeat: usize) -> Duration {
    let _ = run_backend_with(src, Backend::Destabilized, cfg.clone());
    (0..repeat)
        .map(|_| run_backend_with(src, Backend::Destabilized, cfg.clone()).time)
        .min()
        .expect("repeat > 0")
}

fn check_counter(failures: &mut Vec<String>, k: usize, name: &str, got: usize, base: usize) {
    let limit = (base as f64 * HEADROOM).floor() as usize;
    if got > limit {
        failures.push(format!(
            "k={}: {} regressed {} -> {} (>10% over baseline)",
            k, name, base, got
        ));
    }
}

fn render_baseline(rows: &[Row]) -> String {
    let cases: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"k\": {}, \"conflicts\": {}, \"dpll_branches\": {}}}",
                r.k, r.conflicts, r.dpll_branches
            )
        })
        .collect();
    format!("{{\"cases\": [{}]}}\n", cases.join(", "))
}

/// Parses the baseline into `(k, conflicts, dpll_branches)` triples.
fn read_baseline(path: &std::path::Path) -> Option<Vec<(usize, usize, usize)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = parse_json(text.trim()).ok()?;
    let cases = json.as_obj()?.get("cases")?.as_arr()?;
    let mut out = Vec::with_capacity(cases.len());
    for case in cases {
        let obj = case.as_obj()?;
        let num = |key: &str| -> Option<usize> { Some(obj.get(key)?.as_num()? as usize) };
        out.push((num("k")?, num("conflicts")?, num("dpll_branches")?));
    }
    Some(out)
}
