//! Writes a generated monorepo-scale corpus (see
//! `daenerys_bench::corpus`) to a source file, optionally with one
//! scripted edit applied — the driver the `cli-smoke` CI lane uses to
//! stage `daenerys watch --once` runs: emit the base corpus, verify it
//! cold, overwrite the file with `--edit leaf-body`, and assert the
//! warm pass re-verifies exactly the ground-truth cone.
//!
//! ```text
//! corpus_gen --out FILE [--methods N] [--depth N] [--fan-out N]
//!            [--diamond PCT] [--seed N]
//!            [--edit leaf-body|hub-spec|spec-noop] [--print-expected]
//! corpus_gen --f1-dir DIR
//! ```
//!
//! With `--print-expected`, the ground-truth re-verification count for
//! the chosen edit (vs. the unedited corpus) is printed to stdout —
//! CI scripts capture it instead of hard-coding cone sizes.
//!
//! With `--f1-dir DIR`, the F1 evaluation corpus (the case-study suite
//! plus scaling/chain/diverging workloads) is written as `.idf` files
//! under `DIR/pos` (programs that verify) and `DIR/neg` (programs that
//! must be rejected) for front ends that consume files.

use daenerys_bench::corpus::{Corpus, CorpusSpec, Edit};
use daenerys_idf::{
    chain_program, diverging_program, negative_cases, positive_cases, scaling_program,
};
use std::path::{Path, PathBuf};

struct Options {
    spec: CorpusSpec,
    edit: Option<Edit>,
    out: Option<PathBuf>,
    f1_dir: Option<PathBuf>,
    print_expected: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: corpus_gen --out FILE [--methods N] [--depth N] [--fan-out N]\n\
         \x20                 [--diamond PCT] [--seed N]\n\
         \x20                 [--edit leaf-body|hub-spec|spec-noop] [--print-expected]\n\
         \x20      corpus_gen --f1-dir DIR"
    );
    std::process::exit(2);
}

/// Writes the F1 case-study and workload corpus as `.idf` files.
fn emit_f1(dir: &Path) {
    let pos = dir.join("pos");
    let neg = dir.join("neg");
    for d in [&pos, &neg] {
        std::fs::create_dir_all(d).unwrap_or_else(|e| {
            eprintln!("corpus_gen: cannot create {}: {}", d.display(), e);
            std::process::exit(1);
        });
    }
    let write = |dir: &Path, name: &str, src: &str| {
        let path = dir.join(format!("{name}.idf"));
        std::fs::write(&path, src).unwrap_or_else(|e| {
            eprintln!("corpus_gen: cannot write {}: {}", path.display(), e);
            std::process::exit(1);
        });
    };
    for case in positive_cases() {
        write(&pos, case.name, case.source);
    }
    for case in negative_cases() {
        write(&neg, case.name, case.source);
    }
    for n in [1usize, 8, 24] {
        write(&pos, &format!("scaling_{n}"), &scaling_program(n));
    }
    write(&pos, "chain_8", &chain_program(8));
    write(&pos, "diverging_6", &diverging_program(6));
    eprintln!("corpus_gen: wrote F1 corpus under {}", dir.display());
}

fn parse_options() -> Options {
    let mut opts = Options {
        spec: CorpusSpec::default(),
        edit: None,
        out: None,
        f1_dir: None,
        print_expected: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--print-expected" {
            opts.print_expected = true;
            i += 1;
            continue;
        }
        let value = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("corpus_gen: {} needs a value", flag);
            usage();
        });
        let num = |what: &str| -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("corpus_gen: {} wants {}, got {:?}", flag, what, value);
                usage();
            })
        };
        match flag {
            "--methods" => opts.spec.methods = num("a count"),
            "--depth" => opts.spec.depth = num("a layer count"),
            "--fan-out" => opts.spec.fan_out = num("a count"),
            "--diamond" => opts.spec.diamond_pct = num("a percentage") as u32,
            "--seed" => opts.spec.seed = num("a seed") as u64,
            "--out" => opts.out = Some(PathBuf::from(&value)),
            "--f1-dir" => opts.f1_dir = Some(PathBuf::from(&value)),
            "--edit" => {
                opts.edit = Some(match value.as_str() {
                    "leaf-body" => Edit::TouchLeafBody,
                    "hub-spec" => Edit::TouchHubSpec,
                    "spec-noop" => Edit::TouchSpecNoop,
                    other => {
                        eprintln!("corpus_gen: unknown edit {:?}", other);
                        usage();
                    }
                })
            }
            _ => {
                eprintln!("corpus_gen: unknown flag {:?}", flag);
                usage();
            }
        }
        i += 2;
    }
    opts
}

fn main() {
    let opts = parse_options();
    if let Some(dir) = &opts.f1_dir {
        emit_f1(dir);
        return;
    }
    let Some(out) = opts.out else {
        eprintln!("corpus_gen: --out is required");
        usage();
    };
    let corpus = Corpus::generate(opts.spec);
    let src = corpus.source(opts.edit);
    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    std::fs::write(&out, &src).unwrap_or_else(|e| {
        eprintln!("corpus_gen: cannot write {}: {}", out.display(), e);
        std::process::exit(1);
    });
    if opts.print_expected {
        match opts.edit {
            Some(edit) => println!("{}", corpus.expected_reverified(edit)),
            None => println!("{}", corpus.len()),
        }
    }
    eprintln!(
        "corpus_gen: wrote {} methods{} to {}",
        corpus.len(),
        opts.edit
            .map(|e| format!(" (edit: {})", e.name()))
            .unwrap_or_default(),
        out.display()
    );
}
