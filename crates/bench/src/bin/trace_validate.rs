//! Validates a JSONL trace file against the flight-recorder schema.
//!
//! Usage:
//!
//! ```text
//! cargo run -p daenerys-bench --bin trace_validate -- trace.jsonl
//! ```
//!
//! Every line must be a JSON object with exactly the keys
//! `fields`, `kind`, `name`, `seq`, `ts` (see
//! [`daenerys_obs::validate_event_line`]). Exits nonzero on the first
//! malformed line, printing its number and the schema violation. The
//! CI trace-smoke job runs this over the trace produced by
//! `tables --f1 --trace-out`.

use daenerys_obs::validate_event_line;

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: trace_validate <trace.jsonl>");
        std::process::exit(2);
    };
    let contents = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("trace_validate: cannot read {}: {}", path, e);
            std::process::exit(2);
        }
    };
    let mut lines = 0usize;
    for (i, line) in contents.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Err(e) = validate_event_line(line) {
            eprintln!("trace_validate: {}:{}: {}", path, i + 1, e);
            std::process::exit(1);
        }
        lines += 1;
    }
    if lines == 0 {
        eprintln!("trace_validate: {}: no events", path);
        std::process::exit(1);
    }
    println!("trace_validate: {}: {} events ok", path, lines);
}
