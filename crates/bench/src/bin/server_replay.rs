//! Replay driver: hammers a `daenerysd` daemon with the F1 corpus at
//! high concurrency, with and without the full wire-fault matrix, and
//! emits `BENCH_server.json`.
//!
//!     server_replay [--addr HOST:PORT] [--requests N] [--concurrency N]
//!                   [--chaos-seed SEED] [--out FILE] [--keep-store]
//!
//! Two passes over the same request corpus:
//!
//! 1. **fault-free** — clean wire, measuring baseline throughput and
//!    latency percentiles;
//! 2. **chaos** — [`WireFaultPlan::full`] on the client send path
//!    (torn frames, garbage headers, mid-request disconnects,
//!    slow-loris), with retry + exponential backoff + deterministic
//!    jitter.
//!
//! The run then enforces the chaos gate and exits non-zero if any leg
//! fails: every request completes in both passes, completed chaos
//! verdicts are bit-identical to the fault-free pass, and (when the
//! daemon runs in-process) zero leaked sessions, zero contained
//! panics, and an uncorrupted verdict store on reload.
//!
//! With `--addr` the driver replays against an externally started
//! daemon (the CI smoke job does this, asserting the daemon-side
//! invariants itself via `--metrics-out` and SIGTERM); without it the
//! driver embeds a fresh daemon per pass on an ephemeral port.
//!
//! Each pass also runs a **mid-run scraper**: a side thread polling the
//! `health` admin frame while the replay lanes hammer the daemon. Every
//! scrape must satisfy the admission conservation invariant
//! `admitted == completed + refused + in_flight` — a single violating
//! observation fails the gate. After the lanes drain, one final
//! `metrics` + `health` scrape records server-side phase attribution
//! (`daenerysd.phase_nanos`) and the per-tenant ledger into the
//! `server` block of `BENCH_server.json`.

use daenerys_idf::{chain_program, scaling_program, VerdictStore};
use daenerys_obs::{parse_json, Json};
use daenerysd::chaos::WireFaultPlan;
use daenerysd::client::{Client, RetryPolicy};
use daenerysd::protocol::{AdminRequest, Request, Response};
use daenerysd::server::{MetricsSnapshot, Server, ServerConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Opts {
    addr: Option<SocketAddr>,
    requests: u64,
    concurrency: usize,
    chaos_seed: u64,
    out: PathBuf,
    keep_store: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: None,
        requests: 96,
        // The default admission policy allows 4 in-flight per tenant
        // over 4 tenants; 48 lanes is 3x that aggregate width.
        concurrency: 48,
        chaos_seed: 42,
        out: PathBuf::from("BENCH_server.json"),
        keep_store: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{} needs a value", name));
        match flag.as_str() {
            "--addr" => {
                opts.addr = Some(
                    value("--addr")?
                        .parse()
                        .map_err(|e| format!("--addr: {}", e))?,
                );
            }
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests: not a number".to_string())?;
            }
            "--concurrency" => {
                opts.concurrency = value("--concurrency")?
                    .parse()
                    .map_err(|_| "--concurrency: not a number".to_string())?;
            }
            "--chaos-seed" => {
                opts.chaos_seed = value("--chaos-seed")?
                    .parse()
                    .map_err(|_| "--chaos-seed: not a number".to_string())?;
            }
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--keep-store" => opts.keep_store = true,
            other => return Err(format!("unknown flag {:?}", other)),
        }
    }
    opts.requests = opts.requests.max(1);
    opts.concurrency = opts.concurrency.max(1);
    Ok(opts)
}

/// The F1 corpus, cycled by request id: the scaling family (field
/// reads vs. object count) and the chain sweep (memoization depth).
fn source_for(id: u64) -> String {
    match id % 6 {
        0 => scaling_program(8),
        1 => scaling_program(2),
        2 => chain_program(8),
        3 => chain_program(16),
        4 => scaling_program(4),
        _ => chain_program(4),
    }
}

/// The comparable core of a response for the bit-identical gate.
fn comparable(resp: &Response) -> String {
    match resp {
        Response::Ok { verdicts, .. } => {
            let kinds: Vec<String> = verdicts
                .iter()
                .map(|(name, v)| format!("{}={}:{}", name, v.kind, v.detail))
                .collect();
            format!("ok[{}]", kinds.join(","))
        }
        Response::Refused { detail, .. } => format!("refused[{}]", detail),
        Response::Err { code, message, .. } => format!("err[{}:{}]", code.name(), message),
        Response::Admin { kind, .. } => format!("admin[{}]", kind),
    }
}

/// What the mid-run scraper and the final scrape observed of one
/// pass's server-side telemetry.
#[derive(Default)]
struct ServerObs {
    /// Successful mid-run `health` scrapes.
    scrapes: u64,
    /// Scrapes that failed at the transport/decode layer (tolerated —
    /// the daemon may briefly saturate its accept backlog).
    scrape_errors: u64,
    /// Mid-run scrapes whose ledger did **not** conserve (gate-fatal).
    conserved_failures: u64,
    /// Peak aggregate in-flight seen across scrapes.
    max_in_flight: u64,
    /// Final `metrics` body (raw JSON), when the plane answered.
    final_metrics: Option<String>,
    /// Final `health` body (raw JSON), when the plane answered.
    final_health: Option<String>,
}

fn admin_body(client: &Client, req: &AdminRequest) -> Option<String> {
    match client.admin_once(req) {
        Ok(Response::Admin { body, .. }) => Some(body),
        _ => None,
    }
}

/// One mid-run health observation folded into `obs`.
fn observe_health(body: &str, obs: &mut ServerObs) {
    let Ok(parsed) = parse_json(body) else {
        obs.scrape_errors += 1;
        return;
    };
    let Some(health) = parsed.as_obj() else {
        obs.scrape_errors += 1;
        return;
    };
    obs.scrapes += 1;
    if health.get("conserved") != Some(&Json::Bool(true)) {
        obs.conserved_failures += 1;
    }
    let in_flight = health
        .get("total")
        .and_then(Json::as_obj)
        .and_then(|t| t.get("in_flight"))
        .and_then(Json::as_num)
        .unwrap_or(0.0) as u64;
    obs.max_in_flight = obs.max_in_flight.max(in_flight);
}

#[derive(Default)]
struct PassResult {
    /// id → comparable verdict string, for completed requests only.
    completed: BTreeMap<u64, String>,
    /// id → failure rendering, for exhausted requests.
    failed: BTreeMap<u64, String>,
    latencies_ms: Vec<f64>,
    retries_total: u64,
    wall: Duration,
}

fn run_pass(addr: SocketAddr, opts: &Opts, faults: WireFaultPlan) -> (PassResult, ServerObs) {
    let retry = RetryPolicy {
        max_attempts: 8,
        base_backoff_ms: 10,
        max_backoff_ms: 500,
        seed: opts.chaos_seed ^ 0x5eed,
    };
    let client = Client::new(addr)
        .with_retry(retry)
        .with_faults(faults)
        .with_read_timeout(Duration::from_secs(60));
    // The scraper's client is chaos-free by construction (`admin_once`
    // never consults the fault plan): the observer must not perturb
    // what it observes.
    let scrape_client = Client::new(addr).with_read_timeout(Duration::from_secs(10));
    let next = AtomicU64::new(1);
    let lanes_done = AtomicBool::new(false);
    let shared: Mutex<PassResult> = Mutex::new(PassResult::default());
    let started = Instant::now();
    let mut obs = std::thread::scope(|scope| {
        let scraper = scope.spawn(|| {
            let mut obs = ServerObs::default();
            while !lanes_done.load(Ordering::SeqCst) {
                match admin_body(&scrape_client, &AdminRequest::Health { id: 0 }) {
                    Some(body) => observe_health(&body, &mut obs),
                    None => obs.scrape_errors += 1,
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            obs
        });
        let lanes: Vec<_> = (0..opts.concurrency)
            .map(|_| {
                scope.spawn(|| loop {
                    let id = next.fetch_add(1, Ordering::Relaxed);
                    if id > opts.requests {
                        return;
                    }
                    let mut req = Request::new(id, format!("tenant-{}", id % 4), source_for(id));
                    req.deadline_ms = Some(10_000);
                    let t0 = Instant::now();
                    let outcome = client.request_with_retry(&req);
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    let mut result = shared.lock().unwrap();
                    result.latencies_ms.push(ms);
                    match outcome {
                        Ok((resp, attempts)) => {
                            result.retries_total += u64::from(attempts - 1);
                            result.completed.insert(id, comparable(&resp));
                        }
                        Err(e) => {
                            result.failed.insert(id, e.to_string());
                        }
                    }
                })
            })
            .collect();
        for lane in lanes {
            let _ = lane.join();
        }
        lanes_done.store(true, Ordering::SeqCst);
        scraper.join().unwrap_or_default()
    });
    let mut result = shared.into_inner().unwrap();
    result.wall = started.elapsed();
    result
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).unwrap());
    // The final observation: with the lanes drained, record phase
    // attribution and the settled per-tenant ledger.
    obs.final_metrics = admin_body(&scrape_client, &AdminRequest::Metrics { id: 0 });
    obs.final_health = admin_body(&scrape_client, &AdminRequest::Health { id: 0 });
    if let Some(body) = obs.final_health.clone() {
        observe_health(&body, &mut obs);
    }
    (result, obs)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn pass_json(label: &str, pass: &PassResult) -> String {
    let mut out = String::new();
    let wall_s = pass.wall.as_secs_f64().max(1e-9);
    let _ = write!(
        out,
        "\"{}\":{{\"completed\":{},\"failed\":{},\"retries\":{},\"wall_ms\":{:.1},\
         \"throughput_rps\":{:.2},\"p50_ms\":{:.2},\"p95_ms\":{:.2},\"p99_ms\":{:.2}}}",
        label,
        pass.completed.len(),
        pass.failed.len(),
        pass.retries_total,
        wall_s * 1e3,
        pass.completed.len() as f64 / wall_s,
        percentile(&pass.latencies_ms, 50.0),
        percentile(&pass.latencies_ms, 95.0),
        percentile(&pass.latencies_ms, 99.0),
    );
    out
}

/// An embedded daemon for one pass (used when `--addr` is absent).
struct Embedded {
    addr: SocketAddr,
    flag: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<MetricsSnapshot>,
    store_dir: PathBuf,
}

fn embed(tag: &str) -> Result<Embedded, String> {
    let store_dir =
        std::env::temp_dir().join(format!("daenerysd-replay-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut config = ServerConfig::default();
    config.base.cache_dir = Some(store_dir.clone());
    config.read_poll_ms = 5;
    let server = Server::bind(config).map_err(|e| format!("bind: {}", e))?;
    let addr = server.local_addr().map_err(|e| format!("addr: {}", e))?;
    let flag = server.shutdown_flag();
    Ok(Embedded {
        addr,
        flag,
        handle: std::thread::spawn(move || server.run()),
        store_dir,
    })
}

impl Embedded {
    fn stop(self, keep_store: bool) -> Result<MetricsSnapshot, String> {
        self.flag.store(true, Ordering::SeqCst);
        let snapshot = self
            .handle
            .join()
            .map_err(|_| "daemon thread panicked".to_string())?;
        // The gate's store-integrity leg: the flushed store reloads
        // with zero corrupt lines.
        let store = VerdictStore::open(&self.store_dir);
        if store.corrupt_lines() > 0 || store.truncated_tail() {
            return Err(format!(
                "store corrupted: {} corrupt line(s), truncated_tail={}",
                store.corrupt_lines(),
                store.truncated_tail()
            ));
        }
        if !keep_store {
            let _ = std::fs::remove_dir_all(&self.store_dir);
        }
        Ok(snapshot)
    }
}

/// The gate's conservation leg: at least one successful mid-run
/// observation, zero violating observations, and a conserved final
/// ledger.
fn check_obs(label: &str, obs: &ServerObs, gate_failures: &mut Vec<String>) {
    if obs.scrapes == 0 {
        gate_failures.push(format!(
            "{}: telemetry plane never answered a health scrape ({} error(s))",
            label, obs.scrape_errors
        ));
        return;
    }
    if obs.conserved_failures > 0 {
        gate_failures.push(format!(
            "{}: {} of {} health scrape(s) violated admitted == completed + refused + in_flight",
            label, obs.conserved_failures, obs.scrapes
        ));
    }
    if obs.final_metrics.is_none() || obs.final_health.is_none() {
        gate_failures.push(format!("{}: final telemetry scrape failed", label));
    }
}

/// The `server` block for one pass: scrape accounting, per-phase time
/// attribution (count + total nanoseconds per `daenerysd.phase_nanos`
/// phase label, summed over tenants), and the settled per-tenant
/// ledger rows.
fn server_json(label: &str, obs: &ServerObs) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "\"{}\":{{\"scrapes\":{},\"scrape_errors\":{},\"conserved_failures\":{},\
         \"max_in_flight\":{},\"phases\":{{",
        label, obs.scrapes, obs.scrape_errors, obs.conserved_failures, obs.max_in_flight,
    );
    let mut phases: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    if let Some(parsed) = obs
        .final_metrics
        .as_deref()
        .and_then(|b| parse_json(b).ok())
    {
        let histograms = parsed
            .as_obj()
            .and_then(|o| o.get("histograms"))
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        for h in histograms.iter().filter_map(Json::as_obj) {
            if h.get("name").and_then(Json::as_str) != Some("daenerysd.phase_nanos") {
                continue;
            }
            let Some(phase) = h
                .get("labels")
                .and_then(Json::as_obj)
                .and_then(|l| l.get("phase"))
                .and_then(Json::as_str)
            else {
                continue;
            };
            let count = h.get("count").and_then(Json::as_num).unwrap_or(0.0) as u64;
            let nanos = h.get("sum").and_then(Json::as_num).unwrap_or(0.0) as u64;
            let slot = phases.entry(phase.to_string()).or_insert((0, 0));
            slot.0 += count;
            slot.1 += nanos;
        }
    }
    for (i, (phase, (count, nanos))) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"nanos\":{}}}",
            daenerys_obs::json::escape(phase),
            count,
            nanos
        );
    }
    out.push_str("},\"tenants\":{");
    let tenants = obs
        .final_health
        .as_deref()
        .and_then(|b| parse_json(b).ok())
        .and_then(|parsed| {
            parsed
                .as_obj()
                .and_then(|o| o.get("tenants"))
                .and_then(Json::as_obj)
                .cloned()
        })
        .unwrap_or_default();
    for (i, (tenant, row)) in tenants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{}",
            daenerys_obs::json::escape(tenant),
            row.render()
        );
    }
    out.push_str("}}");
    out
}

fn check_snapshot(label: &str, snap: &MetricsSnapshot, gate_failures: &mut Vec<String>) {
    if snap.leaked_sessions != 0 {
        gate_failures.push(format!(
            "{}: {} leaked session(s)",
            label, snap.leaked_sessions
        ));
    }
    if snap.internal_crashes != 0 {
        gate_failures.push(format!(
            "{}: {} contained panic(s)",
            label, snap.internal_crashes
        ));
    }
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("server_replay: {}", msg);
            return ExitCode::FAILURE;
        }
    };
    let chaos_plan = WireFaultPlan::full(opts.chaos_seed);
    let mut gate_failures: Vec<String> = Vec::new();
    let mut snapshots = String::new();

    let (clean, clean_obs, chaos, chaos_obs) = match opts.addr {
        Some(addr) => {
            // External daemon: both passes against it; daemon-side
            // invariants are the smoke script's job (conservation is
            // still gated here, via the scrapes).
            let (clean, clean_obs) = run_pass(addr, &opts, WireFaultPlan::none());
            let (chaos, chaos_obs) = run_pass(addr, &opts, chaos_plan);
            (clean, clean_obs, chaos, chaos_obs)
        }
        None => {
            let daemon = match embed("clean") {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("server_replay: {}", e);
                    return ExitCode::FAILURE;
                }
            };
            let (clean, clean_obs) = run_pass(daemon.addr, &opts, WireFaultPlan::none());
            match daemon.stop(opts.keep_store) {
                Ok(snap) => {
                    check_snapshot("fault_free", &snap, &mut gate_failures);
                    let _ = write!(snapshots, ",\"fault_free_daemon\":{}", snap.to_json());
                }
                Err(e) => gate_failures.push(format!("fault_free: {}", e)),
            }
            let daemon = match embed("chaos") {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("server_replay: {}", e);
                    return ExitCode::FAILURE;
                }
            };
            let (chaos, chaos_obs) = run_pass(daemon.addr, &opts, chaos_plan);
            match daemon.stop(opts.keep_store) {
                Ok(snap) => {
                    check_snapshot("chaos", &snap, &mut gate_failures);
                    let _ = write!(snapshots, ",\"chaos_daemon\":{}", snap.to_json());
                }
                Err(e) => gate_failures.push(format!("chaos: {}", e)),
            }
            (clean, clean_obs, chaos, chaos_obs)
        }
    };
    check_obs("fault_free", &clean_obs, &mut gate_failures);
    check_obs("chaos", &chaos_obs, &mut gate_failures);

    // Gate: both passes complete the whole corpus (retry absorbs every
    // injected fault), and completed chaos verdicts are bit-identical.
    if !clean.failed.is_empty() {
        gate_failures.push(format!(
            "fault-free pass failed {} request(s): {:?}",
            clean.failed.len(),
            clean.failed.iter().next()
        ));
    }
    if !chaos.failed.is_empty() {
        gate_failures.push(format!(
            "chaos pass failed {} request(s): {:?}",
            chaos.failed.len(),
            chaos.failed.iter().next()
        ));
    }
    let mut diverged = 0usize;
    for (id, verdict) in &chaos.completed {
        if let Some(reference) = clean.completed.get(id) {
            if reference != verdict {
                diverged += 1;
                if diverged == 1 {
                    gate_failures.push(format!(
                        "request {} diverged under chaos: {} vs {}",
                        id, verdict, reference
                    ));
                }
            }
        }
    }
    if diverged > 1 {
        gate_failures.push(format!("{} request(s) diverged under chaos", diverged));
    }

    let affected = (1..=opts.requests)
        .filter(|id| (0..8u64).any(|attempt| !chaos_plan.fault_for(*id, attempt).is_none()))
        .count();

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"config\":{{\"requests\":{},\"concurrency\":{},\"chaos_seed\":{},\
         \"affected_requests\":{},\"external_daemon\":{}}},",
        opts.requests,
        opts.concurrency,
        opts.chaos_seed,
        affected,
        opts.addr.is_some(),
    );
    json.push_str(&pass_json("fault_free", &clean));
    json.push(',');
    json.push_str(&pass_json("chaos", &chaos));
    let _ = write!(
        json,
        ",\"server\":{{{},{}}}",
        server_json("fault_free", &clean_obs),
        server_json("chaos", &chaos_obs),
    );
    let _ = write!(
        json,
        ",\"gate\":{{\"passed\":{},\"bit_identical\":{},\"failures\":{}}}",
        gate_failures.is_empty(),
        diverged == 0,
        gate_failures.len(),
    );
    json.push_str(&snapshots);
    json.push('}');

    if let Err(e) = std::fs::write(&opts.out, format!("{}\n", json)) {
        eprintln!("server_replay: writing {}: {}", opts.out.display(), e);
        return ExitCode::FAILURE;
    }
    println!("{}", json);
    if gate_failures.is_empty() {
        println!(
            "server_replay: gate PASSED ({} requests, {} affected by chaos, {} retries absorbed)",
            opts.requests, affected, chaos.retries_total
        );
        ExitCode::SUCCESS
    } else {
        for failure in &gate_failures {
            eprintln!("server_replay: gate FAILED: {}", failure);
        }
        ExitCode::FAILURE
    }
}
