//! Regenerates every table and figure of the evaluation (EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! cargo run -p daenerys-bench --bin tables [--t1] [--t2] [--t3] [--t4] \
//!     [--f1] [--f2] [--f3] [--json] [--no-cache] [--no-simplify] \
//!     [--no-learn] [--solver CORE] [--threads N] [--timeout-ms N] \
//!     [--fuel N] [--repeat N] [--trace-out PATH] [--profile] \
//!     [--incremental] [--cache-dir PATH] [--expect-reverified N] \
//!     [--out-dir PATH] [--deny-unstable] [--explain-stability] \
//!     [--store-format FMT]
//! cargo run -p daenerys-bench --bin tables store migrate <dir> <daes1|jsonl>
//! ```
//!
//! With no table/figure flags, every table and figure is printed.
//!
//! * `--no-cache` disables the solver's memo layers (the pre-cache
//!   pipeline) and `--threads N` pins the verification fan-out — both
//!   change cost only, never answers.
//! * `--no-simplify` disables intern-time canonicalization and
//!   `--no-learn` conflict-clause learning, isolating each
//!   query-avoidance layer for A/B measurement.
//! * `--solver CORE` selects the SAT core: `cdcl` (default; watched
//!   literals, first-UIP learning, theory propagation) or `dpll` (the
//!   legacy recursive core). Answer-transparent by construction but
//!   answer-affecting for the incremental fingerprint, so verdicts
//!   cached under one core are never reused under the other.
//! * `--incremental` adds the F1 incremental section: each case is
//!   verified against the persistent verdict store under `--cache-dir`
//!   (default `target/ivc`), its restored verdicts are checked
//!   bit-identical against a from-scratch run, and the number of
//!   re-verified methods is reported. `--expect-reverified N` turns
//!   that report into a hard assertion (exit 1 on mismatch) for CI.
//! * `--out-dir PATH` places generated artifacts (`BENCH_verifier.json`,
//!   `PROFILE_verifier.txt`) under `PATH` (default `target/bench`, so
//!   casual runs never litter the repo root; pass `--out-dir .` to
//!   refresh a committed baseline in place).
//! * `--store-format FMT` forces the verdict store's on-disk encoding
//!   (`daes1`, the sharded binary default, or `jsonl`, the legacy
//!   line-JSON import/export format); without it the format is
//!   auto-detected from the cache directory. Cost only, never answers.
//! * `store migrate <dir> <daes1|jsonl>` (subcommand) rewrites an
//!   existing store in the other format with bit-identical verdicts.
//! * `--timeout-ms N` sets a per-method wall-clock deadline and
//!   `--fuel N` a per-method solver-fuel budget (conflicts +
//!   propagations under CDCL, search nodes under `--solver dpll`); a
//!   method that blows its budget is reported (and counted in the
//!   JSON) as `Unknown` instead of hanging the harness.
//! * `--repeat N` measures each timed row as the median of `N` runs
//!   after one untimed warmup (default 5); `N` is recorded in the JSON
//!   config block.
//! * `--json` additionally writes `BENCH_verifier.json` (machine-readable
//!   F1 data: per-case wall time, phase attribution, solver queries,
//!   and cache hit rate for both backends, plus the cached-vs-uncached
//!   chain sweep).
//! * `--trace-out PATH` streams the flight-recorder trace (spans,
//!   solver queries, budget gauges) of every verification as JSONL to
//!   `PATH`; validate it with the `trace_validate` binary.
//! * `--profile` prints a phase-attribution profile of the positive
//!   case studies and writes it to `PROFILE_verifier.txt`; given
//!   alone, only the profile runs.
//! * `--deny-unstable` makes every run fail methods whose contracts the
//!   static stability analyzer classifies unstable (answer-affecting,
//!   part of the incremental fingerprint); `--explain-stability` prints
//!   the analyzer's lints for the examples corpus — classification,
//!   spans, and fix hints — and enriches `stability.classify` trace
//!   events with finding details (cost only).

use daenerys_bench::{
    measure_median, micros, profile_events, render_profile, run_backend_with, BackendRun,
    ProfileReport,
};
use daenerys_core::check::{catalog, corpus, ghost_catalog, verify_catalog};
use daenerys_core::{check_stable, stabilize_fast, Assert, CameraKind, Term, UniverseSpec};
use daenerys_heaplang::{explore, parse, Machine};
use daenerys_idf::{
    all_cases, analyze_program, chain_program, diverging_program, parse_program, positive_cases,
    scaling_program, Backend, SolverCore, StabilityClass, VerifierConfig,
};
use daenerys_obs::{ClockKind, JsonlSink, MemorySink, TraceHandle};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

const KNOWN_FLAGS: [&str; 25] = [
    "--t1",
    "--t2",
    "--t3",
    "--t4",
    "--f1",
    "--f2",
    "--f3",
    "--json",
    "--no-cache",
    "--no-simplify",
    "--no-learn",
    "--solver",
    "--threads",
    "--timeout-ms",
    "--fuel",
    "--repeat",
    "--trace-out",
    "--profile",
    "--incremental",
    "--cache-dir",
    "--expect-reverified",
    "--out-dir",
    "--deny-unstable",
    "--explain-stability",
    "--store-format",
];

/// Parsed command line.
struct Opts {
    selected: Vec<String>,
    json: bool,
    profile: bool,
    repeat: usize,
    trace_out: Option<String>,
    /// Verdict-store root for the incremental section (`Some` when
    /// `--incremental` or `--cache-dir` is given). Kept out of
    /// `config` so the timed rows never measure the restore path.
    cache_dir: Option<std::path::PathBuf>,
    /// Hard assertion on the incremental section's re-verified total.
    expect_reverified: Option<usize>,
    /// Where generated artifacts are written (default: `target/bench`).
    out_dir: std::path::PathBuf,
    config: VerifierConfig,
}

fn parse_args() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        selected: Vec::new(),
        json: false,
        profile: false,
        repeat: 5,
        trace_out: None,
        cache_dir: None,
        expect_reverified: None,
        out_dir: std::path::PathBuf::from("target/bench"),
        config: VerifierConfig::default(),
    };
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--json" => opts.json = true,
            "--profile" => opts.profile = true,
            "--deny-unstable" => opts.config.deny_unstable = true,
            "--explain-stability" => opts.config.explain_stability = true,
            "--no-cache" => opts.config.cache = false,
            "--no-simplify" => opts.config.simplify = false,
            "--no-learn" => opts.config.learn = false,
            "--solver" => {
                i += 1;
                match args.get(i).and_then(|v| SolverCore::parse(v)) {
                    Some(core) => opts.config.solver = core,
                    None => {
                        eprintln!("tables: --solver needs `dpll` or `cdcl`");
                        std::process::exit(2);
                    }
                }
            }
            "--incremental" => {
                if opts.cache_dir.is_none() {
                    opts.cache_dir = Some(std::path::PathBuf::from("target/ivc"));
                }
            }
            "--store-format" => {
                i += 1;
                match args
                    .get(i)
                    .and_then(|v| daenerys_idf::StoreFormat::parse(v))
                {
                    Some(format) => opts.config.store_format = Some(format),
                    None => {
                        eprintln!("tables: --store-format needs `daes1` or `jsonl`");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(path) if !path.starts_with("--") => {
                        opts.cache_dir = Some(std::path::PathBuf::from(path));
                    }
                    _ => {
                        eprintln!("tables: --cache-dir needs a directory path");
                        std::process::exit(2);
                    }
                }
            }
            "--expect-reverified" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => opts.expect_reverified = Some(n),
                    None => {
                        eprintln!("tables: --expect-reverified needs an integer");
                        std::process::exit(2);
                    }
                }
            }
            "--out-dir" => {
                i += 1;
                match args.get(i) {
                    Some(path) if !path.starts_with("--") => {
                        opts.out_dir = std::path::PathBuf::from(path);
                    }
                    _ => {
                        eprintln!("tables: --out-dir needs a directory path");
                        std::process::exit(2);
                    }
                }
            }
            "--repeat" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => opts.repeat = n,
                    _ => {
                        eprintln!("tables: --repeat needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) if !path.starts_with("--") => {
                        opts.trace_out = Some(path.clone());
                    }
                    _ => {
                        eprintln!("tables: --trace-out needs a file path");
                        std::process::exit(2);
                    }
                }
            }
            "--threads" => {
                i += 1;
                let n = args.get(i).and_then(|v| v.parse::<usize>().ok());
                match n {
                    Some(n) if n > 0 => opts.config.threads = n,
                    _ => {
                        eprintln!("tables: --threads needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--timeout-ms" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(ms) if ms > 0 => {
                        opts.config.budget = opts.config.budget.with_deadline_ms(ms);
                    }
                    _ => {
                        eprintln!("tables: --timeout-ms needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--fuel" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(fuel) if fuel > 0 => {
                        opts.config.budget = opts.config.budget.with_solver_fuel(fuel);
                    }
                    _ => {
                        eprintln!("tables: --fuel needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            _ if KNOWN_FLAGS.contains(&a) => opts.selected.push(a.to_string()),
            _ => {
                eprintln!(
                    "tables: unknown flag {} (known: {})",
                    a,
                    KNOWN_FLAGS.join(", ")
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

/// The `store` subcommand: offline verdict-store maintenance.
///
/// `tables store migrate <dir> <daes1|jsonl>` rewrites the store under
/// `<dir>` in the requested format (verdicts bit-identical, source
/// files removed) — the JSONL import/export path for the default
/// sharded binary stores.
fn store_command(args: &[String]) -> ! {
    match args {
        [op, dir, format] if op == "migrate" => {
            let Some(to) = daenerys_idf::StoreFormat::parse(format) else {
                eprintln!("tables: store migrate needs a target format `daes1` or `jsonl`");
                std::process::exit(2);
            };
            let dir = std::path::Path::new(dir);
            match daenerys_idf::VerdictStore::migrate(dir, to) {
                Ok(store) => {
                    println!(
                        "migrated {} to {}: {} entries, {} corrupt records skipped",
                        dir.display(),
                        to.name(),
                        store.len(),
                        store.corrupt_lines()
                    );
                    std::process::exit(0);
                }
                Err(e) => {
                    eprintln!("tables: store migrate failed: {}", e);
                    std::process::exit(1);
                }
            }
        }
        _ => {
            eprintln!("tables: usage: tables store migrate <dir> <daes1|jsonl>");
            std::process::exit(2);
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("store") {
        store_command(&raw[1..]);
    }
    let mut opts = parse_args();
    if let Some(path) = &opts.trace_out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        let sink = match JsonlSink::create(std::path::Path::new(path)) {
            Ok(sink) => Arc::new(sink),
            Err(e) => {
                eprintln!("tables: cannot open {}: {}", path, e);
                std::process::exit(1);
            }
        };
        opts.config.trace = TraceHandle::new(sink, ClockKind::Monotonic);
    }
    // `--profile` given alone runs only the profile; combined with
    // table flags it rides along.
    let all = opts.selected.is_empty() && !opts.profile;
    let want = |flag: &str| all || opts.selected.iter().any(|a| a == flag);
    if opts.expect_reverified.is_some() && (opts.cache_dir.is_none() || !want("--f1")) {
        eprintln!("tables: --expect-reverified requires --f1 and --incremental/--cache-dir");
        std::process::exit(2);
    }

    if opts.config.explain_stability {
        explain_stability(&opts);
    }
    if want("--t1") {
        table_t1(&opts);
    }
    if want("--t2") {
        table_t2();
    }
    if want("--t3") {
        table_t3();
    }
    if want("--t4") {
        table_t4();
    }
    if want("--f1") {
        figure_f1(&opts);
    }
    if want("--f2") {
        figure_f2();
    }
    if want("--f3") {
        figure_f3();
    }
    if opts.profile {
        run_profile(&opts);
    }
    if let Some(path) = &opts.trace_out {
        opts.config.trace.flush();
        println!("\n    wrote {}", path);
    }
}

/// `--explain-stability`: prints the static stability analyzer's
/// verdict for every spec assertion of the examples corpus —
/// classification, provenance findings with spans, and fix hints —
/// then a summary count per class. Purely static: no verification runs.
fn explain_stability(opts: &Opts) {
    println!("\nStability lints: static classification of the examples corpus");
    println!("    (stable < framed-stable < unstable; see DESIGN.md §11)\n");
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut unstable = 0usize;
    for case in all_cases() {
        let prog = match parse_program(case.source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("tables: case {} does not parse: {}", case.name, e);
                std::process::exit(1);
            }
        };
        for v in analyze_program(&prog) {
            let class = match v.class {
                StabilityClass::Stable => "stable",
                StabilityClass::FramedStable => "framed-stable",
                StabilityClass::Unstable => "unstable",
            };
            *counts.entry(class).or_default() += 1;
            if v.class == StabilityClass::Unstable {
                unstable += 1;
            }
            // Findings only for the noisy classes: stable assertions
            // with no findings are summarized by the count line.
            if v.class != StabilityClass::Stable || !v.findings.is_empty() {
                for line in format!("[{}] {}", case.name, v.lint()).lines() {
                    println!("    {}", line);
                }
            }
        }
    }
    println!();
    for (class, n) in &counts {
        println!("    {:>14}: {}", class, n);
    }
    if opts.config.deny_unstable && unstable > 0 {
        println!(
            "    --deny-unstable: {} assertion(s) above would fail verification",
            unstable
        );
    }
}

/// A traced single run of `src`, reduced to a phase-attribution
/// profile. Overrides any `--trace-out` handle with a private
/// in-memory sink so the profile never pollutes the JSONL stream.
fn phase_profile(src: &str, backend: Backend, base: &VerifierConfig) -> ProfileReport {
    let sink = Arc::new(MemorySink::new(1 << 16));
    let config = VerifierConfig {
        trace: TraceHandle::new(sink.clone(), ClockKind::Monotonic),
        ..base.clone()
    };
    let _ = run_backend_with(src, backend, config);
    profile_events(&sink.events())
}

/// `--profile`: phase attribution of the positive case studies (plus
/// the exponential diverging case) on the destabilized backend, each
/// with its release-over-release counters (`dpll_branches`,
/// `learned_clauses`, `methods_reverified`), printed and written to
/// `PROFILE_verifier.txt` under `--out-dir`.
fn run_profile(opts: &Opts) {
    println!("\nProfile: phase attribution per case (destabilized backend)");
    let mut cases: Vec<(String, String)> = positive_cases()
        .iter()
        .map(|c| (c.name.to_string(), c.source.to_string()))
        .collect();
    cases.push(("diverging_6".to_string(), diverging_program(6)));
    let mut out = String::new();
    for (name, src) in &cases {
        let report = phase_profile(src, Backend::Destabilized, &opts.config);
        // Counters come from an untraced run (through the verdict
        // store when `--incremental` is active, so the re-verified
        // count is meaningful).
        let config = VerifierConfig {
            cache_dir: opts.cache_dir.as_ref().map(|d| d.join(name)),
            ..opts.config.clone()
        };
        let run = run_backend_with(src, Backend::Destabilized, config);
        let counters = format!(
            "counters: dpll_branches={} conflicts={} theory_props={} learned_clauses={} methods_reverified={}\n",
            run.total(|s| s.solver_branches),
            run.total(|s| s.solver_conflicts),
            run.total(|s| s.theory_props),
            run.total(|s| s.learned_clauses),
            run.reverified
                .map_or_else(|| "n/a".to_string(), |n| n.to_string()),
        );
        let block = format!("== {} ==\n{}{}", name, render_profile(&report), counters);
        println!();
        for line in block.lines() {
            println!("    {}", line);
        }
        out.push_str(&block);
        out.push('\n');
    }
    let path = artifact_path(opts, "PROFILE_verifier.txt");
    match std::fs::write(&path, &out) {
        Ok(()) => println!("\n    wrote {}", path.display()),
        Err(e) => {
            eprintln!("tables: cannot write {}: {}", path.display(), e);
            std::process::exit(1);
        }
    }
}

/// T1: case studies — destabilized vs stable-baseline cost.
fn table_t1(opts: &Opts) {
    println!("\nT1. Case studies: destabilized vs. stable-baseline encodings");
    println!("    (obl = obligations, q = solver queries, wit = witnesses, reb = rebinds)\n");
    println!(
        "    {:<18} {:>5} {:>6} | {:>5} {:>6} {:>5} {:>5} | {:>7}",
        "case", "obl_D", "q_D", "obl_S", "q_S", "wit", "reb", "ratio"
    );
    println!("    {}", "-".repeat(72));
    let mut sum_d = 0usize;
    let mut sum_s = 0usize;
    for case in positive_cases() {
        let d = run_backend_with(case.source, Backend::Destabilized, opts.config.clone());
        let s = run_backend_with(case.source, Backend::StableBaseline, opts.config.clone());
        let (od, qd) = (d.total(|x| x.obligations), d.total(|x| x.solver_queries));
        let (os, qs) = (s.total(|x| x.obligations), s.total(|x| x.solver_queries));
        let wit = s.total(|x| x.witnesses);
        let reb = s.total(|x| x.rebinds);
        sum_d += od;
        sum_s += os + reb;
        println!(
            "    {:<18} {:>5} {:>6} | {:>5} {:>6} {:>5} {:>5} | {:>6.2}x",
            case.name,
            od,
            qd,
            os,
            qs,
            wit,
            reb,
            (os + reb) as f64 / od.max(1) as f64
        );
    }
    println!("    {}", "-".repeat(72));
    println!(
        "    {:<18} {:>5}        | {:>5}                      | {:>6.2}x",
        "TOTAL",
        sum_d,
        sum_s,
        sum_s as f64 / sum_d.max(1) as f64
    );
}

/// T2: kernel-rule soundness — every rule model-checked.
fn table_t2() {
    println!("\nT2. Proof-kernel rule soundness (model-checked over finite universes)\n");
    let uni = UniverseSpec::tiny().build();
    let derivations = catalog(&corpus());
    let reports = verify_catalog(&derivations, &uni, 1);
    println!(
        "    {:<28} {:>9} {:>9} {:>7}",
        "rule", "instances", "verified", "status"
    );
    println!("    {}", "-".repeat(58));
    let mut total = 0;
    let mut ok = 0;
    for r in &reports {
        total += r.instances;
        ok += r.verified;
        println!(
            "    {:<28} {:>9} {:>9} {:>7}",
            r.rule,
            r.instances,
            r.verified,
            if r.ok() { "ok" } else { "FAIL" }
        );
    }
    for kind in [CameraKind::ExclVal, CameraKind::Frac, CameraKind::AuthNat] {
        let guni = UniverseSpec::with_ghost(kind).build();
        for r in verify_catalog(&ghost_catalog(kind), &guni, 1) {
            total += r.instances;
            ok += r.verified;
            println!(
                "    {:<28} {:>9} {:>9} {:>7}   (ghost {:?})",
                r.rule,
                r.instances,
                r.verified,
                if r.ok() { "ok" } else { "FAIL" },
                kind
            );
        }
    }
    println!("    {}", "-".repeat(58));
    println!("    {:<28} {:>9} {:>9}", "TOTAL", total, ok);
}

/// T3: camera-law checks over enumerated universes.
fn table_t3() {
    use daenerys_algebra::{
        law_assoc, law_comm, law_core_id, law_core_idem, law_core_mono, law_included_op,
        law_valid_op, Agree, Auth, DFrac, Enumerable, Excl, Frac, GSet, MaxNat, Ra, SumNat,
    };
    println!("\nT3. Camera laws: exhaustive checks over enumerated carriers\n");
    println!(
        "    {:<16} {:>8} {:>10} {:>7}",
        "camera", "elements", "checks", "status"
    );
    println!("    {}", "-".repeat(46));

    fn battery<A: Ra + Enumerable>(name: &str, budget: usize) {
        let u = A::enumerate(budget);
        let mut checks = 0usize;
        let mut ok = true;
        for a in &u {
            ok &= law_core_id(a).ok() && law_core_idem(a).ok();
            checks += 2;
            for b in &u {
                ok &= law_comm(a, b).ok()
                    && law_valid_op(a, b).ok()
                    && law_core_mono(a, b).ok()
                    && law_included_op(a, b).ok();
                checks += 4;
                for c in &u {
                    ok &= law_assoc(a, b, c).ok();
                    checks += 1;
                }
            }
        }
        println!(
            "    {:<16} {:>8} {:>10} {:>7}",
            name,
            u.len(),
            checks,
            if ok { "ok" } else { "FAIL" }
        );
    }
    battery::<Frac>("Frac", 4);
    battery::<DFrac>("DFrac", 3);
    battery::<Excl<bool>>("Excl", 2);
    battery::<Agree<bool>>("Agree", 2);
    battery::<SumNat>("SumNat", 5);
    battery::<MaxNat>("MaxNat", 5);
    battery::<Option<Frac>>("Option<Frac>", 3);
    battery::<Auth<SumNat>>("Auth<SumNat>", 2);
    battery::<GSet<u64>>("GSet", 3);
}

/// T4: proof automation — kernel derivation sizes produced by the
/// chunk-entailment prover as the goal grows.
fn table_t4() {
    use daenerys_algebra::Frac;
    use daenerys_core::{auto_entails, Assert, GhostName, GhostVal};
    println!("\nT4. Proof automation: kernel steps per automated entailment\n");
    println!(
        "    {:>8} {:>14} {:>12}",
        "chunks", "kernel steps", "time µs"
    );
    println!("    {}", "-".repeat(40));
    for n in [2usize, 4, 8, 12] {
        let chunks: Vec<Assert> = (0..n as u64)
            .map(|i| {
                Assert::Own(
                    GhostName(i),
                    GhostVal::Frac(Frac::new(daenerys_algebra::Q::HALF)),
                )
            })
            .collect();
        let lhs = chunks
            .iter()
            .cloned()
            .reduce(Assert::sep)
            .expect("nonempty");
        let rhs = chunks
            .iter()
            .rev()
            .cloned()
            .reduce(Assert::sep)
            .expect("nonempty");
        let t0 = Instant::now();
        let d = auto_entails(&lhs, &rhs).expect("automation succeeds");
        let dt = t0.elapsed();
        println!("    {:>8} {:>14} {:>12}", n, d.steps(), micros(dt));
    }
}

/// Sizes of the F1 chain sweep.
const CHAIN_SIZES: [usize; 7] = [2, 4, 8, 16, 32, 64, 128];

/// F1: verifier scaling — time and work vs. program size, plus the
/// chain sweep measuring the fast pipeline (hash-consing + solver
/// cache) against the pre-cache path (`--no-cache --threads 1`).
fn figure_f1(opts: &Opts) {
    println!("\nF1. Verifier scaling (n objects updated; spec reads every field)\n");
    println!(
        "    {:>4} | {:>9} {:>7} | {:>9} {:>7} {:>7} | {:>7}",
        "n", "obl_D", "µs_D", "obl_S+reb", "µs_S", "wit_S", "ratio"
    );
    println!("    {}", "-".repeat(66));
    for n in [1usize, 2, 4, 8, 16, 24] {
        let src = scaling_program(n);
        let d = measure_median(&src, Backend::Destabilized, &opts.config, opts.repeat);
        let s = measure_median(&src, Backend::StableBaseline, &opts.config, opts.repeat);
        let od = d.total(|x| x.obligations);
        let os = s.total(|x| x.obligations) + s.total(|x| x.rebinds);
        println!(
            "    {:>4} | {:>9} {:>7} | {:>9} {:>7} {:>7} | {:>6.2}x",
            n,
            od,
            micros(d.time),
            os,
            micros(s.time),
            s.total(|x| x.witnesses),
            os as f64 / od.max(1) as f64
        );
    }

    let cached = VerifierConfig {
        cache: true,
        ..opts.config.clone()
    };
    let uncached = VerifierConfig {
        threads: 1,
        cache: false,
        ..opts.config.clone()
    };
    println!("\nF1b. Chain sweep: memoized pipeline vs. pre-cache path (destabilized)\n");
    println!(
        "    {:>4} | {:>8} {:>8} | {:>6} {:>6} {:>6} | {:>8}",
        "n", "µs_memo", "µs_cold", "q", "hits", "miss", "speedup"
    );
    println!("    {}", "-".repeat(62));
    let mut chain_rows = Vec::new();
    for n in CHAIN_SIZES {
        let src = chain_program(n);
        let dm = measure_median(&src, Backend::Destabilized, &cached, opts.repeat);
        let dc = measure_median(&src, Backend::Destabilized, &uncached, opts.repeat);
        let sm = measure_median(&src, Backend::StableBaseline, &cached, opts.repeat);
        let sc = measure_median(&src, Backend::StableBaseline, &uncached, opts.repeat);
        let speedup = dc.time.as_secs_f64() / dm.time.as_secs_f64().max(1e-9);
        println!(
            "    {:>4} | {:>8} {:>8} | {:>6} {:>6} {:>6} | {:>7.2}x",
            n,
            micros(dm.time),
            micros(dc.time),
            dm.total(|x| x.solver_queries),
            dm.total(|x| x.cache_hits),
            dm.total(|x| x.cache_misses),
            speedup,
        );
        chain_rows.push((n, dm, dc, sm, sc));
    }

    // F1c: the exponential case — conflict-clause learning on vs. off
    // on the selected core, A/B'd regardless of the session's
    // `--no-learn` setting so the work counters stay comparable
    // release over release.
    let learn_on = VerifierConfig {
        learn: true,
        ..opts.config.clone()
    };
    let learn_off = VerifierConfig {
        learn: false,
        ..opts.config.clone()
    };
    println!(
        "\nF1c. Diverging sweep: clause learning on vs. off ({} core, destabilized)\n",
        opts.config.solver.name()
    );
    println!(
        "    {:>4} | {:>8} {:>8} | {:>7} {:>7} | {:>6} {:>5} {:>6} {:>7} | {:>8}",
        "k",
        "µs_lrn",
        "µs_none",
        "br_lrn",
        "br_none",
        "confl",
        "rst",
        "tprops",
        "learned",
        "br_ratio"
    );
    println!("    {}", "-".repeat(86));
    let mut diverging_rows = Vec::new();
    for k in DIVERGING_SIZES {
        let src = diverging_program(k);
        let dl = measure_median(&src, Backend::Destabilized, &learn_on, opts.repeat);
        let dn = measure_median(&src, Backend::Destabilized, &learn_off, opts.repeat);
        let (bl, bn) = (
            dl.total(|x| x.solver_branches),
            dn.total(|x| x.solver_branches),
        );
        println!(
            "    {:>4} | {:>8} {:>8} | {:>7} {:>7} | {:>6} {:>5} {:>6} {:>7} | {:>7.2}x",
            k,
            micros(dl.time),
            micros(dn.time),
            bl,
            bn,
            dl.total(|x| x.solver_conflicts),
            dl.total(|x| x.solver_restarts),
            dl.total(|x| x.theory_props),
            dl.total(|x| x.learned_clauses),
            bn as f64 / bl.max(1) as f64,
        );
        diverging_rows.push((k, dl, dn));
    }

    let incremental_rows = incremental_section(opts);

    if opts.json {
        write_bench_json(opts, &chain_rows, &diverging_rows, &incremental_rows);
    }
}

/// Sizes of the F1 diverging sweep (`2^k` raw DPLL branches each).
const DIVERGING_SIZES: [usize; 4] = [2, 4, 6, 8];

/// One row of the F1 incremental section: case name, method count,
/// methods actually re-verified, and wall time of the incremental run.
type IncrementalRow = (String, usize, usize, std::time::Duration);

/// F1d (only with `--incremental`/`--cache-dir`): verifies each case
/// against a per-case persistent verdict store, checks the outcome
/// bit-identical to a from-scratch run, and reports how many methods
/// the store could not absorb. Exits nonzero when the total disagrees
/// with `--expect-reverified`.
fn incremental_section(opts: &Opts) -> Vec<IncrementalRow> {
    let Some(dir) = &opts.cache_dir else {
        return Vec::new();
    };
    println!(
        "\nF1d. Incremental verification (verdict store under {})\n",
        dir.display()
    );
    println!(
        "    {:<18} {:>7} {:>10} {:>9}",
        "case", "methods", "reverified", "µs"
    );
    println!("    {}", "-".repeat(48));
    let mut corpus: Vec<(String, String)> = positive_cases()
        .iter()
        .map(|c| (c.name.to_string(), c.source.to_string()))
        .collect();
    corpus.push(("chain_32".to_string(), chain_program(32)));
    corpus.push(("diverging_6".to_string(), diverging_program(6)));
    let mut rows = Vec::new();
    let mut total = 0usize;
    for (name, src) in &corpus {
        let config = VerifierConfig {
            cache_dir: Some(dir.join(name)),
            ..opts.config.clone()
        };
        let inc = run_backend_with(src, Backend::Destabilized, config);
        let direct = run_backend_with(src, Backend::Destabilized, opts.config.clone());
        let normalize = |run: &BackendRun| -> BTreeMap<String, _> {
            run.verdicts
                .iter()
                .map(|(m, v)| (m.clone(), v.normalized()))
                .collect()
        };
        assert_eq!(
            normalize(&inc),
            normalize(&direct),
            "incremental verdicts for {} are not bit-identical to a fresh run",
            name
        );
        let reverified = inc.reverified.expect("incremental run reports a count");
        total += reverified;
        println!(
            "    {:<18} {:>7} {:>10} {:>9}",
            name,
            inc.verdicts.len(),
            reverified,
            micros(inc.time)
        );
        rows.push((name.clone(), inc.verdicts.len(), reverified, inc.time));
    }
    println!("    {}", "-".repeat(48));
    println!("    total methods re-verified: {}", total);
    if let Some(expect) = opts.expect_reverified {
        if total != expect {
            eprintln!(
                "tables: expected {} re-verified methods, got {}",
                expect, total
            );
            std::process::exit(1);
        }
        println!("    matches --expect-reverified {}", expect);
    }
    rows
}

/// Renders an optional count as JSON (`null` when unlimited).
fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// One measurement as a JSON object.
///
/// # Panics
///
/// Panics when the counter invariant `hits + misses == queries` is
/// broken — the harness refuses to emit inconsistent numbers.
fn run_json(run: &BackendRun) -> String {
    run.check_cache_accounting();
    let hits = run.total(|x| x.cache_hits);
    let misses = run.total(|x| x.cache_misses);
    let rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    format!(
        "{{\"wall_micros\": {:.1}, \"solver_queries\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \"dpll_branches\": {}, \"conflicts\": {}, \"restarts\": {}, \"theory_props\": {}, \"learned_clauses\": {}, \"obligations\": {}, \"interned_terms\": {}, \"stability_skips\": {}, \"unknown_methods\": {}, \"budget_exhausted\": {}, \"methods_reverified\": {}}}",
        run.time.as_secs_f64() * 1e6,
        run.total(|x| x.solver_queries),
        hits,
        misses,
        rate,
        run.total(|x| x.solver_branches),
        run.total(|x| x.solver_conflicts),
        run.total(|x| x.solver_restarts),
        run.total(|x| x.theory_props),
        run.total(|x| x.learned_clauses),
        run.total(|x| x.obligations),
        run.total(|x| x.interned_terms),
        run.total(|x| x.stability_skips),
        run.unknown_methods(),
        run.budget_exhausted(),
        json_opt(run.reverified.map(|n| n as u64)),
    )
}

/// The phase-attribution block of one JSON case: front-end and
/// symbolic-execution time plus total solver fuel, from one traced run.
fn phases_json(p: &ProfileReport) -> String {
    format!(
        "{{\"parse_micros\": {:.1}, \"exec_micros\": {:.1}, \"pre_micros\": {:.1}, \"body_micros\": {:.1}, \"post_micros\": {:.1}, \"solver_fuel\": {}}}",
        p.pipeline_micros("parse"),
        p.exec_micros(),
        p.method_phase_micros("pre"),
        p.method_phase_micros("body"),
        p.method_phase_micros("post"),
        p.total_fuel(),
    )
}

/// Emits `BENCH_verifier.json`: the positive case studies, the chain
/// sweep, the diverging (clause-learning) sweep, and — when enabled —
/// the incremental section.
fn write_bench_json(
    opts: &Opts,
    chain_rows: &[(usize, BackendRun, BackendRun, BackendRun, BackendRun)],
    diverging_rows: &[(usize, BackendRun, BackendRun)],
    incremental_rows: &[IncrementalRow],
) {
    let mut cases = Vec::new();
    for case in positive_cases() {
        let mut d = measure_median(
            case.source,
            Backend::Destabilized,
            &opts.config,
            opts.repeat,
        );
        // With `--incremental`/`--cache-dir` active, graft the
        // warm-rerun restore count onto the timed measurement: the
        // per-case verdict store was populated by the F1d section, so
        // this run reports how many methods the store could not
        // absorb instead of a `methods_reverified: null`.
        if let Some(dir) = &opts.cache_dir {
            let warm = run_backend_with(
                case.source,
                Backend::Destabilized,
                VerifierConfig {
                    cache_dir: Some(dir.join(case.name)),
                    ..opts.config.clone()
                },
            );
            d.reverified = warm.reverified;
        }
        let s = measure_median(
            case.source,
            Backend::StableBaseline,
            &opts.config,
            opts.repeat,
        );
        let p = phase_profile(case.source, Backend::Destabilized, &opts.config);
        cases.push(format!(
            "    {{\"name\": \"{}\", \"destabilized\": {}, \"stable_baseline\": {}, \"phases\": {}}}",
            case.name,
            run_json(&d),
            run_json(&s),
            phases_json(&p)
        ));
    }
    let mut chain = Vec::new();
    for (n, dm, dc, sm, sc) in chain_rows {
        let speedup = dc.time.as_secs_f64() / dm.time.as_secs_f64().max(1e-9);
        chain.push(format!(
            "    {{\"n\": {}, \"destabilized\": {{\"memoized\": {}, \"uncached\": {}, \"speedup\": {:.2}}}, \"stable_baseline\": {{\"memoized\": {}, \"uncached\": {}}}}}",
            n,
            run_json(dm),
            run_json(dc),
            speedup,
            run_json(sm),
            run_json(sc)
        ));
    }
    let mut diverging = Vec::new();
    for (k, dl, dn) in diverging_rows {
        diverging.push(format!(
            "    {{\"k\": {}, \"learn\": {}, \"no_learn\": {}}}",
            k,
            run_json(dl),
            run_json(dn)
        ));
    }
    let mut incremental = Vec::new();
    for (name, methods, reverified, time) in incremental_rows {
        incremental.push(format!(
            "    {{\"name\": \"{}\", \"methods\": {}, \"methods_reverified\": {}, \"wall_micros\": {:.1}}}",
            name,
            methods,
            reverified,
            time.as_secs_f64() * 1e6
        ));
    }
    let json = format!
        (
        "{{\n  \"experiment\": \"F1 verifier pipeline\",\n  \"command\": \"cargo run -p daenerys-bench --bin tables -- --f1 --json\",\n  \"config\": {{\"cache\": {}, \"simplify\": {}, \"learn\": {}, \"solver\": \"{}\", \"deny_unstable\": {}, \"incremental\": {}, \"threads\": {}, \"timeout_ms\": {}, \"fuel\": {}, \"repeat\": {}}},\n  \"cases\": [\n{}\n  ],\n  \"chain\": [\n{}\n  ],\n  \"diverging\": [\n{}\n  ],\n  \"incremental\": [\n{}\n  ]\n}}\n",
        opts.config.cache,
        opts.config.simplify,
        opts.config.learn,
        opts.config.solver.name(),
        opts.config.deny_unstable,
        opts.cache_dir.is_some(),
        opts.config.threads,
        json_opt(opts.config.budget.deadline_ms),
        json_opt(opts.config.budget.solver_fuel),
        opts.repeat,
        cases.join(",\n"),
        chain.join(",\n"),
        diverging.join(",\n"),
        incremental.join(",\n"),
    );
    let path = artifact_path(opts, "BENCH_verifier.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\n    wrote {}", path.display()),
        Err(e) => {
            eprintln!("tables: cannot write {}: {}", path.display(), e);
            std::process::exit(1);
        }
    }
}

/// Joins `name` onto `--out-dir`, creating the directory first.
fn artifact_path(opts: &Opts, name: &str) -> std::path::PathBuf {
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("tables: cannot create {}: {}", opts.out_dir.display(), e);
        std::process::exit(1);
    }
    opts.out_dir.join(name)
}

/// F2: stabilization cost — semantic ⌊·⌋ vs. the syntactic stabilizer.
fn figure_f2() {
    println!("\nF2. Stabilization cost: semantic ⌊P⌋ vs. syntactic stabilizer\n");
    println!(
        "    {:>6} {:>10} | {:>12} {:>12}",
        "locs", "resources", "semantic µs", "syntactic µs"
    );
    println!("    {}", "-".repeat(50));
    for locs in [1usize, 2] {
        let spec = if locs == 1 {
            UniverseSpec::tiny()
        } else {
            UniverseSpec::two_locs()
        };
        let uni = spec.build();
        let read = Assert::read_eq(Term::loc(daenerys_heaplang::Loc(0)), Term::int(1));
        let stab = Assert::stabilize(read.clone());

        // Semantic: check stability of ⌊read⌋ (frame quantification).
        let t0 = Instant::now();
        let iters = 5;
        for _ in 0..iters {
            let _ = check_stable(&stab, &uni, 1);
        }
        let sem = t0.elapsed() / iters;

        // Syntactic: one-pass transformation plus its stability check
        // by the *syntactic* judgment.
        let t0 = Instant::now();
        for _ in 0..1000 {
            let s = stabilize_fast(&read);
            let _ = daenerys_core::syntactically_stable(&s);
        }
        let syn = t0.elapsed() / 1000;

        println!(
            "    {:>6} {:>10} | {:>12} {:>12}",
            locs,
            uni.resources.len(),
            micros(sem),
            micros(syn)
        );
    }
}

/// F3: adequacy throughput — exhaustive interleaving exploration.
fn figure_f3() {
    println!("\nF3. Adequacy testing: exhaustive schedule exploration\n");
    println!(
        "    {:>8} | {:>8} {:>10} {:>10} {:>11}",
        "threads", "states", "terminals", "time µs", "states/ms"
    );
    println!("    {}", "-".repeat(56));
    for threads in [1usize, 2, 3] {
        let mut src = String::from("let c = ref 0 in ");
        for _ in 0..threads.saturating_sub(1) {
            src.push_str("fork (faa(c, 1)); ");
        }
        src.push_str("faa(c, 1); !c");
        let prog = parse(&src).expect("parses");
        let t0 = Instant::now();
        let result = explore(Machine::new(prog), 1024);
        let dt = t0.elapsed();
        println!(
            "    {:>8} | {:>8} {:>10} {:>10} {:>11.0}",
            threads,
            result.states_visited,
            result.terminals.len(),
            micros(dt),
            result.states_visited as f64 / dt.as_secs_f64() / 1000.0
        );
    }
}
