//! Edit-replay bench for the incremental verdict store.
//!
//! Generates a synthetic monorepo-scale corpus (see
//! `daenerys_bench::corpus`), then sweeps cold → warm → scripted-edit
//! runs against a persistent store and gates every phase against the
//! generator's own ground truth:
//!
//! - **cold**: fresh store, everything verifies;
//! - **warm**: nothing re-verifies, and the streamed store load stays
//!   under `--max-load-ms` (default 50 ms);
//! - **edit-leaf-body**: exactly one method re-verifies;
//! - **edit-hub-spec**: exactly the hub's reverse-reachable cone
//!   re-verifies (ground truth from the generated adjacency);
//! - **edit-spec-noop**: a formatting-only spec touch re-verifies
//!   nothing.
//!
//! A differential pass re-runs the warm restore at `--threads`
//! (default `1,2,8`) and asserts the restored verdicts are
//! bit-identical to the cold run's. Results land in
//! `target/bench/BENCH_incremental.json` (override with `--out`); any
//! gate failure exits non-zero, so CI can call this binary directly.
//!
//! ```text
//! store_replay [--methods N] [--depth N] [--fan-out N] [--diamond PCT]
//!              [--seed N] [--store-format daes1|jsonl] [--threads LIST]
//!              [--max-load-ms MS] [--expect-reverified N] [--out FILE]
//! ```

use daenerys_bench::corpus::{Corpus, CorpusSpec, Edit};
use daenerys_idf::{
    parse_program, Backend, SessionHost, StoreFormat, Verdict, VerdictStore, VerifierConfig,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One phase's measurements, as they land in the JSON report.
struct Phase {
    name: &'static str,
    reverified: usize,
    expected: usize,
    wall_ms: f64,
    store_load_ms: Option<f64>,
}

struct Options {
    spec: CorpusSpec,
    store_format: Option<StoreFormat>,
    threads: Vec<usize>,
    max_load_ms: f64,
    expect_reverified: Option<usize>,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: store_replay [--methods N] [--depth N] [--fan-out N] [--diamond PCT]\n\
         \x20                   [--seed N] [--store-format daes1|jsonl] [--threads LIST]\n\
         \x20                   [--max-load-ms MS] [--expect-reverified N] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut opts = Options {
        spec: CorpusSpec::default(),
        store_format: None,
        threads: vec![1, 2, 8],
        max_load_ms: 50.0,
        expect_reverified: None,
        out: PathBuf::from("target/bench/BENCH_incremental.json"),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("store_replay: {} needs a value", flag);
            usage();
        });
        let num = |what: &str| -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("store_replay: {} wants {}, got {:?}", flag, what, value);
                usage();
            })
        };
        match flag {
            "--methods" => opts.spec.methods = num("a count"),
            "--depth" => opts.spec.depth = num("a layer count"),
            "--fan-out" => opts.spec.fan_out = num("a count"),
            "--diamond" => opts.spec.diamond_pct = num("a percentage") as u32,
            "--seed" => opts.spec.seed = num("a seed") as u64,
            "--max-load-ms" => opts.max_load_ms = num("milliseconds") as f64,
            "--expect-reverified" => opts.expect_reverified = Some(num("a count")),
            "--store-format" => {
                opts.store_format = Some(StoreFormat::parse(&value).unwrap_or_else(|| {
                    eprintln!("store_replay: unknown store format {:?}", value);
                    usage();
                }))
            }
            "--threads" => {
                opts.threads = value
                    .split(',')
                    .map(|t| {
                        t.trim().parse().unwrap_or_else(|_| {
                            eprintln!("store_replay: bad thread count {:?}", t);
                            usage();
                        })
                    })
                    .collect()
            }
            "--out" => opts.out = PathBuf::from(&value),
            _ => {
                eprintln!("store_replay: unknown flag {:?}", flag);
                usage();
            }
        }
        i += 2;
    }
    if opts.threads.is_empty() {
        opts.threads = vec![1];
    }
    opts
}

/// One verification pass against the store in `dir`; returns the
/// normalized verdicts, the re-verified count, and the wall time.
fn run(
    src: &str,
    dir: &Path,
    threads: usize,
    format: Option<StoreFormat>,
) -> (BTreeMap<String, Verdict>, usize, f64) {
    let program = parse_program(src).unwrap_or_else(|e| {
        eprintln!("store_replay: generated corpus failed to parse: {:?}", e);
        std::process::exit(1);
    });
    let config = VerifierConfig {
        threads,
        cache_dir: Some(dir.to_path_buf()),
        store_format: format,
        ..VerifierConfig::default()
    };
    let start = Instant::now();
    let host = SessionHost::new(Backend::Destabilized, config);
    let outcome = host.session().verify_program(&program);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    let verdicts: BTreeMap<String, Verdict> = outcome
        .verdicts
        .into_iter()
        .map(|(name, verdict)| (name, verdict.normalized()))
        .collect();
    let reverified = outcome
        .reverified
        .expect("cache_dir is set, so the run is incremental");
    (verdicts, reverified, wall_ms)
}

/// Copies every regular file of `from` into a fresh `to`, so each edit
/// phase replays against a pristine warm store.
fn snapshot(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).expect("create snapshot dir");
    for entry in std::fs::read_dir(from).expect("read store dir") {
        let entry = entry.expect("read store dir entry");
        if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy store file");
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let opts = parse_options();
    let corpus = Corpus::generate(opts.spec);
    let hub = corpus.hub();
    let cone = corpus.reverse_reachable(hub).len();
    let scratch =
        std::env::temp_dir().join(format!("daenerys-store-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let cold_dir = scratch.join("cold");
    let base = corpus.source(None);
    let threads = opts.threads[0];

    let mut phases: Vec<Phase> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    fn gate(phases: &mut Vec<Phase>, failures: &mut Vec<String>, phase: Phase) {
        if phase.reverified != phase.expected {
            failures.push(format!(
                "{}: re-verified {} methods, expected {}",
                phase.name, phase.reverified, phase.expected
            ));
        }
        eprintln!(
            "store_replay: {:<16} reverified {:>6} (expected {:>6})  {:>9.1} ms{}",
            phase.name,
            phase.reverified,
            phase.expected,
            phase.wall_ms,
            phase
                .store_load_ms
                .map(|ms| format!("  (store load {:.2} ms)", ms))
                .unwrap_or_default(),
        );
        phases.push(phase);
    }

    // Phase 1: cold — fresh store, the whole corpus verifies.
    let (cold_verdicts, reverified, wall_ms) = run(&base, &cold_dir, threads, opts.store_format);
    gate(
        &mut phases,
        &mut failures,
        Phase {
            name: "cold",
            reverified,
            expected: corpus.len(),
            wall_ms,
            store_load_ms: None,
        },
    );

    // Phase 2: warm — same source, nothing re-verifies, and the
    // streamed store load itself stays fast.
    let load_start = Instant::now();
    let store = VerdictStore::open(&cold_dir);
    let store_load_ms = load_start.elapsed().as_secs_f64() * 1000.0;
    if store.len() != corpus.len() {
        failures.push(format!(
            "warm store holds {} entries, expected {}",
            store.len(),
            corpus.len()
        ));
    }
    drop(store);
    let (warm_verdicts, reverified, wall_ms) = run(&base, &cold_dir, threads, opts.store_format);
    gate(
        &mut phases,
        &mut failures,
        Phase {
            name: "warm",
            reverified,
            expected: 0,
            wall_ms,
            store_load_ms: Some(store_load_ms),
        },
    );
    if opts.max_load_ms > 0.0 && store_load_ms > opts.max_load_ms {
        failures.push(format!(
            "store load took {:.2} ms, gate is {} ms",
            store_load_ms, opts.max_load_ms
        ));
    }
    if warm_verdicts != cold_verdicts {
        failures.push("warm restore changed a verdict".to_string());
    }

    // Phases 3–5: scripted edits, each replayed against a pristine
    // snapshot of the warm store.
    for edit in [Edit::TouchLeafBody, Edit::TouchHubSpec, Edit::TouchSpecNoop] {
        let dir = scratch.join(edit.name());
        snapshot(&cold_dir, &dir);
        let (_, reverified, wall_ms) =
            run(&corpus.source(Some(edit)), &dir, threads, opts.store_format);
        let expected = corpus.expected_reverified(edit);
        if edit == Edit::TouchHubSpec {
            if let Some(want) = opts.expect_reverified {
                if reverified != want {
                    failures.push(format!(
                        "edit-hub-spec: re-verified {}, --expect-reverified {}",
                        reverified, want
                    ));
                }
            }
        }
        gate(
            &mut phases,
            &mut failures,
            Phase {
                name: match edit {
                    Edit::TouchLeafBody => "edit-leaf-body",
                    Edit::TouchHubSpec => "edit-hub-spec",
                    Edit::TouchSpecNoop => "edit-spec-noop",
                },
                reverified,
                expected,
                wall_ms,
                store_load_ms: None,
            },
        );
    }

    // Differential: warm restores are bit-identical to the cold run at
    // every thread count.
    let mut differential: Vec<(usize, bool)> = Vec::new();
    for &t in &opts.threads {
        let dir = scratch.join(format!("diff-{}", t));
        snapshot(&cold_dir, &dir);
        let (verdicts, _, _) = run(&base, &dir, t, opts.store_format);
        let identical = verdicts == cold_verdicts;
        if !identical {
            failures.push(format!(
                "restored verdicts differ from cold at {} thread(s)",
                t
            ));
        }
        differential.push((t, identical));
    }

    // Render BENCH_incremental.json by hand (no serde in-tree).
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"methods\": {}, \"depth\": {}, \"fan_out\": {}, \"diamond_pct\": {}, \"seed\": {}, \"store_format\": \"{}\", \"threads\": [{}]}},",
        opts.spec.methods,
        opts.spec.depth,
        opts.spec.fan_out,
        opts.spec.diamond_pct,
        opts.spec.seed,
        opts.store_format
            .unwrap_or(StoreFormat::Daes1)
            .name(),
        opts.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    let _ = write!(
        json,
        "  \"hub\": \"{}\", \"hub_cone\": {},\n  \"phases\": [\n",
        json_escape(&Corpus::method_name(hub)),
        cone
    );
    for (i, p) in phases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"phase\": \"{}\", \"reverified\": {}, \"expected\": {}, \"wall_ms\": {:.3}{}}}{}",
            p.name,
            p.reverified,
            p.expected,
            p.wall_ms,
            p.store_load_ms
                .map(|ms| format!(", \"store_load_ms\": {:.3}", ms))
                .unwrap_or_default(),
            if i + 1 < phases.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"differential\": [\n");
    for (i, (t, ok)) in differential.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"bit_identical\": {}}}{}",
            t,
            ok,
            if i + 1 < differential.len() { "," } else { "" },
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"gates_passed\": {}\n}}",
        failures.is_empty()
    );
    if let Some(parent) = opts.out.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| {
        eprintln!("store_replay: cannot write {}: {}", opts.out.display(), e);
        std::process::exit(1);
    });
    eprintln!("store_replay: wrote {}", opts.out.display());

    let _ = std::fs::remove_dir_all(&scratch);
    if failures.is_empty() {
        eprintln!("store_replay: all gates passed");
    } else {
        for f in &failures {
            eprintln!("store_replay: GATE FAILED: {}", f);
        }
        std::process::exit(1);
    }
}
