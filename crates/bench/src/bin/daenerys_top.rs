//! `daenerys-top` — a live, `top(1)`-style view of a running
//! `daenerysd`, built entirely from admin-frame scrapes.
//!
//!     daenerys-top --addr HOST:PORT [--interval-ms MS] [--frames N]
//!                  [--raw] [--no-clear]
//!     daenerys-top --addr HOST:PORT --health
//!     daenerys-top --addr HOST:PORT --tail [--after-seq K] [--max M]
//!
//! The default mode scrapes the `metrics` and `health` frames every
//! `--interval-ms` (500ms) and renders a per-tenant table: request
//! throughput (from counter deltas between consecutive scrapes),
//! p50/p95/p99 request latency, fuel spend per second, query-cache hit
//! rate, solver conflict/restart rates, and live in-flight — plus a
//! per-phase time-attribution table from `daenerysd.phase_nanos`.
//! `--frames N` exits after N renders (0 = run until killed), which is
//! how the smoke script uses it; `--raw` prints the raw scrape JSON
//! instead of the table.
//!
//! `--health` prints one health body and exits non-zero when the
//! admission ledger does not conserve — a one-shot liveness probe.
//! `--tail` prints the trace tail as JSONL, one event per line, in
//! exactly the schema `trace_validate` accepts:
//!
//!     daenerys-top --addr H:P --tail | trace_validate /dev/stdin

use daenerys_obs::{parse_json, Json};
use daenerysd::client::Client;
use daenerysd::protocol::{AdminRequest, Response};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Top,
    Health,
    Tail,
}

struct Opts {
    addr: SocketAddr,
    interval: Duration,
    frames: u64,
    mode: Mode,
    after_seq: u64,
    max: u64,
    raw: bool,
    clear: bool,
}

fn usage() -> &'static str {
    "usage: daenerys-top --addr HOST:PORT [--interval-ms MS] [--frames N]\n\
     \x20                 [--raw] [--no-clear] [--health]\n\
     \x20                 [--tail [--after-seq K] [--max M]]"
}

fn parse_opts() -> Result<Opts, String> {
    let mut addr: Option<SocketAddr> = None;
    let mut opts = Opts {
        addr: "127.0.0.1:0".parse().unwrap(),
        interval: Duration::from_millis(500),
        frames: 0,
        mode: Mode::Top,
        after_seq: 0,
        max: u64::MAX,
        raw: false,
        clear: true,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{} needs a value\n{}", name, usage()))
        };
        let num = |s: String| {
            s.parse::<u64>()
                .map_err(|_| format!("expected a number, got {:?}", s))
        };
        match flag.as_str() {
            "--addr" => {
                addr = Some(
                    value("--addr")?
                        .parse()
                        .map_err(|e| format!("--addr: {}", e))?,
                );
            }
            "--interval-ms" => {
                opts.interval = Duration::from_millis(num(value("--interval-ms")?)?.max(1));
            }
            "--frames" => opts.frames = num(value("--frames")?)?,
            "--health" => opts.mode = Mode::Health,
            "--tail" => opts.mode = Mode::Tail,
            "--after-seq" => opts.after_seq = num(value("--after-seq")?)?,
            "--max" => opts.max = num(value("--max")?)?,
            "--raw" => opts.raw = true,
            "--no-clear" => opts.clear = false,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {:?}\n{}", other, usage())),
        }
    }
    opts.addr = addr.ok_or_else(|| format!("--addr is required\n{}", usage()))?;
    Ok(opts)
}

fn scrape(client: &Client, req: &AdminRequest) -> Result<Json, String> {
    match client.admin_once(req) {
        Ok(Response::Admin { body, .. }) => {
            parse_json(&body).map_err(|e| format!("scrape body did not parse: {}", e))
        }
        Ok(Response::Err { message, .. }) => Err(format!("daemon refused the scrape: {}", message)),
        Ok(other) => Err(format!("unexpected response: {:?}", other)),
        Err(e) => Err(e.to_string()),
    }
}

/// One tenant's cumulative counters/quantiles as of a scrape.
#[derive(Default, Clone)]
struct TenantRow {
    requests: u64,
    cache_hits: u64,
    cache_misses: u64,
    conflicts: u64,
    restarts: u64,
    fuel: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    in_flight: u64,
}

fn obj_num(obj: &BTreeMap<String, Json>, key: &str) -> f64 {
    obj.get(key).and_then(Json::as_num).unwrap_or(0.0)
}

fn tenant_label(entry: &BTreeMap<String, Json>) -> Option<String> {
    entry
        .get("labels")
        .and_then(Json::as_obj)
        .and_then(|l| l.get("tenant"))
        .and_then(Json::as_str)
        .map(str::to_string)
}

/// Folds a `metrics` scrape into per-tenant rows and per-phase totals.
fn digest(
    metrics: &Json,
    health: Option<&Json>,
) -> (BTreeMap<String, TenantRow>, BTreeMap<String, (u64, u64)>) {
    let mut rows: BTreeMap<String, TenantRow> = BTreeMap::new();
    let mut phases: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let obj = metrics.as_obj();
    let counters = obj
        .and_then(|o| o.get("counters"))
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    for c in counters.iter().filter_map(Json::as_obj) {
        let Some(tenant) = tenant_label(c) else {
            continue;
        };
        let row = rows.entry(tenant).or_default();
        let value = obj_num(c, "value") as u64;
        match c.get("name").and_then(Json::as_str).unwrap_or("") {
            "daenerysd.requests" => row.requests = value,
            "daenerysd.cache_hits" => row.cache_hits = value,
            "daenerysd.cache_misses" => row.cache_misses = value,
            "daenerysd.solver_conflicts" => row.conflicts = value,
            "daenerysd.solver_restarts" => row.restarts = value,
            _ => {}
        }
    }
    let histograms = obj
        .and_then(|o| o.get("histograms"))
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    for h in histograms.iter().filter_map(Json::as_obj) {
        match h.get("name").and_then(Json::as_str).unwrap_or("") {
            "daenerysd.latency_us" => {
                if let Some(tenant) = tenant_label(h) {
                    let row = rows.entry(tenant).or_default();
                    row.p50_us = obj_num(h, "p50");
                    row.p95_us = obj_num(h, "p95");
                    row.p99_us = obj_num(h, "p99");
                }
            }
            "daenerysd.fuel" => {
                if let Some(tenant) = tenant_label(h) {
                    rows.entry(tenant).or_default().fuel = obj_num(h, "sum") as u64;
                }
            }
            "daenerysd.phase_nanos" => {
                if let Some(phase) = h
                    .get("labels")
                    .and_then(Json::as_obj)
                    .and_then(|l| l.get("phase"))
                    .and_then(Json::as_str)
                {
                    let slot = phases.entry(phase.to_string()).or_insert((0, 0));
                    slot.0 += obj_num(h, "count") as u64;
                    slot.1 += obj_num(h, "sum") as u64;
                }
            }
            _ => {}
        }
    }
    if let Some(tenants) = health
        .and_then(Json::as_obj)
        .and_then(|o| o.get("tenants"))
        .and_then(Json::as_obj)
    {
        for (tenant, row) in tenants {
            if let Some(r) = row.as_obj() {
                rows.entry(tenant.clone()).or_default().in_flight = obj_num(r, "in_flight") as u64;
            }
        }
    }
    (rows, phases)
}

fn rate(now: u64, before: u64, dt_s: f64) -> f64 {
    now.saturating_sub(before) as f64 / dt_s.max(1e-9)
}

fn render(
    opts: &Opts,
    frame: u64,
    health: Option<&Json>,
    rows: &BTreeMap<String, TenantRow>,
    phases: &BTreeMap<String, (u64, u64)>,
    prev: Option<&BTreeMap<String, TenantRow>>,
) {
    let dt_s = opts.interval.as_secs_f64();
    if opts.clear {
        print!("\x1b[2J\x1b[H");
    }
    let (uptime_ms, conserved, draining) = health
        .and_then(Json::as_obj)
        .map(|h| {
            (
                obj_num(h, "uptime_ms") as u64,
                h.get("conserved") == Some(&Json::Bool(true)),
                h.get("draining") == Some(&Json::Bool(true)),
            )
        })
        .unwrap_or((0, false, false));
    println!(
        "daenerys-top — {} — frame {} — up {:.1}s — conserved {}{}",
        opts.addr,
        frame,
        uptime_ms as f64 / 1e3,
        if conserved { "yes" } else { "NO" },
        if draining { " — DRAINING" } else { "" },
    );
    println!(
        "{:<14} {:>8} {:>7} {:>8} {:>8} {:>8} {:>9} {:>6} {:>7} {:>6} {:>5}",
        "TENANT",
        "REQS",
        "RPS",
        "P50ms",
        "P95ms",
        "P99ms",
        "FUEL/s",
        "HIT%",
        "CONF/s",
        "RST/s",
        "INFL"
    );
    for (tenant, row) in rows {
        let before = prev
            .and_then(|p| p.get(tenant))
            .cloned()
            .unwrap_or_default();
        let lookups = row.cache_hits + row.cache_misses;
        let hit_pct = if lookups == 0 {
            0.0
        } else {
            100.0 * row.cache_hits as f64 / lookups as f64
        };
        println!(
            "{:<14} {:>8} {:>7.1} {:>8.2} {:>8.2} {:>8.2} {:>9.0} {:>6.1} {:>7.1} {:>6.1} {:>5}",
            tenant,
            row.requests,
            rate(row.requests, before.requests, dt_s),
            row.p50_us / 1e3,
            row.p95_us / 1e3,
            row.p99_us / 1e3,
            rate(row.fuel, before.fuel, dt_s),
            hit_pct,
            rate(row.conflicts, before.conflicts, dt_s),
            rate(row.restarts, before.restarts, dt_s),
            row.in_flight,
        );
    }
    if rows.is_empty() {
        println!("(no tenant traffic yet)");
    }
    if !phases.is_empty() {
        println!();
        println!(
            "{:<14} {:>10} {:>12} {:>10}",
            "PHASE", "SPANS", "TOTAL ms", "AVG µs"
        );
        for (phase, (count, nanos)) in phases {
            let avg_us = if *count == 0 {
                0.0
            } else {
                *nanos as f64 / *count as f64 / 1e3
            };
            println!(
                "{:<14} {:>10} {:>12.1} {:>10.1}",
                phase,
                count,
                *nanos as f64 / 1e6,
                avg_us
            );
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{}", msg);
            return ExitCode::FAILURE;
        }
    };
    let client = Client::new(opts.addr).with_read_timeout(Duration::from_secs(10));
    match opts.mode {
        Mode::Health => match scrape(&client, &AdminRequest::Health { id: 1 }) {
            Ok(body) => {
                println!("{}", body.render());
                let conserved = body
                    .as_obj()
                    .map(|h| h.get("conserved") == Some(&Json::Bool(true)));
                if conserved == Some(true) {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("daenerys-top: admission ledger does NOT conserve");
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("daenerys-top: {}", e);
                ExitCode::FAILURE
            }
        },
        Mode::Tail => {
            let req = AdminRequest::TraceTail {
                id: 1,
                after_seq: opts.after_seq,
                max: opts.max,
            };
            match scrape(&client, &req) {
                Ok(body) => {
                    let obj = body.as_obj();
                    let events = obj
                        .and_then(|o| o.get("events"))
                        .and_then(Json::as_arr)
                        .unwrap_or(&[]);
                    // One event per line: the output *is* a trace
                    // stream trace_validate accepts.
                    for event in events {
                        println!("{}", event.render());
                    }
                    if let Some(dropped) = obj.and_then(|o| o.get("dropped")) {
                        eprintln!(
                            "daenerys-top: {} event(s), dropped {}, latest_seq {}",
                            events.len(),
                            dropped.render(),
                            obj.map_or(0.0, |o| obj_num(o, "latest_seq")),
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("daenerys-top: {}", e);
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Top => {
            let mut prev: Option<BTreeMap<String, TenantRow>> = None;
            let mut frame = 0u64;
            loop {
                frame += 1;
                let metrics = match scrape(&client, &AdminRequest::Metrics { id: frame }) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("daenerys-top: {}", e);
                        return ExitCode::FAILURE;
                    }
                };
                let health = scrape(&client, &AdminRequest::Health { id: frame }).ok();
                if opts.raw {
                    println!("{}", metrics.render());
                } else {
                    let (rows, phases) = digest(&metrics, health.as_ref());
                    render(&opts, frame, health.as_ref(), &rows, &phases, prev.as_ref());
                    prev = Some(rows);
                }
                if opts.frames != 0 && frame >= opts.frames {
                    return ExitCode::SUCCESS;
                }
                std::thread::sleep(opts.interval);
            }
        }
    }
}
