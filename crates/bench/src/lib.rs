//! Shared helpers for the Daenerys evaluation harness.
//!
//! The binary `tables` regenerates every table and figure of
//! `EXPERIMENTS.md`; the Criterion benches measure the timing studies.

#![warn(missing_docs)]

use daenerys_idf::{parse_program, Backend, Verdict, Verifier, VerifierConfig, VerifyStats};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Aggregated per-backend measurement for one program.
#[derive(Clone, Debug)]
pub struct BackendRun {
    /// Wall-clock verification time.
    pub time: Duration,
    /// Per-method statistics (verified methods only).
    pub stats: BTreeMap<String, VerifyStats>,
    /// Per-method verdicts, including methods degraded to `Unknown`
    /// under a finite budget.
    pub verdicts: BTreeMap<String, Verdict>,
}

impl BackendRun {
    /// Sums a statistic across verified methods.
    pub fn total(&self, f: impl Fn(&VerifyStats) -> usize) -> usize {
        self.stats.values().map(f).sum()
    }

    /// Methods whose verdict degraded to `Unknown` (budget or
    /// fragment).
    pub fn unknown_methods(&self) -> usize {
        self.verdicts
            .values()
            .filter(|v| matches!(v, Verdict::Unknown { .. }))
            .count()
    }

    /// Budget-exhaustion events across the run: methods that ended
    /// `Unknown` on an exhausted budget, plus exhausted first attempts
    /// absorbed by the retry-with-escalated-budget policy.
    pub fn budget_exhausted(&self) -> usize {
        let unknown: usize = self
            .verdicts
            .values()
            .filter(|v| v.is_budget_exhausted())
            .count();
        unknown + self.total(|s| s.budget_exhausted)
    }
}

/// Verifies a program on one backend, timing it.
///
/// # Panics
///
/// Panics when the program does not parse or does not verify — the
/// harness only measures verifying programs.
pub fn run_backend(src: &str, backend: Backend) -> BackendRun {
    run_backend_with(src, backend, VerifierConfig::default())
}

/// As [`run_backend`], with an explicit pipeline configuration
/// (caching on/off, worker-thread count, budget).
///
/// # Panics
///
/// Panics when the program does not parse, or when any method fails or
/// crashes. Methods degraded to `Unknown` under a finite budget are
/// tolerated and reported through [`BackendRun::verdicts`].
pub fn run_backend_with(src: &str, backend: Backend, config: VerifierConfig) -> BackendRun {
    let program = parse_program(src).expect("harness program parses");
    let start = Instant::now();
    let mut verifier = Verifier::with_config(&program, backend, config);
    let verdicts = verifier.verify_all_verdicts();
    let time = start.elapsed();
    let mut stats = BTreeMap::new();
    for (name, verdict) in &verdicts {
        match verdict {
            Verdict::Verified(s) => {
                stats.insert(name.clone(), s.clone());
            }
            Verdict::Unknown { .. } => {}
            other => panic!("harness program must verify: {} is {}", name, other),
        }
    }
    BackendRun {
        time,
        stats,
        verdicts,
    }
}

/// Formats a duration in microseconds for table cells.
pub fn micros(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_idf::Budget;

    #[test]
    fn run_backend_measures_something() {
        let src = "field v: Int
                   method id(c: Ref) requires acc(c.v) ensures acc(c.v) { }";
        let run = run_backend(src, Backend::Destabilized);
        assert_eq!(run.stats.len(), 1);
        assert!(run.total(|s| s.obligations) >= 1);
        assert_eq!(run.unknown_methods(), 0);
        assert_eq!(run.budget_exhausted(), 0);
    }

    #[test]
    fn budgeted_runs_report_unknowns_instead_of_panicking() {
        let src = daenerys_idf::diverging_program(10);
        let config = VerifierConfig {
            budget: Budget::unlimited().with_solver_fuel(64),
            retry_unknown: false,
            ..VerifierConfig::default()
        };
        let run = run_backend_with(&src, Backend::Destabilized, config);
        assert_eq!(run.unknown_methods(), 1);
        assert_eq!(run.budget_exhausted(), 1);
        assert_eq!(run.stats.len(), 2, "siblings still measured");
    }
}
