//! Shared helpers for the Daenerys evaluation harness.
//!
//! The binary `tables` regenerates every table and figure of
//! `EXPERIMENTS.md`; the Criterion benches measure the timing studies.

#![warn(missing_docs)]

pub mod corpus;

use daenerys_idf::{
    parse_program, parse_program_traced, Backend, SessionHost, Verdict, VerifierConfig, VerifyStats,
};
use daenerys_obs::{Event, EventKind, Value};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Aggregated per-backend measurement for one program.
#[derive(Clone, Debug)]
pub struct BackendRun {
    /// Wall-clock verification time.
    pub time: Duration,
    /// Per-method statistics (verified methods only).
    pub stats: BTreeMap<String, VerifyStats>,
    /// Per-method verdicts, including methods degraded to `Unknown`
    /// under a finite budget.
    pub verdicts: BTreeMap<String, Verdict>,
    /// How many methods were actually re-verified (`Some` only for
    /// incremental runs, i.e. when the config has a `cache_dir`; the
    /// rest were restored from the persistent verdict store).
    pub reverified: Option<usize>,
}

impl BackendRun {
    /// Sums a statistic across verified methods.
    pub fn total(&self, f: impl Fn(&VerifyStats) -> usize) -> usize {
        self.stats.values().map(f).sum()
    }

    /// Methods whose verdict degraded to `Unknown` (budget or
    /// fragment).
    pub fn unknown_methods(&self) -> usize {
        self.verdicts
            .values()
            .filter(|v| matches!(v, Verdict::Unknown { .. }))
            .count()
    }

    /// Hard counter invariant: every solver query is answered either
    /// by the memo table or by a fresh decision, in *every* mode —
    /// cached, uncached, single- or multi-threaded, incremental. A
    /// violation means a counting path regressed (the pre-PR-4
    /// baseline reported `cache_misses: 0` for uncached chain runs),
    /// so the harness refuses to emit numbers built on it.
    ///
    /// # Panics
    ///
    /// Panics when `cache_hits + cache_misses != solver_queries`.
    pub fn check_cache_accounting(&self) {
        let (hits, misses) = (self.total(|s| s.cache_hits), self.total(|s| s.cache_misses));
        let queries = self.total(|s| s.solver_queries);
        assert_eq!(
            hits + misses,
            queries,
            "cache accounting invariant broken: hits({}) + misses({}) != queries({})",
            hits,
            misses,
            queries
        );
    }

    /// Budget-exhaustion events across the run: methods that ended
    /// `Unknown` on an exhausted budget, plus exhausted first attempts
    /// absorbed by the retry-with-escalated-budget policy.
    pub fn budget_exhausted(&self) -> usize {
        let unknown: usize = self
            .verdicts
            .values()
            .filter(|v| v.is_budget_exhausted())
            .count();
        unknown + self.total(|s| s.budget_exhausted)
    }
}

/// Verifies a program on one backend, timing it.
///
/// # Panics
///
/// Panics when the program does not parse or does not verify — the
/// harness only measures verifying programs.
pub fn run_backend(src: &str, backend: Backend) -> BackendRun {
    run_backend_with(src, backend, VerifierConfig::default())
}

/// As [`run_backend`], with an explicit pipeline configuration
/// (caching on/off, worker-thread count, budget).
///
/// # Panics
///
/// Panics when the program does not parse, or when any method fails or
/// crashes. Methods degraded to `Unknown` under a finite budget are
/// tolerated and reported through [`BackendRun::verdicts`].
pub fn run_backend_with(src: &str, backend: Backend, config: VerifierConfig) -> BackendRun {
    let program = if config.trace.is_enabled() {
        let mut collector = config.trace.collector();
        let program = parse_program_traced(src, &mut collector).expect("harness program parses");
        let (events, metrics) = collector.take();
        config.trace.emit(events);
        config.trace.merge_metrics(&metrics);
        program
    } else {
        parse_program(src).expect("harness program parses")
    };
    // The harness is a Session client like every other front end (the
    // CLI, the daemon): the host owns the warm store when the config
    // has a `cache_dir`, and the timed region covers store open +
    // verification, exactly as the owned-verifier path did.
    let start = Instant::now();
    let host = SessionHost::new(backend, config);
    let outcome = host.session().verify_program(&program);
    let time = start.elapsed();
    let verdicts = outcome.verdicts;
    let reverified = outcome.reverified;
    let mut stats = BTreeMap::new();
    for (name, verdict) in &verdicts {
        match verdict {
            Verdict::Verified(s) => {
                stats.insert(name.clone(), s.clone());
            }
            Verdict::Unknown { .. } => {}
            other => panic!("harness program must verify: {} is {}", name, other),
        }
    }
    let run = BackendRun {
        time,
        stats,
        verdicts,
        reverified,
    };
    run.check_cache_accounting();
    run
}

/// Formats a duration in microseconds for table cells.
pub fn micros(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Runs the verifier `repeat` times after one untimed warmup run and
/// returns the measurement with the median wall time. Single-shot
/// timings on a shared machine are dominated by scheduler noise; the
/// warmup pays the one-time allocator and page-cache costs and the
/// median discards outliers without the bias of a mean.
///
/// When the config's trace is enabled the program is verified exactly
/// once with no warmup — repetition would duplicate every span in the
/// sink, and traced runs measure structure, not time.
///
/// # Panics
///
/// As [`run_backend_with`].
pub fn measure_median(
    src: &str,
    backend: Backend,
    config: &VerifierConfig,
    repeat: usize,
) -> BackendRun {
    if config.trace.is_enabled() {
        return run_backend_with(src, backend, config.clone());
    }
    let repeat = repeat.max(1);
    let _warmup = run_backend_with(src, backend, config.clone());
    let mut runs: Vec<BackendRun> = (0..repeat)
        .map(|_| run_backend_with(src, backend, config.clone()))
        .collect();
    runs.sort_by_key(|r| r.time);
    runs.swap_remove(repeat / 2)
}

/// How many hot queries a [`ProfileReport`] keeps.
pub const HOT_PROFILE_LIMIT: usize = 10;

/// Per-method cost attribution reconstructed from a trace.
#[derive(Clone, Debug, Default)]
pub struct MethodProfile {
    /// Duration of the method's `exec:<name>` span, in nanoseconds.
    pub total_nanos: u64,
    /// Nanoseconds per inner phase span (`pre`, `body`, `post`,
    /// `branch:*`, `loop:*`), summed over repeated entries.
    pub phase_nanos: BTreeMap<String, u64>,
    /// Solver queries issued while verifying the method.
    pub queries: u64,
    /// Total solver fuel burned by those queries
    /// (conflicts + propagations under CDCL; branches under DPLL).
    pub fuel: u64,
    /// Queries answered from the memo table.
    pub cache_hits: u64,
    /// Conflict clauses learned while answering those queries.
    pub learned: u64,
}

/// One expensive solver query surfaced by the profile.
#[derive(Clone, Debug)]
pub struct HotQuery {
    /// The method being verified when the query was issued.
    pub method: String,
    /// The call site label (`postcondition: ...`, `branch feasibility`, …).
    pub site: String,
    /// Solver fuel the query cost (conflicts + propagations
    /// under CDCL; branches under DPLL).
    pub fuel: u64,
    /// Whether the memo table answered it.
    pub cache_hit: bool,
    /// Normalized path-condition hash — equal hashes across methods
    /// flag repeated work the cache should be absorbing.
    pub pc_hash: u64,
}

/// Phase-attributed cost report aggregated from a merged trace.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Front-end pipeline phases (`parse`, `wf`) in nanoseconds.
    pub pipeline_nanos: BTreeMap<String, u64>,
    /// Per-method attribution, keyed by method name.
    pub methods: BTreeMap<String, MethodProfile>,
    /// The most expensive solver queries of the run, by fuel, capped
    /// at [`HOT_PROFILE_LIMIT`].
    pub hottest: Vec<HotQuery>,
}

impl ProfileReport {
    /// A pipeline phase duration in microseconds (0 when absent).
    pub fn pipeline_micros(&self, phase: &str) -> f64 {
        self.pipeline_nanos.get(phase).copied().unwrap_or(0) as f64 / 1e3
    }

    /// Summed `exec:<method>` time across methods, in microseconds.
    pub fn exec_micros(&self) -> f64 {
        self.methods.values().map(|m| m.total_nanos).sum::<u64>() as f64 / 1e3
    }

    /// Summed inner-phase time across methods, in microseconds
    /// (0 when no method entered the phase).
    pub fn method_phase_micros(&self, phase: &str) -> f64 {
        self.methods
            .values()
            .map(|m| m.phase_nanos.get(phase).copied().unwrap_or(0))
            .sum::<u64>() as f64
            / 1e3
    }

    /// Total solver fuel across methods.
    pub fn total_fuel(&self) -> u64 {
        self.methods.values().map(|m| m.fuel).sum()
    }
}

/// Reconstructs a [`ProfileReport`] from a merged event stream.
///
/// The stream is expected in program order as produced by
/// [`daenerys_obs::TraceHandle`]: per-method events are contiguous,
/// bracketed by `exec:<name>` spans, with front-end spans (`parse`,
/// `wf`) outside any method. Events the profiler does not recognize
/// are skipped, so a report can always be built from a valid trace.
pub fn profile_events(events: &[Event]) -> ProfileReport {
    let mut report = ProfileReport::default();
    let mut current: Option<String> = None;
    for e in events {
        match e.kind {
            EventKind::SpanStart => {
                if let Some(m) = e.name.strip_prefix("exec:") {
                    current = Some(m.to_string());
                }
            }
            EventKind::SpanEnd => {
                let nanos = e.field_u64("duration_nanos").unwrap_or(0);
                if let Some(m) = e.name.strip_prefix("exec:") {
                    report.methods.entry(m.to_string()).or_default().total_nanos += nanos;
                    current = None;
                } else if let Some(m) = &current {
                    *report
                        .methods
                        .entry(m.clone())
                        .or_default()
                        .phase_nanos
                        .entry(e.name.clone())
                        .or_insert(0) += nanos;
                } else {
                    *report.pipeline_nanos.entry(e.name.clone()).or_insert(0) += nanos;
                }
            }
            EventKind::Point if e.name == "solver.query" => {
                let method = current.clone().unwrap_or_default();
                let fuel = e.field_u64("fuel").unwrap_or(0);
                let cache_hit = matches!(e.field("cache_hit"), Some(Value::Bool(true)));
                let profile = report.methods.entry(method.clone()).or_default();
                profile.queries += 1;
                profile.fuel += fuel;
                profile.learned += e.field_u64("learned").unwrap_or(0);
                if cache_hit {
                    profile.cache_hits += 1;
                }
                report.hottest.push(HotQuery {
                    method,
                    site: match e.field("site") {
                        Some(Value::Str(s)) => s.clone(),
                        _ => String::new(),
                    },
                    fuel,
                    cache_hit,
                    pc_hash: e.field_u64("pc_hash").unwrap_or(0),
                });
            }
            _ => {}
        }
    }
    // Stable sort: equal-fuel queries keep program order.
    report.hottest.sort_by_key(|q| std::cmp::Reverse(q.fuel));
    report.hottest.truncate(HOT_PROFILE_LIMIT);
    report
}

/// Renders a [`ProfileReport`] as an aligned text block for `--profile`.
pub fn render_profile(report: &ProfileReport) -> String {
    let mut out = String::new();
    out.push_str("phase attribution (µs)\n");
    for (name, nanos) in &report.pipeline_nanos {
        out.push_str(&format!("  {:<26} {:>10.1}\n", name, *nanos as f64 / 1e3));
    }
    for (name, m) in &report.methods {
        out.push_str(&format!(
            "  exec:{:<21} {:>10.1}   q={} fuel={} hits={} learned={}\n",
            name,
            m.total_nanos as f64 / 1e3,
            m.queries,
            m.fuel,
            m.cache_hits,
            m.learned
        ));
        for (phase, nanos) in &m.phase_nanos {
            out.push_str(&format!(
                "    {:<24} {:>10.1}\n",
                phase,
                *nanos as f64 / 1e3
            ));
        }
    }
    if !report.hottest.is_empty() {
        out.push_str("hottest solver queries (by solver fuel)\n");
        for q in &report.hottest {
            out.push_str(&format!(
                "  fuel {:>6}  {:<16} {}  pc#{:016x}{}\n",
                q.fuel,
                q.method,
                q.site,
                q.pc_hash,
                if q.cache_hit { "  [cache hit]" } else { "" }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use daenerys_idf::Budget;

    #[test]
    fn run_backend_measures_something() {
        let src = "field v: Int
                   method id(c: Ref) requires acc(c.v) ensures acc(c.v) { }";
        let run = run_backend(src, Backend::Destabilized);
        assert_eq!(run.stats.len(), 1);
        assert!(run.total(|s| s.obligations) >= 1);
        assert_eq!(run.unknown_methods(), 0);
        assert_eq!(run.budget_exhausted(), 0);
    }

    #[test]
    fn budgeted_runs_report_unknowns_instead_of_panicking() {
        let src = daenerys_idf::diverging_program(10);
        let config = VerifierConfig {
            budget: Budget::unlimited().with_solver_fuel(64),
            retry_unknown: false,
            ..VerifierConfig::default()
        };
        let run = run_backend_with(&src, Backend::Destabilized, config);
        assert_eq!(run.unknown_methods(), 1);
        assert_eq!(run.budget_exhausted(), 1);
        assert_eq!(run.stats.len(), 2, "siblings still measured");
    }

    #[test]
    fn measure_median_returns_one_of_the_runs() {
        let src = "field v: Int
                   method id(c: Ref) requires acc(c.v) ensures acc(c.v) { }";
        let run = measure_median(src, Backend::Destabilized, &VerifierConfig::default(), 5);
        assert_eq!(run.stats.len(), 1);
        assert!(run.time > Duration::ZERO);
    }

    #[test]
    fn traced_runs_profile_into_phases_and_hot_queries() {
        use daenerys_obs::{ClockKind, MemorySink, TraceHandle};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new(4096));
        let config = VerifierConfig {
            trace: TraceHandle::new(sink.clone(), ClockKind::Logical),
            ..VerifierConfig::default()
        };
        let src = "field v: Int
                   method set(c: Ref) requires acc(c.v) ensures acc(c.v) && c.v == 7
                   { c.v := 7 }";
        let run = run_backend_with(src, Backend::Destabilized, config);
        assert_eq!(run.stats.len(), 1);

        let events = sink.events();
        let report = profile_events(&events);
        assert!(
            report.pipeline_nanos.contains_key("parse"),
            "front-end parse span is attributed to the pipeline"
        );
        let m = report.methods.get("set").expect("method profiled");
        assert!(m.queries > 0, "solver queries attributed to the method");
        assert!(m.phase_nanos.contains_key("post"), "exhale phase present");
        assert!(!report.hottest.is_empty());
        assert!(report.hottest.len() <= HOT_PROFILE_LIMIT);
        let rendered = render_profile(&report);
        assert!(rendered.contains("exec:set"));
        assert!(rendered.contains("hottest solver queries"));
    }
}
