//! Shared helpers for the Daenerys evaluation harness.
//!
//! The binary `tables` regenerates every table and figure of
//! `EXPERIMENTS.md`; the Criterion benches measure the timing studies.

#![warn(missing_docs)]

use daenerys_idf::{parse_program, Backend, Verifier, VerifierConfig, VerifyStats};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Aggregated per-backend measurement for one program.
#[derive(Clone, Debug)]
pub struct BackendRun {
    /// Wall-clock verification time.
    pub time: Duration,
    /// Per-method statistics.
    pub stats: BTreeMap<String, VerifyStats>,
}

impl BackendRun {
    /// Sums a statistic across methods.
    pub fn total(&self, f: impl Fn(&VerifyStats) -> usize) -> usize {
        self.stats.values().map(f).sum()
    }
}

/// Verifies a program on one backend, timing it.
///
/// # Panics
///
/// Panics when the program does not parse or does not verify — the
/// harness only measures verifying programs.
pub fn run_backend(src: &str, backend: Backend) -> BackendRun {
    run_backend_with(src, backend, VerifierConfig::default())
}

/// As [`run_backend`], with an explicit pipeline configuration
/// (caching on/off, worker-thread count).
///
/// # Panics
///
/// Panics when the program does not parse or does not verify.
pub fn run_backend_with(src: &str, backend: Backend, config: VerifierConfig) -> BackendRun {
    let program = parse_program(src).expect("harness program parses");
    let start = Instant::now();
    let mut verifier = Verifier::with_config(&program, backend, config);
    let stats = verifier
        .verify_all()
        .unwrap_or_else(|e| panic!("harness program must verify: {}", e));
    BackendRun {
        time: start.elapsed(),
        stats,
    }
}

/// Formats a duration in microseconds for table cells.
pub fn micros(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_backend_measures_something() {
        let src = "field v: Int
                   method id(c: Ref) requires acc(c.v) ensures acc(c.v) { }";
        let run = run_backend(src, Backend::Destabilized);
        assert_eq!(run.stats.len(), 1);
        assert!(run.total(|s| s.obligations) >= 1);
    }
}
