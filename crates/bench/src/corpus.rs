//! Synthetic monorepo-scale verification corpora.
//!
//! [`Corpus::generate`] builds a deterministic layered call DAG of
//! trivially-verifiable methods (`requires n >= 0 ensures r >= n`
//! chained through `call`), with configurable width, depth, fan-out,
//! and diamond density. The generator keeps its own adjacency, so
//! every incremental-engine claim ("a hub spec edit re-verifies
//! exactly the reverse-reachable set") is gated against ground truth
//! computed independently of the engine under test.
//!
//! Scripted edits ([`Edit`]) reproduce the three interesting
//! monorepo-edit shapes: a leaf body touch (dirties exactly one
//! method), a hub spec touch (dirties its whole reverse-reachable
//! cone), and a formatting-only spec touch (dirties nothing, because
//! fingerprints hash *normalized* interfaces).

use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;

/// Shape parameters for a generated corpus.
#[derive(Clone, Copy, Debug)]
pub struct CorpusSpec {
    /// Total method count.
    pub methods: usize,
    /// Layers of the DAG; methods call only into strictly earlier
    /// layers, so the graph is acyclic by construction.
    pub depth: usize,
    /// Maximum callees per method.
    pub fan_out: usize,
    /// Percentage (0–100) of call edges that skip past the previous
    /// layer into a deeper one — the "diamond density" that creates
    /// converging/re-converging paths instead of a clean tree.
    pub diamond_pct: u32,
    /// RNG seed; equal specs generate byte-identical corpora.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> CorpusSpec {
        CorpusSpec {
            methods: 1000,
            depth: 10,
            fan_out: 4,
            diamond_pct: 25,
            seed: 0xDAE5,
        }
    }
}

/// A scripted corpus edit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Edit {
    /// Rewrite the body of [`Corpus::leaf`] without touching its
    /// contract: exactly one method must re-verify.
    TouchLeafBody,
    /// Strengthen the postcondition of [`Corpus::hub`]: the hub plus
    /// every transitive caller ([`Corpus::reverse_reachable`]) must
    /// re-verify, and nothing else.
    TouchHubSpec,
    /// Reflow the whitespace/comments of every contract without
    /// changing a token: nothing may re-verify.
    TouchSpecNoop,
}

impl Edit {
    /// Flag spelling, for bench output and CLI parsing.
    pub fn name(self) -> &'static str {
        match self {
            Edit::TouchLeafBody => "touch-leaf-body",
            Edit::TouchHubSpec => "touch-hub-spec",
            Edit::TouchSpecNoop => "touch-spec-noop",
        }
    }
}

/// A generated corpus: the adjacency plus the rendered source.
#[derive(Clone, Debug)]
pub struct Corpus {
    spec: CorpusSpec,
    /// `edges[i]` = callee indices of method `i` (all `< i`).
    edges: Vec<Vec<usize>>,
    /// First method index of each layer (layer 0 starts at 0).
    layer_starts: Vec<usize>,
}

/// The splitmix64 step — the repo's standard deterministic stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Corpus {
    /// Generates the corpus for `spec` (deterministic in the spec).
    pub fn generate(spec: CorpusSpec) -> Corpus {
        let n = spec.methods.max(1);
        let depth = spec.depth.clamp(1, n);
        let mut rng = spec.seed ^ 0x5ee7_c0de;
        // Near-equal layer sizes; every layer holds at least one
        // method.
        let mut layer_starts = Vec::with_capacity(depth);
        for l in 0..depth {
            layer_starts.push(l * n / depth);
        }
        let layer_of = |i: usize| -> usize {
            match layer_starts.binary_search(&i) {
                Ok(l) => l,
                Err(ins) => ins - 1,
            }
        };
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            let layer = layer_of(i);
            if layer == 0 {
                edges.push(Vec::new());
                continue;
            }
            let want = 1 + (splitmix64(&mut rng) as usize) % spec.fan_out.max(1);
            let mut callees = BTreeSet::new();
            for _ in 0..want {
                // Mostly the previous layer; with `diamond_pct`
                // probability, any strictly earlier layer — the
                // long-range edges that turn the tree into diamonds.
                let target_layer = if (splitmix64(&mut rng) % 100) < u64::from(spec.diamond_pct) {
                    (splitmix64(&mut rng) as usize) % layer
                } else {
                    layer - 1
                };
                let start = layer_starts[target_layer];
                let end = if target_layer + 1 < depth {
                    layer_starts[target_layer + 1]
                } else {
                    n
                };
                if end > start {
                    callees.insert(start + (splitmix64(&mut rng) as usize) % (end - start));
                }
            }
            edges.push(callees.into_iter().collect());
        }
        Corpus {
            spec,
            edges,
            layer_starts,
        }
    }

    /// The shape this corpus was generated from.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// Method count.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for a degenerate empty spec.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Callee indices of method `i`.
    pub fn callees(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// The method name for index `i`.
    pub fn method_name(i: usize) -> String {
        format!("m{}", i)
    }

    /// The designated leaf: the layer-0 method with the most direct
    /// callers (a body edit here is the classic "touched one file at
    /// the bottom of the monorepo" shape). Layer 0 methods have no
    /// callees, so the body edit cannot leak through any interface.
    pub fn leaf(&self) -> usize {
        let layer0_end = if self.layer_starts.len() > 1 {
            self.layer_starts[1]
        } else {
            self.len()
        };
        (0..layer0_end)
            .max_by_key(|&i| self.caller_count(i))
            .unwrap_or(0)
    }

    /// The designated hub: the method with the most direct callers
    /// anywhere in the DAG — the shared utility whose spec edit hurts
    /// the most.
    pub fn hub(&self) -> usize {
        (0..self.len())
            .max_by_key(|&i| self.caller_count(i))
            .unwrap_or(0)
    }

    fn caller_count(&self, i: usize) -> usize {
        self.edges.iter().filter(|c| c.contains(&i)).count()
    }

    /// Ground truth straight from the adjacency: every method that can
    /// reach `target` through call edges, `target` included — exactly
    /// the set a spec edit of `target` must re-verify.
    pub fn reverse_reachable(&self, target: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::from([target]);
        let mut queue = VecDeque::from([target]);
        while let Some(cur) = queue.pop_front() {
            for (i, callees) in self.edges.iter().enumerate() {
                if callees.contains(&cur) && out.insert(i) {
                    queue.push_back(i);
                }
            }
        }
        out
    }

    /// Renders the corpus as IDF source, with `edit` applied.
    ///
    /// Every method is `requires n >= 0 ensures r >= n`, its body
    /// threading `n` through its callees (`call t := mJ(t)`), so the
    /// difference-bounds theory discharges the whole corpus by
    /// transitivity whatever the topology — generation scales to 10k+
    /// methods without the verifier becoming the bottleneck.
    pub fn source(&self, edit: Option<Edit>) -> String {
        let leaf = self.leaf();
        let hub = self.hub();
        let mut src = String::with_capacity(self.len() * 160);
        for (i, callees) in self.edges.iter().enumerate() {
            let ensures = if edit == Some(Edit::TouchHubSpec) && i == hub {
                "ensures r >= n && r >= 0"
            } else {
                "ensures r >= n"
            };
            match edit {
                Some(Edit::TouchSpecNoop) => {
                    // Same tokens, different formatting: extra
                    // whitespace and a comment inside the contract.
                    let _ = writeln!(
                        src,
                        "method m{}(n: Int) returns (r: Int)\n  requires  n >= 0 /* noop */\n  {}",
                        i, ensures
                    );
                }
                _ => {
                    let _ = writeln!(
                        src,
                        "method m{}(n: Int) returns (r: Int) requires n >= 0 {}",
                        i, ensures
                    );
                }
            }
            src.push_str("{ var t: Int := n;");
            for &j in callees {
                let _ = write!(src, " call t := m{}(t);", j);
            }
            if edit == Some(Edit::TouchLeafBody) && i == leaf {
                src.push_str(" var u: Int := 0; t := t + u;");
            }
            src.push_str(" r := t }\n");
        }
        src
    }

    /// How many methods `edit` must re-verify on a warm store, per the
    /// generator's own adjacency.
    pub fn expected_reverified(&self, edit: Edit) -> usize {
        match edit {
            Edit::TouchLeafBody => 1,
            Edit::TouchHubSpec => self.reverse_reachable(self.hub()).len(),
            Edit::TouchSpecNoop => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_acyclic() {
        let spec = CorpusSpec {
            methods: 200,
            ..CorpusSpec::default()
        };
        let a = Corpus::generate(spec);
        let b = Corpus::generate(spec);
        assert_eq!(a.source(None), b.source(None), "same spec, same bytes");
        for (i, callees) in a.edges.iter().enumerate() {
            assert!(callees.iter().all(|&j| j < i), "edges point backwards");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(CorpusSpec {
            methods: 50,
            seed: 1,
            ..CorpusSpec::default()
        });
        let b = Corpus::generate(CorpusSpec {
            methods: 50,
            seed: 2,
            ..CorpusSpec::default()
        });
        assert_ne!(a.source(None), b.source(None));
    }

    #[test]
    fn hub_cone_is_nontrivial_and_leaf_is_a_leaf() {
        let c = Corpus::generate(CorpusSpec {
            methods: 300,
            ..CorpusSpec::default()
        });
        assert!(c.callees(c.leaf()).is_empty(), "the leaf calls nothing");
        let cone = c.reverse_reachable(c.hub());
        assert!(
            cone.len() > 1,
            "the hub has transitive callers (cone: {})",
            cone.len()
        );
        assert!(cone.len() < c.len(), "the cone is not the whole corpus");
    }

    #[test]
    fn edits_change_exactly_what_they_claim() {
        let c = Corpus::generate(CorpusSpec {
            methods: 60,
            ..CorpusSpec::default()
        });
        let base = c.source(None);
        assert_ne!(base, c.source(Some(Edit::TouchLeafBody)));
        assert_ne!(base, c.source(Some(Edit::TouchHubSpec)));
        assert_ne!(base, c.source(Some(Edit::TouchSpecNoop)));
        assert_eq!(c.expected_reverified(Edit::TouchLeafBody), 1);
        assert_eq!(c.expected_reverified(Edit::TouchSpecNoop), 0);
        assert_eq!(
            c.expected_reverified(Edit::TouchHubSpec),
            c.reverse_reachable(c.hub()).len()
        );
    }

    #[test]
    fn corpus_parses_and_verifies() {
        let c = Corpus::generate(CorpusSpec {
            methods: 40,
            depth: 5,
            ..CorpusSpec::default()
        });
        for edit in [
            None,
            Some(Edit::TouchLeafBody),
            Some(Edit::TouchHubSpec),
            Some(Edit::TouchSpecNoop),
        ] {
            let program = daenerys_idf::parse_program(&c.source(edit)).unwrap();
            assert_eq!(program.methods.len(), c.len());
            let mut v = daenerys_idf::Verifier::new(&program, daenerys_idf::Backend::Destabilized);
            let verdicts = v.verify_all_verdicts();
            assert!(
                verdicts.values().all(daenerys_idf::Verdict::is_verified),
                "generated corpora always verify (edit: {:?})",
                edit
            );
        }
    }
}
