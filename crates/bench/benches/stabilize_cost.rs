//! F2 (timing): computing stability — the semantic modality quantifies
//! over every compatible frame (exponential in the universe), while the
//! syntactic stabilizer is a linear traversal. This asymmetry is the
//! paper's motivation for a syntactic stable fragment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daenerys_core::Res;
use daenerys_core::{
    check_stable, holds, stabilize_fast, syntactically_stable, Assert, Env, EvalCtx, Term,
    UniverseSpec, World,
};
use daenerys_heaplang::Loc;

fn bench_stabilize(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilize_cost");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let read = Assert::read_eq(Term::loc(Loc(0)), Term::int(1));

    for (label, spec) in [
        ("tiny", UniverseSpec::tiny()),
        ("two_locs", UniverseSpec::two_locs()),
    ] {
        let uni = spec.build();
        let stab = Assert::stabilize(read.clone());
        let w = World::solo(Res::empty());
        let env = Env::new();

        group.bench_with_input(BenchmarkId::new("semantic_eval", label), &label, |b, _| {
            let ctx = EvalCtx::new(&uni);
            b.iter(|| holds(&stab, &w, &env, 1, &ctx))
        });
        group.bench_with_input(
            BenchmarkId::new("semantic_stability_check", label),
            &label,
            |b, _| b.iter(|| check_stable(&stab, &uni, 1).is_ok()),
        );
        group.bench_with_input(
            BenchmarkId::new("syntactic_stabilizer", label),
            &label,
            |b, _| {
                b.iter(|| {
                    let s = stabilize_fast(&read);
                    syntactically_stable(&s)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stabilize);
criterion_main!(benches);
