//! F4 (timing): proof-kernel throughput — rule applications per second
//! and semantic entailment-check latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daenerys_core::check::{catalog, corpus, verify_catalog};
use daenerys_core::{entails, Assert, Term, UniverseSpec};
use daenerys_heaplang::Loc;

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Building the whole rule catalog = hundreds of kernel applications.
    let ps = corpus();
    group.bench_function("catalog_construction", |b| b.iter(|| catalog(&ps)));

    // Model-checking the catalog (the T2 table).
    let uni = UniverseSpec::tiny().build();
    let derivations = catalog(&ps);
    group.bench_function("catalog_verification", |b| {
        b.iter(|| verify_catalog(&derivations, &uni, 1))
    });

    // Single entailment latency for growing assertion sizes.
    let l = Term::loc(Loc(0));
    let half = Assert::points_to_frac(l.clone(), daenerys_algebra::Q::HALF, Term::int(1));
    for depth in [1usize, 2, 4] {
        let mut p = half.clone();
        for _ in 0..depth {
            p = Assert::and(p.clone(), Assert::read_eq(l.clone(), Term::int(1)));
        }
        let q = Assert::read_eq(l.clone(), Term::int(1));
        group.bench_with_input(
            BenchmarkId::new("entailment_check", depth),
            &depth,
            |b, _| b.iter(|| entails(&p, &q, &uni, 1).is_ok()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
