//! F3 (timing): adequacy-testing throughput — exhaustive interleaving
//! exploration and monitored execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daenerys_core::Res;
use daenerys_heaplang::{explore, parse, Heap, Machine};
use daenerys_proglog::MonMachine;

fn counter_program(threads: usize) -> String {
    let mut src = String::from("let c = ref 0 in ");
    for _ in 0..threads.saturating_sub(1) {
        src.push_str("fork (faa(c, 1)); ");
    }
    src.push_str("faa(c, 1); !c");
    src
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("adequacy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for threads in [1usize, 2, 3] {
        let prog = parse(&counter_program(threads)).expect("parses");
        group.bench_with_input(
            BenchmarkId::new("explore_all_interleavings", threads),
            &threads,
            |b, _| b.iter(|| explore(Machine::new(prog.clone()), 1024)),
        );
    }

    // Monitored vs. unmonitored single-thread execution overhead.
    let seq =
        parse("let l = ref 0 in (rec go n => if n <= 0 then !l else (l <- !l + n; go (n - 1))) 50")
            .expect("parses");
    group.bench_function("unmonitored_run", |b| {
        b.iter(|| daenerys_heaplang::run(seq.clone(), 100_000).expect("runs"))
    });
    group.bench_function("monitored_run", |b| {
        b.iter(|| {
            let mut m = MonMachine::new(seq.clone(), Res::empty(), Heap::new());
            m.run(100_000).expect("runs");
            m
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
