//! F1 (timing): verification time vs. program size, both backends.
//!
//! Expected shape: destabilized ≈ linear in `n`; the stable baseline
//! grows faster (witness minting plus invalidation scans at every heap
//! write make it superlinear in spec heap reads × writes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daenerys_idf::{parse_program, scaling_program, Backend, Verifier};

fn bench_verifier_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("verifier_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [2usize, 4, 8, 16] {
        let src = scaling_program(n);
        let program = parse_program(&src).expect("parses");
        group.bench_with_input(BenchmarkId::new("destabilized", n), &n, |b, _| {
            b.iter(|| {
                let mut v = Verifier::new(&program, Backend::Destabilized);
                v.verify_all().expect("verifies")
            })
        });
        group.bench_with_input(BenchmarkId::new("stable_baseline", n), &n, |b, _| {
            b.iter(|| {
                let mut v = Verifier::new(&program, Backend::StableBaseline);
                v.verify_all().expect("verifies")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verifier_scaling);
criterion_main!(benches);
