//! Profiling harness for the warm-open path: splits
//! `VerdictStore::open` time from the dependency-graph load so a
//! regression in either shows up as its own number.
//!
//! ```text
//! cargo run --release -p daenerys-bench --example profile_store_load [METHODS]
//! ```

use daenerys_bench::corpus::{Corpus, CorpusSpec};
use daenerys_idf::{parse_program, Backend, DepGraph, VerdictStore, Verifier, VerifierConfig};
use std::time::Instant;

fn main() {
    let methods: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10_000);
    let corpus = Corpus::generate(CorpusSpec {
        methods,
        depth: 20,
        ..CorpusSpec::default()
    });
    let dir = std::env::temp_dir().join("daenerys-profile-store-load");
    let _ = std::fs::remove_dir_all(&dir);
    let program = parse_program(&corpus.source(None)).unwrap();
    let config = VerifierConfig {
        cache_dir: Some(dir.clone()),
        ..VerifierConfig::default()
    };
    let mut v = Verifier::with_config(&program, Backend::Destabilized, config);
    let _ = v.verify_all_verdicts();
    drop(v);
    for rep in 0..3 {
        let t = Instant::now();
        let store = VerdictStore::open(&dir);
        let open_ms = t.elapsed().as_secs_f64() * 1000.0;
        let t = Instant::now();
        let graph = DepGraph::load(&dir);
        let graph_ms = t.elapsed().as_secs_f64() * 1000.0;
        println!(
            "rep {}: open {:.2} ms ({} entries), graph load alone {:.2} ms ({} nodes)",
            rep,
            open_ms,
            store.len(),
            graph_ms,
            graph.len()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
