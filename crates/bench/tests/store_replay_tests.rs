//! Integration gates for the edit-replay sweep at CI-friendly scale:
//! the same invariants `store_replay` enforces at 10k methods, here on
//! a ~200-method corpus so they run on every `cargo test`.

use daenerys_bench::corpus::{Corpus, CorpusSpec, Edit};
use daenerys_idf::{parse_program, Backend, StoreFormat, Verdict, Verifier, VerifierConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "daenerys-store-replay-test-{}-{}",
        tag,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(
    src: &str,
    dir: &Path,
    threads: usize,
    format: Option<StoreFormat>,
) -> (BTreeMap<String, Verdict>, usize) {
    let program = parse_program(src).unwrap();
    let config = VerifierConfig {
        threads,
        cache_dir: Some(dir.to_path_buf()),
        store_format: format,
        ..VerifierConfig::default()
    };
    let mut verifier = Verifier::with_config(&program, Backend::Destabilized, config);
    let verdicts = verifier
        .verify_all_verdicts()
        .into_iter()
        .map(|(name, verdict)| (name, verdict.normalized()))
        .collect();
    (verdicts, verifier.methods_reverified().unwrap())
}

fn snapshot(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }
}

fn sweep(format: Option<StoreFormat>, tag: &str) {
    let corpus = Corpus::generate(CorpusSpec {
        methods: 200,
        depth: 8,
        ..CorpusSpec::default()
    });
    let base = corpus.source(None);
    let root = temp_dir(tag);
    let cold_dir = root.join("cold");

    // Cold: everything verifies.
    let (cold, reverified) = run(&base, &cold_dir, 1, format);
    assert_eq!(reverified, corpus.len());
    assert!(cold.values().all(Verdict::is_verified));

    // Warm: nothing re-verifies, verdicts restore bit-identically —
    // at one, two, and eight worker threads.
    for threads in [1usize, 2, 8] {
        let dir = root.join(format!("warm-{}", threads));
        snapshot(&cold_dir, &dir);
        let (warm, reverified) = run(&base, &dir, threads, format);
        assert_eq!(reverified, 0, "warm no-edit run at {} threads", threads);
        assert_eq!(
            warm, cold,
            "restored verdicts differ at {} threads",
            threads
        );
    }

    // Scripted edits re-verify exactly what the generator's ground
    // truth says they must.
    for edit in [Edit::TouchLeafBody, Edit::TouchHubSpec, Edit::TouchSpecNoop] {
        let dir = root.join(edit.name());
        snapshot(&cold_dir, &dir);
        let (verdicts, reverified) = run(&corpus.source(Some(edit)), &dir, 2, format);
        assert_eq!(
            reverified,
            corpus.expected_reverified(edit),
            "edit {:?}",
            edit
        );
        assert!(verdicts.values().all(Verdict::is_verified));
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn daes1_sweep_replays_edits_against_ground_truth() {
    sweep(Some(StoreFormat::Daes1), "daes1");
}

#[test]
fn jsonl_sweep_replays_edits_against_ground_truth() {
    sweep(Some(StoreFormat::Jsonl), "jsonl");
}

/// The hub-edit cone is a real monorepo shape: strictly bigger than
/// the edited method alone, strictly smaller than the corpus.
#[test]
fn hub_cone_is_a_proper_subset() {
    let corpus = Corpus::generate(CorpusSpec {
        methods: 200,
        depth: 8,
        ..CorpusSpec::default()
    });
    let cone = corpus.expected_reverified(Edit::TouchHubSpec);
    assert!(cone > 1, "hub has transitive callers");
    assert!(cone < corpus.len(), "hub edit never dirties everything");
}
