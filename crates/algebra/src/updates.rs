//! Frame-preserving and local updates.
//!
//! A *frame-preserving update* `a ~~> B` says the owner of `a` may replace
//! it by some `b ∈ B` without invalidating any environment frame. These
//! updates are what the basic update modality `|==>` quantifies over. In
//! the paper's destabilized setting they are also exactly the interference
//! the environment may inflict on *unstable* assertions, so the same
//! machinery drives the rely relation in `daenerys-core`.
//!
//! Because our model checking works over enumerable universes, updates
//! here are *checked* against an explicit set of candidate frames rather
//! than proved once and for all.

use crate::ra::Ra;

/// Checks the frame-preserving update `a ~~> {b}` against the given
/// candidate frames (the absent frame is always included).
///
/// Returns `true` iff for every frame `f` (including "no frame"),
/// `valid(a ⋅ f)` implies `valid(b ⋅ f)`.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{frame_preserving_update, Excl};
///
/// // The exclusive RA supports arbitrary updates: no frame can coexist.
/// let frames = vec![Excl::new(0), Excl::new(1)];
/// assert!(frame_preserving_update(&Excl::new(0), &Excl::new(1), &frames));
/// ```
pub fn frame_preserving_update<A: Ra>(a: &A, b: &A, frames: &[A]) -> bool {
    frame_preserving_update_set(a, std::slice::from_ref(b), frames)
}

/// Checks the nondeterministic frame-preserving update `a ~~> B`.
///
/// For every frame `f` (including "no frame") with `valid(a ⋅ f)`, some
/// `b ∈ bs` must satisfy `valid(b ⋅ f)`.
pub fn frame_preserving_update_set<A: Ra>(a: &A, bs: &[A], frames: &[A]) -> bool {
    // The absent frame.
    if a.valid() && !bs.iter().any(Ra::valid) {
        return false;
    }
    frames.iter().all(|f| {
        if a.op(f).valid() {
            bs.iter().any(|b| b.op(f).valid())
        } else {
            true
        }
    })
}

/// Checks the *local update* `(a, b) ~l~> (a', b')` against candidate
/// frames: for every optional frame `c` with `valid(a)` and `a = b ⋅? c`,
/// we need `valid(a')` and `a' = b' ⋅? c`.
///
/// Local updates justify simultaneous authoritative/fragment updates in
/// the [`crate::Auth`] camera.
pub fn local_update<A: Ra>(a: &A, b: &A, a2: &A, b2: &A, frames: &[A]) -> bool {
    let mut candidates: Vec<Option<&A>> = vec![None];
    candidates.extend(frames.iter().map(Some));
    candidates.into_iter().all(|c| {
        let premise = a.valid() && *a == b.op_opt(c);
        if premise {
            a2.valid() && *a2 == b2.op_opt(c)
        } else {
            true
        }
    })
}

/// The exclusive local update: when the fragment equals the whole
/// authority (`b = a`), the pair may be replaced by any `(a', a')`.
/// This is the update backing `●a ⋅ ◯a ==> ●a' ⋅ ◯a'`.
pub fn exclusive_local_update<A: Ra>(a: &A, a2: &A, frames: &[A]) -> bool {
    a2.valid() && local_update(a, a, a2, a2, frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agree::Agree;
    use crate::excl::Excl;
    use crate::frac::Frac;
    use crate::nat::{MaxNat, SumNat};
    use crate::rational::Q;

    #[test]
    fn excl_updates_freely() {
        let frames = vec![Excl::new(0), Excl::new(1), Excl::new(2), Excl::Bot];
        assert!(frame_preserving_update(
            &Excl::new(0),
            &Excl::new(2),
            &frames
        ));
    }

    #[test]
    fn agree_cannot_update() {
        let frames = vec![Agree::new(0), Agree::new(1)];
        // Changing an agreement would invalidate the frame agreeing on the
        // old value.
        assert!(!frame_preserving_update(
            &Agree::new(0),
            &Agree::new(1),
            &frames
        ));
    }

    #[test]
    fn frac_full_can_update_to_full() {
        let frames = vec![
            Frac::new(Q::HALF),
            Frac::new(Q::new(1, 3)),
            Frac::new(Q::ONE),
        ];
        // Full ownership tolerates no frame, so updating to itself (or any
        // full fraction) is frame-preserving.
        assert!(frame_preserving_update(&Frac::FULL, &Frac::FULL, &frames));
        // A half permission cannot grow to full: the other half may exist.
        assert!(!frame_preserving_update(
            &Frac::new(Q::HALF),
            &Frac::FULL,
            &frames
        ));
    }

    #[test]
    fn update_to_invalid_rejected() {
        let frames: Vec<Frac> = vec![];
        assert!(!frame_preserving_update(
            &Frac::FULL,
            &Frac::new(Q::ZERO),
            &frames
        ));
    }

    #[test]
    fn nondeterministic_update() {
        let frames = vec![Excl::new(1)];
        // a ~~> {b1, b2} where only b2 works.
        assert!(frame_preserving_update_set(
            &Excl::new(0),
            &[Excl::Bot, Excl::new(9)],
            &frames
        ));
    }

    #[test]
    fn local_update_increments_counter() {
        let frames: Vec<SumNat> = (0..6).map(SumNat).collect();
        // (5, 2) ~l~> (6, 3): adding one to both sides preserves any frame
        // c with 5 = 2 + c.
        assert!(local_update(
            &SumNat(5),
            &SumNat(2),
            &SumNat(6),
            &SumNat(3),
            &frames
        ));
        // (5, 2) ~l~> (6, 2) breaks the frame c = 3: 6 ≠ 2 + 3.
        assert!(!local_update(
            &SumNat(5),
            &SumNat(2),
            &SumNat(6),
            &SumNat(2),
            &frames
        ));
    }

    #[test]
    fn max_nat_grows_locally() {
        let frames: Vec<MaxNat> = (0..8).map(MaxNat).collect();
        // (5, 5) ~l~> (7, 7): raising the authority and witness together.
        assert!(local_update(
            &MaxNat(5),
            &MaxNat(5),
            &MaxNat(7),
            &MaxNat(7),
            &frames
        ));
    }

    #[test]
    fn exclusive_local_update_requires_full_fragment() {
        let frames: Vec<SumNat> = (0..4).map(SumNat).collect();
        assert!(exclusive_local_update(&SumNat(3), &SumNat(9), &frames));
    }
}
