//! The resource-algebra (camera) interface.
//!
//! A *resource algebra* (RA) is the unit of ghost state in Iris: a set
//! with a partial commutative monoid structure given by a total `op`
//! combined with a validity predicate (invalid elements represent the
//! undefined compositions), and a partial `core` extracting the duplicable
//! part of an element. *Cameras* additionally have step-indexed validity;
//! all our concrete instances are discrete, so [`Ra::validn`] defaults to
//! [`Ra::valid`].

use crate::step::StepIdx;
use std::fmt;

/// A (discrete) resource algebra.
///
/// Implementations must satisfy the RA laws, which are property-tested in
/// this crate's test suite and summarized here:
///
/// * `op` is associative and commutative;
/// * `valid(a ⋅ b)` implies `valid(a)` (validity is down-closed);
/// * if `pcore(a) = Some(c)` then `c ⋅ a = a`, `pcore(c) = Some(c)`, and
///   the core is monotone with respect to [`Ra::included_in`];
/// * `included_in` decides the *reflexive* extension order:
///   `a ≼ b` iff `a = b` or `∃c. b = a ⋅ c`.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{Frac, Q, Ra};
///
/// let half = Frac::new(Q::HALF);
/// assert!(half.op(&half).valid());          // 1/2 + 1/2 = 1 is valid
/// assert!(!half.op(&half).op(&half).valid()); // 3/2 is not
/// ```
pub trait Ra: Sized + Clone + PartialEq + fmt::Debug {
    /// Composes two resources. Total; invalid combinations must yield an
    /// element on which [`Ra::valid`] is `false`.
    fn op(&self, other: &Self) -> Self;

    /// The partial core: the duplicable fragment of the resource, if any.
    fn pcore(&self) -> Option<Self>;

    /// Whether the resource is valid (a meaningful composition).
    fn valid(&self) -> bool;

    /// Step-indexed validity. All concrete instances in this crate are
    /// discrete, so this defaults to [`Ra::valid`].
    fn validn(&self, _n: StepIdx) -> bool {
        self.valid()
    }

    /// Decides the reflexive extension order `a ≼ b`.
    fn included_in(&self, other: &Self) -> bool;

    /// Composes with an optional resource (the "frame may be absent"
    /// pattern that shows up in frame-preserving updates).
    fn op_opt(&self, other: Option<&Self>) -> Self {
        match other {
            None => self.clone(),
            Some(o) => self.op(o),
        }
    }

    /// Whether the element is its own core (a "persistent"/duplicable
    /// element).
    fn is_core(&self) -> bool {
        self.pcore().as_ref() == Some(self)
    }

    /// `n`-fold self-composition; `pow(0)` is undefined for non-unital
    /// RAs, so `n` must be at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn pow(&self, n: usize) -> Self {
        assert!(n >= 1, "pow requires n >= 1");
        let mut acc = self.clone();
        for _ in 1..n {
            acc = acc.op(self);
        }
        acc
    }
}

/// A resource algebra with a unit element (a *unital* RA).
pub trait UnitRa: Ra {
    /// The unit: `unit() ⋅ a = a` and `valid(unit())`.
    fn unit() -> Self;
}

/// Outcome of checking one RA law on one tuple of elements; used both by
/// the property-test suite and by the T3 evaluation table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LawOutcome {
    /// The law holds on this tuple.
    Holds,
    /// The law's premise is false on this tuple, so it holds vacuously.
    Vacuous,
    /// The law is violated on this tuple.
    Violated,
}

impl LawOutcome {
    /// Whether the outcome is not a violation.
    pub fn ok(self) -> bool {
        self != LawOutcome::Violated
    }
}

/// Checks associativity: `(a ⋅ b) ⋅ c = a ⋅ (b ⋅ c)`.
pub fn law_assoc<A: Ra>(a: &A, b: &A, c: &A) -> LawOutcome {
    if a.op(b).op(c) == a.op(&b.op(c)) {
        LawOutcome::Holds
    } else {
        LawOutcome::Violated
    }
}

/// Checks commutativity: `a ⋅ b = b ⋅ a`.
pub fn law_comm<A: Ra>(a: &A, b: &A) -> LawOutcome {
    if a.op(b) == b.op(a) {
        LawOutcome::Holds
    } else {
        LawOutcome::Violated
    }
}

/// Checks that validity is down-closed: `valid(a ⋅ b) → valid(a)`.
pub fn law_valid_op<A: Ra>(a: &A, b: &A) -> LawOutcome {
    if !a.op(b).valid() {
        LawOutcome::Vacuous
    } else if a.valid() {
        LawOutcome::Holds
    } else {
        LawOutcome::Violated
    }
}

/// Checks core absorption: `pcore(a) = Some(c) → c ⋅ a = a`.
pub fn law_core_id<A: Ra>(a: &A) -> LawOutcome {
    match a.pcore() {
        None => LawOutcome::Vacuous,
        Some(c) => {
            if c.op(a) == *a {
                LawOutcome::Holds
            } else {
                LawOutcome::Violated
            }
        }
    }
}

/// Checks core idempotence: `pcore(a) = Some(c) → pcore(c) = Some(c)`.
pub fn law_core_idem<A: Ra>(a: &A) -> LawOutcome {
    match a.pcore() {
        None => LawOutcome::Vacuous,
        Some(c) => {
            if c.pcore().as_ref() == Some(&c) {
                LawOutcome::Holds
            } else {
                LawOutcome::Violated
            }
        }
    }
}

/// Checks core monotonicity (on concrete witnesses): if `a ≼ b` and
/// `pcore(a) = Some(ca)` then `pcore(b)` exists and `ca ≼ pcore(b)`.
pub fn law_core_mono<A: Ra>(a: &A, b: &A) -> LawOutcome {
    if !a.included_in(b) {
        return LawOutcome::Vacuous;
    }
    match a.pcore() {
        None => LawOutcome::Vacuous,
        Some(ca) => match b.pcore() {
            None => LawOutcome::Violated,
            Some(cb) => {
                if ca.included_in(&cb) {
                    LawOutcome::Holds
                } else {
                    LawOutcome::Violated
                }
            }
        },
    }
}

/// Checks that `included_in` is sound with respect to `op`:
/// `a ≼ a ⋅ b` must hold for every `a`, `b`.
pub fn law_included_op<A: Ra>(a: &A, b: &A) -> LawOutcome {
    if a.included_in(&a.op(b)) {
        LawOutcome::Holds
    } else {
        LawOutcome::Violated
    }
}

/// Checks the unit laws of a unital RA on a sample element.
pub fn law_unit<A: UnitRa>(a: &A) -> LawOutcome {
    let u = A::unit();
    if u.valid() && u.op(a) == *a && u.pcore().as_ref() == Some(&u) {
        LawOutcome::Holds
    } else {
        LawOutcome::Violated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny hand-rolled RA for exercising the law checkers themselves:
    /// the multiset-over-one-element RA (naturals under addition), where
    /// validity caps the count at 3.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Capped(u32);

    impl Ra for Capped {
        fn op(&self, other: &Self) -> Self {
            Capped(self.0 + other.0)
        }
        fn pcore(&self) -> Option<Self> {
            Some(Capped(0))
        }
        fn valid(&self) -> bool {
            self.0 <= 3
        }
        fn included_in(&self, other: &Self) -> bool {
            self.0 <= other.0
        }
    }

    impl UnitRa for Capped {
        fn unit() -> Self {
            Capped(0)
        }
    }

    #[test]
    fn laws_on_capped() {
        let xs = [Capped(0), Capped(1), Capped(2), Capped(3), Capped(4)];
        for a in &xs {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            assert!(law_unit(a).ok());
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                assert!(law_core_mono(a, b).ok());
                assert!(law_included_op(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }

    #[test]
    fn pow_is_iterated_op() {
        assert_eq!(Capped(1).pow(3), Capped(3));
        assert_eq!(Capped(2).pow(1), Capped(2));
    }

    #[test]
    #[should_panic(expected = "pow requires")]
    fn pow_zero_panics() {
        let _ = Capped(1).pow(0);
    }

    #[test]
    fn is_core_detects_units() {
        assert!(Capped(0).is_core());
        assert!(!Capped(1).is_core());
    }

    #[test]
    fn law_outcome_ok() {
        assert!(LawOutcome::Holds.ok());
        assert!(LawOutcome::Vacuous.ok());
        assert!(!LawOutcome::Violated.ok());
    }

    #[test]
    fn op_opt_handles_absent_frame() {
        assert_eq!(Capped(2).op_opt(None), Capped(2));
        assert_eq!(Capped(2).op_opt(Some(&Capped(1))), Capped(3));
    }
}
