//! The disjoint-set resource algebra `GSet<K>`.
//!
//! Sets compose by *disjoint* union: overlapping unions are invalid. This
//! models ownership of abstract tokens (e.g. allocated names).

use crate::ra::{Ra, UnitRa};
use std::collections::BTreeSet;
use std::fmt;

/// A set of tokens composing by disjoint union.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{GSet, Ra};
///
/// let a = GSet::from_iter([1, 2]);
/// let b = GSet::from_iter([3]);
/// assert!(a.op(&b).valid());
/// assert!(!a.op(&a).valid()); // overlap
/// ```
#[derive(Clone, PartialEq, Eq)]
pub enum GSet<K> {
    /// A valid set of tokens.
    Set(BTreeSet<K>),
    /// The invalid element produced by an overlapping union.
    Bot,
}

impl<K: Ord + Clone> GSet<K> {
    /// The empty set (the unit).
    pub fn new() -> GSet<K> {
        GSet::Set(BTreeSet::new())
    }

    /// A singleton token set.
    pub fn singleton(k: K) -> GSet<K> {
        GSet::Set(BTreeSet::from_iter([k]))
    }

    /// The underlying token set, if valid.
    pub fn as_set(&self) -> Option<&BTreeSet<K>> {
        match self {
            GSet::Set(s) => Some(s),
            GSet::Bot => None,
        }
    }

    /// Whether the token is owned by this (valid) set.
    pub fn contains(&self, k: &K) -> bool {
        matches!(self, GSet::Set(s) if s.contains(k))
    }
}

impl<K: Ord + Clone> Default for GSet<K> {
    fn default() -> Self {
        GSet::new()
    }
}

impl<K: Ord + Clone> FromIterator<K> for GSet<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        GSet::Set(iter.into_iter().collect())
    }
}

impl<K: Ord + Clone + fmt::Debug> fmt::Debug for GSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GSet::Set(s) => f.debug_set().entries(s.iter()).finish(),
            GSet::Bot => write!(f, "⊥"),
        }
    }
}

impl<K: Ord + Clone + fmt::Debug> Ra for GSet<K> {
    fn op(&self, other: &Self) -> Self {
        match (self, other) {
            (GSet::Set(a), GSet::Set(b)) => {
                if a.intersection(b).next().is_some() {
                    GSet::Bot
                } else {
                    GSet::Set(a.union(b).cloned().collect())
                }
            }
            _ => GSet::Bot,
        }
    }

    fn pcore(&self) -> Option<Self> {
        Some(GSet::new())
    }

    fn valid(&self) -> bool {
        matches!(self, GSet::Set(_))
    }

    fn included_in(&self, other: &Self) -> bool {
        match (self, other) {
            (GSet::Set(a), GSet::Set(b)) => a.is_subset(b),
            (_, GSet::Bot) => true,
            (GSet::Bot, GSet::Set(_)) => false,
        }
    }
}

impl<K: Ord + Clone + fmt::Debug> UnitRa for GSet<K> {
    fn unit() -> Self {
        GSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::{law_assoc, law_comm, law_core_id, law_core_idem, law_unit, law_valid_op};

    #[test]
    fn disjoint_union() {
        let a = GSet::from_iter([1, 2]);
        let b = GSet::from_iter([3, 4]);
        assert_eq!(a.op(&b), GSet::from_iter([1, 2, 3, 4]));
    }

    #[test]
    fn overlap_is_invalid() {
        let a = GSet::from_iter([1, 2]);
        let b = GSet::from_iter([2, 3]);
        assert!(!a.op(&b).valid());
    }

    #[test]
    fn laws() {
        let xs = [
            GSet::new(),
            GSet::from_iter([1]),
            GSet::from_iter([2]),
            GSet::from_iter([1, 2]),
            GSet::Bot,
        ];
        for a in &xs {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
        assert!(law_unit(&GSet::from_iter([5])).ok());
    }

    #[test]
    fn membership() {
        let a = GSet::from_iter(["x"]);
        assert!(a.contains(&"x"));
        assert!(!a.contains(&"y"));
        assert!(!GSet::<&str>::Bot.contains(&"x"));
    }

    #[test]
    fn inclusion_is_subset() {
        assert!(GSet::from_iter([1]).included_in(&GSet::from_iter([1, 2])));
        assert!(!GSet::from_iter([3]).included_in(&GSet::from_iter([1, 2])));
        assert!(GSet::from_iter([1]).included_in(&GSet::Bot));
    }
}
