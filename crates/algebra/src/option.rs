//! The option lifting: `Option<A>` adds a unit to any resource algebra.
//!
//! `None` acts as the unit, turning any RA into a unital one. This is the
//! standard way Iris builds unital cameras from non-unital ones (e.g. the
//! authoritative camera's management part).

use crate::ra::{Ra, UnitRa};

impl<A: Ra> Ra for Option<A> {
    fn op(&self, other: &Self) -> Self {
        match (self, other) {
            (None, x) | (x, None) => x.clone(),
            (Some(a), Some(b)) => Some(a.op(b)),
        }
    }

    fn pcore(&self) -> Option<Self> {
        // The option core is total: absent inner cores collapse to the
        // unit `None`.
        match self {
            None => Some(None),
            Some(a) => Some(a.pcore()),
        }
    }

    fn valid(&self) -> bool {
        match self {
            None => true,
            Some(a) => a.valid(),
        }
    }

    fn validn(&self, n: crate::step::StepIdx) -> bool {
        match self {
            None => true,
            Some(a) => a.validn(n),
        }
    }

    fn included_in(&self, other: &Self) -> bool {
        match (self, other) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a.included_in(b),
        }
    }
}

impl<A: Ra> UnitRa for Option<A> {
    fn unit() -> Self {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::excl::Excl;
    use crate::frac::Frac;
    use crate::ra::{
        law_assoc, law_comm, law_core_id, law_core_idem, law_core_mono, law_unit, law_valid_op,
    };
    use crate::rational::Q;

    #[test]
    fn none_is_unit() {
        let a = Some(Frac::new(Q::HALF));
        assert_eq!(None.op(&a), a);
        assert_eq!(a.op(&None), a);
        assert!(Option::<Frac>::None.valid());
    }

    #[test]
    fn core_is_total() {
        // Frac has no core, but Option<Frac> does: the unit.
        assert_eq!(Some(Frac::FULL).pcore(), Some(None));
        assert_eq!(Option::<Frac>::None.pcore(), Some(None));
    }

    #[test]
    fn laws_over_excl() {
        let xs = [
            None,
            Some(Excl::new(1)),
            Some(Excl::new(2)),
            Some(Excl::Bot),
        ];
        for a in &xs {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            assert!(law_unit(a).ok());
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                assert!(law_core_mono(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }

    #[test]
    fn inclusion() {
        assert!(Option::<Frac>::None.included_in(&Some(Frac::FULL)));
        assert!(Some(Frac::new(Q::HALF)).included_in(&Some(Frac::FULL)));
        assert!(!Some(Frac::FULL).included_in(&None));
    }
}
