//! The fractional resource algebra `Frac`.
//!
//! Fractions in `(0, 1]` compose by addition; exceeding `1` is invalid.
//! This is the classic fractional-permission RA used for shared read
//! access.

use crate::ra::Ra;
use crate::rational::Q;
use std::fmt;

/// The fractional-permission RA.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{Frac, Q, Ra};
///
/// let third = Frac::new(Q::new(1, 3));
/// let whole = third.op(&third).op(&third);
/// assert!(whole.valid());
/// assert_eq!(whole, Frac::new(Q::ONE));
/// assert!(!whole.op(&third).valid());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frac(Q);

impl Frac {
    /// The full permission `1`.
    pub const FULL: Frac = Frac(Q::ONE);

    /// Creates a fraction resource. Any rational is representable; only
    /// fractions in `(0, 1]` are valid.
    pub fn new(q: Q) -> Frac {
        Frac(q)
    }

    /// The underlying rational.
    pub fn amount(self) -> Q {
        self.0
    }

    /// Splits the permission into two equal, composable halves.
    pub fn split(self) -> (Frac, Frac) {
        let h = Frac(self.0.split());
        (h, h)
    }
}

impl Ra for Frac {
    fn op(&self, other: &Self) -> Self {
        Frac(self.0 + other.0)
    }

    fn pcore(&self) -> Option<Self> {
        None
    }

    fn valid(&self) -> bool {
        self.0.is_valid_permission()
    }

    fn included_in(&self, other: &Self) -> bool {
        // b = a + c has a solution with c a fraction iff a < b; plus
        // reflexivity.
        self.0 <= other.0
    }
}

impl fmt::Debug for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frac({})", self.0)
    }
}

impl fmt::Display for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::{law_assoc, law_comm, law_valid_op};

    #[test]
    fn composition_adds() {
        let half = Frac::new(Q::HALF);
        assert_eq!(half.op(&half), Frac::FULL);
        assert!(half.op(&half).valid());
        assert!(!Frac::FULL.op(&half).valid());
    }

    #[test]
    fn zero_and_negative_are_invalid() {
        assert!(!Frac::new(Q::ZERO).valid());
        assert!(!Frac::new(-Q::HALF).valid());
    }

    #[test]
    fn split_recomposes() {
        let q = Frac::new(Q::new(2, 3));
        let (a, b) = q.split();
        assert_eq!(a.op(&b), q);
    }

    #[test]
    fn laws() {
        let xs = [
            Frac::new(Q::new(1, 3)),
            Frac::new(Q::HALF),
            Frac::FULL,
            Frac::new(Q::new(3, 2)),
        ];
        for a in &xs {
            assert_eq!(a.pcore(), None);
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }

    #[test]
    fn inclusion_is_ordering() {
        assert!(Frac::new(Q::HALF).included_in(&Frac::FULL));
        assert!(!Frac::FULL.included_in(&Frac::new(Q::HALF)));
    }
}
