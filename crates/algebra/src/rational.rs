//! Exact rational arithmetic for fractional permissions.
//!
//! Separation-logic permission accounting must be exact: `1/3 + 1/3 + 1/3`
//! has to equal `1`, and `1/2 + 1/2 + ε` has to be detected as invalid.
//! Floating point cannot do either, so we implement a small normalized
//! rational type over `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A rational number, kept in lowest terms with a strictly positive
/// denominator.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::Q;
///
/// let third = Q::new(1, 3);
/// assert_eq!(third + third + third, Q::ONE);
/// assert!(Q::new(1, 2) + Q::new(1, 2) <= Q::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Q {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Q {
    /// The rational zero.
    pub const ZERO: Q = Q { num: 0, den: 1 };
    /// The rational one — the full permission.
    pub const ONE: Q = Q { num: 1, den: 1 };
    /// One half, the most common split.
    pub const HALF: Q = Q { num: 1, den: 2 };

    /// Creates the rational `num / den`, normalizing signs and common
    /// factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Q {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Q {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates the integer rational `n/1`.
    pub fn from_int(n: i64) -> Q {
        Q {
            num: n as i128,
            den: 1,
        }
    }

    /// The numerator after normalization.
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The (strictly positive) denominator after normalization.
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether the value is a valid *fraction permission*: `0 < q <= 1`.
    pub fn is_valid_permission(self) -> bool {
        self > Q::ZERO && self <= Q::ONE
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// The minimum of two rationals.
    pub fn min(self, other: Q) -> Q {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The maximum of two rationals.
    pub fn max(self, other: Q) -> Q {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Splits the fraction in half: `q.split() + q.split() == q`.
    pub fn split(self) -> Q {
        Q::new(self.num, self.den * 2)
    }
}

impl Default for Q {
    fn default() -> Q {
        Q::ZERO
    }
}

impl Add for Q {
    type Output = Q;
    fn add(self, rhs: Q) -> Q {
        Q::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Q {
    type Output = Q;
    fn sub(self, rhs: Q) -> Q {
        Q::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Q {
    type Output = Q;
    fn mul(self, rhs: Q) -> Q {
        Q::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Q {
    type Output = Q;
    /// # Panics
    ///
    /// Panics when dividing by zero.
    fn div(self, rhs: Q) -> Q {
        assert!(rhs.num != 0, "division by zero rational");
        Q::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Q {
    type Output = Q;
    fn neg(self) -> Q {
        Q {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Q {
    fn partial_cmp(&self, other: &Q) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Q {
    fn cmp(&self, other: &Q) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Debug for Q {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Q {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Q {
    fn from(n: i64) -> Q {
        Q::from_int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Q::new(2, 4), Q::new(1, 2));
        assert_eq!(Q::new(-1, -2), Q::new(1, 2));
        assert_eq!(Q::new(1, -2), Q::new(-1, 2));
        assert_eq!(Q::new(0, 5), Q::ZERO);
    }

    #[test]
    fn arithmetic() {
        let third = Q::new(1, 3);
        assert_eq!(third + third + third, Q::ONE);
        assert_eq!(Q::HALF * Q::HALF, Q::new(1, 4));
        assert_eq!(Q::ONE - Q::new(1, 4), Q::new(3, 4));
        assert_eq!(Q::HALF / Q::HALF, Q::ONE);
        assert_eq!(-Q::HALF + Q::HALF, Q::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(Q::new(1, 3) < Q::HALF);
        assert!(Q::new(2, 3) > Q::HALF);
        assert!(Q::new(-1, 2) < Q::ZERO);
        assert_eq!(Q::new(3, 6).cmp(&Q::HALF), Ordering::Equal);
    }

    #[test]
    fn permission_validity() {
        assert!(Q::ONE.is_valid_permission());
        assert!(Q::new(1, 1024).is_valid_permission());
        assert!(!Q::ZERO.is_valid_permission());
        assert!(!(Q::ONE + Q::new(1, 1024)).is_valid_permission());
        assert!(!(-Q::HALF).is_valid_permission());
    }

    #[test]
    fn split_halves() {
        let q = Q::new(2, 3);
        assert_eq!(q.split() + q.split(), q);
    }

    #[test]
    fn min_max() {
        assert_eq!(Q::HALF.min(Q::ONE), Q::HALF);
        assert_eq!(Q::HALF.max(Q::ONE), Q::ONE);
    }

    #[test]
    fn display() {
        assert_eq!(Q::new(1, 2).to_string(), "1/2");
        assert_eq!(Q::from_int(7).to_string(), "7");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Q::new(1, 0);
    }
}
