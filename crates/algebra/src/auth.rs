//! The authoritative resource algebra `Auth<A>`.
//!
//! `Auth` splits a resource into an *authoritative* element `●a` (held by
//! an invariant or the logic's state interpretation) and *fragments* `◯b`
//! (held by program threads). Validity forces every fragment to be
//! included in the authority, which is what lets fragment owners draw
//! conclusions about the global state.

use crate::ra::{Ra, UnitRa};
use std::fmt;

/// The management (authoritative) part: absent, present, or conflicted.
#[derive(Clone, PartialEq, Eq, Debug)]
enum AuthPart<A> {
    None,
    Auth(A),
    Conflict,
}

/// The authoritative RA over a unital fragment algebra.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{Auth, Ra, SumNat};
///
/// let auth = Auth::auth(SumNat(5));
/// let frag = Auth::frag(SumNat(3));
/// assert!(auth.op(&frag).valid());                  // 3 ≤ 5
/// assert!(!auth.op(&Auth::frag(SumNat(7))).valid()); // 7 ≰ 5
/// assert!(!auth.op(&auth).valid());                  // two authorities
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Auth<A> {
    auth: AuthPart<A>,
    frag: A,
}

impl<A: UnitRa> Auth<A> {
    /// The authoritative element `●a`.
    #[allow(clippy::self_named_constructors)]
    pub fn auth(a: A) -> Auth<A> {
        Auth {
            auth: AuthPart::Auth(a),
            frag: A::unit(),
        }
    }

    /// A fragment `◯b`.
    pub fn frag(b: A) -> Auth<A> {
        Auth {
            auth: AuthPart::None,
            frag: b,
        }
    }

    /// The combination `●a ⋅ ◯b`.
    pub fn both(a: A, b: A) -> Auth<A> {
        Auth {
            auth: AuthPart::Auth(a),
            frag: b,
        }
    }

    /// The authoritative element, if present and unconflicted.
    pub fn authority(&self) -> Option<&A> {
        match &self.auth {
            AuthPart::Auth(a) => Some(a),
            _ => None,
        }
    }

    /// The fragment part.
    pub fn fragment(&self) -> &A {
        &self.frag
    }
}

impl<A: UnitRa> Ra for Auth<A> {
    fn op(&self, other: &Self) -> Self {
        let auth = match (&self.auth, &other.auth) {
            (AuthPart::None, x) | (x, AuthPart::None) => x.clone(),
            _ => AuthPart::Conflict,
        };
        Auth {
            auth,
            frag: self.frag.op(&other.frag),
        }
    }

    fn pcore(&self) -> Option<Self> {
        // Drop the authority (its core is the absent option-unit), keep
        // the total core of the fragment.
        Some(Auth {
            auth: AuthPart::None,
            frag: self.frag.pcore().unwrap_or_else(A::unit),
        })
    }

    fn valid(&self) -> bool {
        match &self.auth {
            AuthPart::Conflict => false,
            AuthPart::None => self.frag.valid(),
            AuthPart::Auth(a) => a.valid() && self.frag.included_in(a),
        }
    }

    fn included_in(&self, other: &Self) -> bool {
        let auth_ok = match (&self.auth, &other.auth) {
            (AuthPart::None, _) => true,
            (x, y) if x == y => true,
            (_, AuthPart::Conflict) => true,
            _ => false,
        };
        auth_ok && self.frag.included_in(&other.frag)
    }
}

impl<A: UnitRa> UnitRa for Auth<A> {
    fn unit() -> Self {
        Auth {
            auth: AuthPart::None,
            frag: A::unit(),
        }
    }
}

impl<A: fmt::Debug> fmt::Debug for Auth<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.auth {
            AuthPart::None => write!(f, "◯{:?}", self.frag),
            AuthPart::Auth(a) => write!(f, "●{:?} ⋅ ◯{:?}", a, self.frag),
            AuthPart::Conflict => write!(f, "●⊥ ⋅ ◯{:?}", self.frag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nat::{MaxNat, SumNat};
    use crate::ra::{law_assoc, law_comm, law_core_id, law_core_idem, law_unit, law_valid_op};

    #[test]
    fn authority_bounds_fragments() {
        let a = Auth::auth(SumNat(10));
        assert!(a.op(&Auth::frag(SumNat(10))).valid());
        assert!(a
            .op(&Auth::frag(SumNat(4)).op(&Auth::frag(SumNat(6))))
            .valid());
        assert!(!a.op(&Auth::frag(SumNat(11))).valid());
    }

    #[test]
    fn double_authority_is_invalid() {
        let a = Auth::auth(SumNat(1));
        assert!(!a.op(&a).valid());
    }

    #[test]
    fn fragments_compose() {
        let f = Auth::frag(SumNat(2)).op(&Auth::frag(SumNat(3)));
        assert_eq!(f.fragment(), &SumNat(5));
        assert_eq!(f.authority(), None);
    }

    #[test]
    fn laws() {
        let xs = [
            Auth::unit(),
            Auth::auth(MaxNat(2)),
            Auth::frag(MaxNat(1)),
            Auth::frag(MaxNat(3)),
            Auth::both(MaxNat(3), MaxNat(1)),
        ];
        for a in &xs {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            assert!(law_unit(a).ok());
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }

    #[test]
    fn monotone_counter_pattern() {
        // ● max-nat with duplicable ◯ lower bounds: the canonical
        // monotone-counter ghost theory.
        let state = Auth::auth(MaxNat(7));
        let bound = Auth::frag(MaxNat(5));
        assert!(state.op(&bound).valid());
        assert!(bound.op(&bound).valid()); // lower bounds duplicate
        assert_eq!(bound.op(&bound), bound);
    }
}
