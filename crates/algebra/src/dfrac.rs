//! The discardable-fraction resource algebra `DFrac`.
//!
//! `DFrac` extends [`crate::Frac`] with a *discarded* component: a
//! permission can be irreversibly discarded, after which a duplicable
//! witness of its (former) existence remains. This is the permission
//! annotation used by the points-to assertion `l ↦{dq} v`.

use crate::ra::Ra;
use crate::rational::Q;
use std::fmt;

/// A discardable fraction: an owned part, a discarded marker, or both.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{DFrac, Q, Ra};
///
/// let half = DFrac::own(Q::HALF);
/// assert!(half.op(&half).valid());
/// assert!(DFrac::discarded().is_core()); // the witness is duplicable
/// assert!(!DFrac::own(Q::ONE).op(&DFrac::discarded()).valid());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum DFrac {
    /// An owned fraction.
    Own(Q),
    /// The duplicable witness that some permission was discarded.
    Discarded,
    /// Both an owned fraction and a discarded witness.
    Both(Q),
}

impl DFrac {
    /// The full, undiscarded permission.
    pub const FULL: DFrac = DFrac::Own(Q::ONE);

    /// An owned fraction `q`.
    pub fn own(q: Q) -> DFrac {
        DFrac::Own(q)
    }

    /// The discarded witness.
    pub fn discarded() -> DFrac {
        DFrac::Discarded
    }

    /// The owned fractional amount (zero if fully discarded).
    pub fn owned_amount(self) -> Q {
        match self {
            DFrac::Own(q) | DFrac::Both(q) => q,
            DFrac::Discarded => Q::ZERO,
        }
    }

    /// Whether any part has been discarded.
    pub fn has_discarded(self) -> bool {
        !matches!(self, DFrac::Own(_))
    }

    /// Whether this permission allows writing (requires the full,
    /// undiscarded fraction).
    pub fn allows_write(self) -> bool {
        self == DFrac::FULL
    }

    /// Whether this permission allows reading (any positive owned amount
    /// or a discarded witness).
    pub fn allows_read(self) -> bool {
        self.has_discarded() || self.owned_amount().is_positive()
    }

    /// Discards the owned part, leaving a duplicable witness.
    pub fn discard(self) -> DFrac {
        DFrac::Discarded
    }
}

impl Ra for DFrac {
    fn op(&self, other: &Self) -> Self {
        use DFrac::*;
        match (*self, *other) {
            (Own(a), Own(b)) => Own(a + b),
            (Own(a), Discarded) | (Discarded, Own(a)) => Both(a),
            (Own(a), Both(b)) | (Both(a), Own(b)) => Both(a + b),
            (Discarded, Discarded) => Discarded,
            (Discarded, Both(a)) | (Both(a), Discarded) => Both(a),
            (Both(a), Both(b)) => Both(a + b),
        }
    }

    fn pcore(&self) -> Option<Self> {
        match self {
            DFrac::Own(_) => None,
            _ => Some(DFrac::Discarded),
        }
    }

    fn valid(&self) -> bool {
        match *self {
            DFrac::Own(q) => q.is_valid_permission(),
            DFrac::Discarded => true,
            // A discarded part strictly exists, so the owned part must
            // leave room: q must lie in (0, 1).
            DFrac::Both(q) => q.is_positive() && q < Q::ONE,
        }
    }

    fn included_in(&self, other: &Self) -> bool {
        if self == other {
            return true;
        }
        use DFrac::*;
        match (*self, *other) {
            (Own(a), Own(b)) => a < b,
            (Own(a), Both(b)) => a <= b,
            (Discarded, Both(_)) | (Discarded, Discarded) => true,
            (Both(a), Both(b)) => a <= b,
            _ => false,
        }
    }
}

impl fmt::Debug for DFrac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DFrac::Own(q) => write!(f, "{{{}}}", q),
            DFrac::Discarded => write!(f, "{{□}}"),
            DFrac::Both(q) => write!(f, "{{{} ⋅ □}}", q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::{law_assoc, law_comm, law_core_id, law_core_idem, law_valid_op};

    fn samples() -> Vec<DFrac> {
        vec![
            DFrac::own(Q::new(1, 3)),
            DFrac::own(Q::HALF),
            DFrac::FULL,
            DFrac::Discarded,
            DFrac::Both(Q::HALF),
            DFrac::Both(Q::ONE),
        ]
    }

    #[test]
    fn write_requires_full() {
        assert!(DFrac::FULL.allows_write());
        assert!(!DFrac::own(Q::HALF).allows_write());
        assert!(!DFrac::Both(Q::HALF).allows_write());
        assert!(!DFrac::Discarded.allows_write());
    }

    #[test]
    fn read_is_permissive() {
        assert!(DFrac::own(Q::new(1, 100)).allows_read());
        assert!(DFrac::Discarded.allows_read());
    }

    #[test]
    fn discarded_is_duplicable() {
        let d = DFrac::Discarded;
        assert_eq!(d.op(&d), d);
        assert!(d.is_core());
    }

    #[test]
    fn full_plus_discarded_is_invalid() {
        assert!(!DFrac::FULL.op(&DFrac::Discarded).valid());
        assert!(DFrac::own(Q::HALF).op(&DFrac::Discarded).valid());
    }

    #[test]
    fn laws() {
        let xs = samples();
        for a in &xs {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }

    #[test]
    fn inclusion() {
        assert!(DFrac::own(Q::HALF).included_in(&DFrac::FULL));
        assert!(DFrac::Discarded.included_in(&DFrac::Both(Q::HALF)));
        assert!(DFrac::own(Q::HALF).included_in(&DFrac::Both(Q::HALF)));
        assert!(!DFrac::FULL.included_in(&DFrac::own(Q::HALF)));
    }

    #[test]
    fn owned_amount() {
        assert_eq!(DFrac::own(Q::HALF).owned_amount(), Q::HALF);
        assert_eq!(DFrac::Discarded.owned_amount(), Q::ZERO);
        assert_eq!(DFrac::Both(Q::HALF).owned_amount(), Q::HALF);
    }
}
