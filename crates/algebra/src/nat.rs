//! Natural-number resource algebras: `SumNat` (addition) and `MaxNat`
//! (maximum).
//!
//! `SumNat` is the counting RA (e.g. contribution counters); `MaxNat` is
//! the monotone-counter RA whose elements are freely duplicable lower
//! bounds.

use crate::ra::{Ra, UnitRa};

/// Naturals under addition — the counting RA. Always valid.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{Ra, SumNat};
///
/// assert_eq!(SumNat(2).op(&SumNat(3)), SumNat(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SumNat(pub u64);

impl Ra for SumNat {
    fn op(&self, other: &Self) -> Self {
        SumNat(self.0 + other.0)
    }

    fn pcore(&self) -> Option<Self> {
        Some(SumNat(0))
    }

    fn valid(&self) -> bool {
        true
    }

    fn included_in(&self, other: &Self) -> bool {
        self.0 <= other.0
    }
}

impl UnitRa for SumNat {
    fn unit() -> Self {
        SumNat(0)
    }
}

/// Naturals under maximum — the monotone-counter RA. Every element is its
/// own core (a lower bound can be shared freely).
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{MaxNat, Ra};
///
/// let bound = MaxNat(4);
/// assert_eq!(bound.op(&MaxNat(7)), MaxNat(7));
/// assert!(bound.is_core());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MaxNat(pub u64);

impl Ra for MaxNat {
    fn op(&self, other: &Self) -> Self {
        MaxNat(self.0.max(other.0))
    }

    fn pcore(&self) -> Option<Self> {
        Some(*self)
    }

    fn valid(&self) -> bool {
        true
    }

    fn included_in(&self, other: &Self) -> bool {
        self.0 <= other.0
    }
}

impl UnitRa for MaxNat {
    fn unit() -> Self {
        MaxNat(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::{
        law_assoc, law_comm, law_core_id, law_core_idem, law_core_mono, law_unit, law_valid_op,
    };

    #[test]
    fn sum_nat_counts() {
        assert_eq!(SumNat(1).pow(5), SumNat(5));
        assert_eq!(SumNat::unit(), SumNat(0));
    }

    #[test]
    fn max_nat_is_lattice_join() {
        assert_eq!(MaxNat(3).op(&MaxNat(5)), MaxNat(5));
        assert_eq!(MaxNat(5).op(&MaxNat(5)), MaxNat(5));
    }

    #[test]
    fn laws_sum() {
        let xs: Vec<SumNat> = (0..5).map(SumNat).collect();
        for a in &xs {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            assert!(law_unit(a).ok());
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                assert!(law_core_mono(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }

    #[test]
    fn laws_max() {
        let xs: Vec<MaxNat> = (0..5).map(MaxNat).collect();
        for a in &xs {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            assert!(law_unit(a).ok());
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                assert!(law_core_mono(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }
}
