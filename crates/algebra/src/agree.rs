//! The agreement resource algebra `Ag(A)`.
//!
//! `Ag` models knowledge that all parties agree on a value: composing two
//! agreements on the same value is that agreement, composing agreements on
//! different values is invalid. Every element is its own core, so
//! agreement is freely duplicable.

use crate::ra::Ra;
use std::fmt;

/// The (discrete) agreement RA.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{Agree, Ra};
///
/// let a = Agree::new(42);
/// assert!(a.op(&a).valid());              // agreement duplicates freely
/// assert!(!a.op(&Agree::new(7)).valid()); // disagreement is invalid
/// assert!(a.is_core());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Agree<T> {
    /// Agreement on a value.
    Ag(T),
    /// The invalid element witnessing a disagreement.
    Bot,
}

impl<T> Agree<T> {
    /// Creates an agreement on `value`.
    pub fn new(value: T) -> Agree<T> {
        Agree::Ag(value)
    }

    /// Returns the agreed value, if the element is valid.
    pub fn get(&self) -> Option<&T> {
        match self {
            Agree::Ag(v) => Some(v),
            Agree::Bot => None,
        }
    }
}

impl<T: Clone + PartialEq + fmt::Debug> Ra for Agree<T> {
    fn op(&self, other: &Self) -> Self {
        match (self, other) {
            (Agree::Ag(a), Agree::Ag(b)) if a == b => Agree::Ag(a.clone()),
            _ => Agree::Bot,
        }
    }

    fn pcore(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn valid(&self) -> bool {
        matches!(self, Agree::Ag(_))
    }

    fn included_in(&self, other: &Self) -> bool {
        // a ≼ b iff b = a ⋅ c for some c (or a = b). Since op is idempotent
        // on equal values and Bot otherwise: Ag(v) ≼ Ag(v), and x ≼ Bot.
        self == other || *other == Agree::Bot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::{law_assoc, law_comm, law_core_id, law_core_idem, law_valid_op};

    #[test]
    fn agreement_duplicates() {
        let a = Agree::new(3);
        assert_eq!(a.op(&a), a);
        assert!(a.op(&a).valid());
    }

    #[test]
    fn disagreement_is_bot() {
        assert_eq!(Agree::new(1).op(&Agree::new(2)), Agree::Bot);
        assert!(!Agree::<i32>::Bot.valid());
    }

    #[test]
    fn everything_is_core() {
        assert!(Agree::new("v").is_core());
        assert!(Agree::<&str>::Bot.is_core());
    }

    #[test]
    fn laws() {
        let xs = [Agree::new(1), Agree::new(2), Agree::Bot];
        for a in &xs {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }

    #[test]
    fn inclusion() {
        let a = Agree::new(1);
        assert!(a.included_in(&a));
        assert!(a.included_in(&Agree::Bot));
        assert!(!a.included_in(&Agree::new(2)));
    }
}
