//! The finite-map resource algebra `GMap<K, A>`.
//!
//! Finite maps compose pointwise; absent keys act as units. This is the
//! workhorse RA underlying both the ghost-name heap and the physical heap
//! camera.

use crate::ra::{Ra, UnitRa};
use std::collections::BTreeMap;
use std::fmt;

/// A finite map from keys to resources, composing pointwise.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{Frac, GMap, Q, Ra};
///
/// let mut a = GMap::new();
/// a.insert(1u32, Frac::new(Q::HALF));
/// let combined = a.op(&a);
/// assert_eq!(combined.get(&1), Some(&Frac::new(Q::ONE)));
/// assert!(combined.valid());
/// assert!(!combined.op(&a).valid()); // 3/2 at key 1
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct GMap<K, A> {
    entries: BTreeMap<K, A>,
}

impl<K: Ord + Clone, A> GMap<K, A> {
    /// Creates the empty map (the unit).
    pub fn new() -> GMap<K, A> {
        GMap {
            entries: BTreeMap::new(),
        }
    }

    /// Creates a singleton map.
    pub fn singleton(key: K, value: A) -> GMap<K, A> {
        let mut entries = BTreeMap::new();
        entries.insert(key, value);
        GMap { entries }
    }

    /// Inserts an entry, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: A) -> Option<A> {
        self.entries.insert(key, value)
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &K) -> Option<A> {
        self.entries.remove(key)
    }

    /// Looks up an entry.
    pub fn get(&self, key: &K) -> Option<&A> {
        self.entries.get(key)
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &A)> {
        self.entries.iter()
    }

    /// The set of keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }
}

impl<K: Ord + Clone, A> Default for GMap<K, A> {
    fn default() -> Self {
        GMap::new()
    }
}

impl<K: Ord + Clone, A> FromIterator<(K, A)> for GMap<K, A> {
    fn from_iter<I: IntoIterator<Item = (K, A)>>(iter: I) -> Self {
        GMap {
            entries: iter.into_iter().collect(),
        }
    }
}

impl<K: Ord + Clone + fmt::Debug, A: fmt::Debug> fmt::Debug for GMap<K, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.entries.iter()).finish()
    }
}

impl<K: Ord + Clone + fmt::Debug, A: Ra> Ra for GMap<K, A> {
    fn op(&self, other: &Self) -> Self {
        let mut out = self.entries.clone();
        for (k, v) in &other.entries {
            match out.get_mut(k) {
                Some(existing) => {
                    *existing = existing.op(v);
                }
                None => {
                    out.insert(k.clone(), v.clone());
                }
            }
        }
        GMap { entries: out }
    }

    fn pcore(&self) -> Option<Self> {
        // Pointwise core, dropping entries without one (absence = unit).
        Some(GMap {
            entries: self
                .entries
                .iter()
                .filter_map(|(k, v)| v.pcore().map(|c| (k.clone(), c)))
                .collect(),
        })
    }

    fn valid(&self) -> bool {
        self.entries.values().all(Ra::valid)
    }

    fn validn(&self, n: crate::step::StepIdx) -> bool {
        self.entries.values().all(|v| v.validn(n))
    }

    fn included_in(&self, other: &Self) -> bool {
        self.entries
            .iter()
            .all(|(k, v)| match other.entries.get(k) {
                Some(w) => v.included_in(w),
                None => false,
            })
    }
}

impl<K: Ord + Clone + fmt::Debug, A: Ra> UnitRa for GMap<K, A> {
    fn unit() -> Self {
        GMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::excl::Excl;
    use crate::frac::Frac;
    use crate::ra::{law_assoc, law_comm, law_core_id, law_core_idem, law_unit, law_valid_op};
    use crate::rational::Q;

    fn m(entries: &[(u32, Frac)]) -> GMap<u32, Frac> {
        entries.iter().cloned().collect()
    }

    #[test]
    fn pointwise_composition() {
        let a = m(&[(1, Frac::new(Q::HALF)), (2, Frac::new(Q::new(1, 3)))]);
        let b = m(&[(1, Frac::new(Q::HALF))]);
        let c = a.op(&b);
        assert_eq!(c.get(&1), Some(&Frac::FULL));
        assert_eq!(c.get(&2), Some(&Frac::new(Q::new(1, 3))));
    }

    #[test]
    fn invalid_when_any_entry_invalid() {
        let a = m(&[(1, Frac::FULL)]);
        assert!(a.valid());
        assert!(!a.op(&a).valid());
    }

    #[test]
    fn disjoint_exclusive_maps_compose() {
        let a = GMap::singleton(1u32, Excl::new(10));
        let b = GMap::singleton(2u32, Excl::new(20));
        assert!(a.op(&b).valid());
        assert!(!a.op(&a).valid());
    }

    #[test]
    fn laws() {
        let xs = [
            GMap::new(),
            m(&[(1, Frac::new(Q::HALF))]),
            m(&[(1, Frac::new(Q::HALF)), (2, Frac::FULL)]),
            m(&[(2, Frac::new(Q::new(1, 3)))]),
        ];
        for a in &xs {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            assert!(law_unit(a).ok());
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }

    #[test]
    fn inclusion_is_pointwise() {
        let small = m(&[(1, Frac::new(Q::HALF))]);
        let big = m(&[(1, Frac::FULL), (2, Frac::new(Q::HALF))]);
        assert!(small.included_in(&big));
        assert!(!big.included_in(&small));
        assert!(GMap::<u32, Frac>::new().included_in(&small));
    }

    #[test]
    fn collection_api() {
        let mut a = GMap::new();
        assert!(a.is_empty());
        a.insert(1u32, Frac::FULL);
        assert_eq!(a.len(), 1);
        assert!(a.contains_key(&1));
        assert_eq!(a.remove(&1), Some(Frac::FULL));
        assert!(a.is_empty());
    }
}
