//! The exclusive resource algebra `Excl(A)`.
//!
//! `Excl` models uniquely-owned ghost state: composing any two exclusive
//! resources is invalid, so at most one party can ever hold one.

use crate::ra::Ra;
use std::fmt;

/// The exclusive RA over an arbitrary carrier.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::{Excl, Ra};
///
/// let a = Excl::new(1);
/// let b = Excl::new(2);
/// assert!(a.valid());
/// assert!(!a.op(&b).valid()); // two owners can never coexist
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Excl<T> {
    /// Exclusive ownership of `T`.
    Own(T),
    /// The invalid element resulting from composing two exclusives.
    Bot,
}

impl<T> Excl<T> {
    /// Creates an exclusive resource owning `value`.
    pub fn new(value: T) -> Excl<T> {
        Excl::Own(value)
    }

    /// Returns the owned value, if the element is not bottom.
    pub fn get(&self) -> Option<&T> {
        match self {
            Excl::Own(v) => Some(v),
            Excl::Bot => None,
        }
    }
}

impl<T: Clone + PartialEq + fmt::Debug> Ra for Excl<T> {
    fn op(&self, _other: &Self) -> Self {
        Excl::Bot
    }

    fn pcore(&self) -> Option<Self> {
        None
    }

    fn valid(&self) -> bool {
        matches!(self, Excl::Own(_))
    }

    fn included_in(&self, other: &Self) -> bool {
        // Only Bot has a decomposition (Bot = x ⋅ y for any x, y), so the
        // extension order is: reflexivity plus everything below Bot.
        self == other || *other == Excl::Bot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::{law_assoc, law_comm, law_valid_op};

    #[test]
    fn exclusive_composition_is_invalid() {
        let a = Excl::new("x");
        assert!(a.valid());
        assert!(!a.op(&a).valid());
        assert!(!Excl::<&str>::Bot.valid());
    }

    #[test]
    fn no_core() {
        assert_eq!(Excl::new(5).pcore(), None);
        assert_eq!(Excl::<i32>::Bot.pcore(), None);
    }

    #[test]
    fn laws() {
        let xs = [Excl::new(1), Excl::new(2), Excl::Bot];
        for a in &xs {
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }

    #[test]
    fn inclusion() {
        let a = Excl::new(1);
        assert!(a.included_in(&a));
        assert!(a.included_in(&Excl::Bot));
        assert!(!a.included_in(&Excl::new(2)));
    }

    #[test]
    fn get_extracts_value() {
        assert_eq!(Excl::new(7).get(), Some(&7));
        assert_eq!(Excl::<i32>::Bot.get(), None);
    }
}
