//! The product resource algebra: componentwise composition on pairs.

use crate::ra::{Ra, UnitRa};

impl<A: Ra, B: Ra> Ra for (A, B) {
    fn op(&self, other: &Self) -> Self {
        (self.0.op(&other.0), self.1.op(&other.1))
    }

    fn pcore(&self) -> Option<Self> {
        match (self.0.pcore(), self.1.pcore()) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    fn valid(&self) -> bool {
        self.0.valid() && self.1.valid()
    }

    fn validn(&self, n: crate::step::StepIdx) -> bool {
        self.0.validn(n) && self.1.validn(n)
    }

    fn included_in(&self, other: &Self) -> bool {
        // Componentwise reflexive-extension order. This is sound (a ≼ b
        // componentwise implies a ≼ b) and complete for products where
        // mixed "one side equal, one side strictly extended" splits exist,
        // which holds for all unital components; for non-unital components
        // it is a sound approximation used only by law checking.
        self == other || (self.0.included_in(&other.0) && self.1.included_in(&other.1))
    }
}

impl<A: UnitRa, B: UnitRa> UnitRa for (A, B) {
    fn unit() -> Self {
        (A::unit(), B::unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frac::Frac;
    use crate::nat::{MaxNat, SumNat};
    use crate::ra::{law_assoc, law_comm, law_core_id, law_core_idem, law_unit, law_valid_op};
    use crate::rational::Q;

    #[test]
    fn componentwise_op() {
        let x = (SumNat(1), MaxNat(5));
        let y = (SumNat(2), MaxNat(3));
        assert_eq!(x.op(&y), (SumNat(3), MaxNat(5)));
    }

    #[test]
    fn validity_is_conjunction() {
        let good = (Frac::new(Q::HALF), SumNat(0));
        let bad = (Frac::new(Q::ONE + Q::ONE), SumNat(0));
        assert!(good.valid());
        assert!(!bad.valid());
    }

    #[test]
    fn core_requires_both() {
        // Frac has no core, so neither does the pair.
        assert_eq!((Frac::FULL, SumNat(1)).pcore(), None);
        assert_eq!((SumNat(1), MaxNat(2)).pcore(), Some((SumNat(0), MaxNat(2))));
    }

    #[test]
    fn laws() {
        let xs: Vec<(SumNat, MaxNat)> = (0..3)
            .flat_map(|a| (0..3).map(move |b| (SumNat(a), MaxNat(b))))
            .collect();
        for a in &xs {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            assert!(law_unit(a).ok());
            for b in &xs {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                for c in &xs {
                    assert!(law_assoc(a, b, c).ok());
                }
            }
        }
    }
}
