//! Step-indexing primitives.
//!
//! Iris is a *step-indexed* logic: truth is relative to a natural number
//! of remaining computation steps, and assertions must be *down-closed* —
//! if they hold at `n` they hold at every `m <= n`. This module provides
//! the step-index type and the lattice of down-closed step sets
//! ([`SProp`]), which is the codomain of the semantic evaluator in
//! `daenerys-core`.

use std::fmt;

/// A step index: the number of computation steps the assertion is still
/// good for.
pub type StepIdx = usize;

/// A down-closed set of step indices — a "step-indexed proposition".
///
/// Every down-closed subset of the naturals is either empty, everything
/// below some bound, or all of ℕ, so three constructors suffice.
///
/// # Examples
///
/// ```
/// use daenerys_algebra::SProp;
///
/// let p = SProp::up_to(3); // holds at 0,1,2,3
/// assert!(p.holds(3) && !p.holds(4));
/// assert_eq!(p.and(SProp::True), p);
/// assert_eq!(p.or(SProp::False), p);
/// assert!(p.later().holds(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SProp {
    /// Holds at no step index.
    #[default]
    False,
    /// Holds at every index `<= bound`.
    UpTo(StepIdx),
    /// Holds at every step index.
    True,
}

impl SProp {
    /// The proposition holding exactly at indices `<= bound`.
    pub fn up_to(bound: StepIdx) -> SProp {
        SProp::UpTo(bound)
    }

    /// Builds an `SProp` from a boolean: `True` or `False` uniformly.
    pub fn from_bool(b: bool) -> SProp {
        if b {
            SProp::True
        } else {
            SProp::False
        }
    }

    /// Whether the proposition holds at step index `n`.
    pub fn holds(self, n: StepIdx) -> bool {
        match self {
            SProp::False => false,
            SProp::UpTo(k) => n <= k,
            SProp::True => true,
        }
    }

    /// Meet: holds where both hold.
    pub fn and(self, other: SProp) -> SProp {
        match (self, other) {
            (SProp::False, _) | (_, SProp::False) => SProp::False,
            (SProp::True, p) | (p, SProp::True) => p,
            (SProp::UpTo(a), SProp::UpTo(b)) => SProp::UpTo(a.min(b)),
        }
    }

    /// Join: holds where either holds.
    pub fn or(self, other: SProp) -> SProp {
        match (self, other) {
            (SProp::True, _) | (_, SProp::True) => SProp::True,
            (SProp::False, p) | (p, SProp::False) => p,
            (SProp::UpTo(a), SProp::UpTo(b)) => SProp::UpTo(a.max(b)),
        }
    }

    /// The `later` shift: `▷P` holds at `n` iff `n == 0` or `P` holds at
    /// `n - 1`. On down-closed sets this bumps the bound by one.
    pub fn later(self) -> SProp {
        match self {
            SProp::False => SProp::UpTo(0),
            SProp::UpTo(k) => SProp::UpTo(k + 1),
            SProp::True => SProp::True,
        }
    }

    /// Whether `self` is contained in `other` (entailment of step sets).
    pub fn implies(self, other: SProp) -> bool {
        match (self, other) {
            (SProp::False, _) => true,
            (_, SProp::True) => true,
            (SProp::True, _) => false,
            (SProp::UpTo(a), SProp::UpTo(b)) => a <= b,
            (SProp::UpTo(_), SProp::False) => false,
        }
    }

    /// Restricts the proposition to indices `<= bound`; useful when the
    /// evaluator works with a finite step budget.
    pub fn truncate(self, bound: StepIdx) -> SProp {
        self.and(SProp::UpTo(bound))
    }
}

impl fmt::Display for SProp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SProp::False => write!(f, "⊥"),
            SProp::UpTo(k) => write!(f, "≤{}", k),
            SProp::True => write!(f, "⊤"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_closure() {
        let p = SProp::up_to(5);
        for n in 0..=5 {
            assert!(p.holds(n));
        }
        assert!(!p.holds(6));
    }

    #[test]
    fn lattice_ops() {
        let a = SProp::up_to(3);
        let b = SProp::up_to(7);
        assert_eq!(a.and(b), a);
        assert_eq!(a.or(b), b);
        assert_eq!(SProp::True.and(a), a);
        assert_eq!(SProp::False.or(a), a);
        assert_eq!(SProp::True.or(a), SProp::True);
        assert_eq!(SProp::False.and(a), SProp::False);
    }

    #[test]
    fn later_shifts() {
        assert_eq!(SProp::False.later(), SProp::up_to(0));
        assert_eq!(SProp::up_to(2).later(), SProp::up_to(3));
        assert_eq!(SProp::True.later(), SProp::True);
        // ▷ is monotone
        assert!(SProp::up_to(1).later().implies(SProp::up_to(2).later()));
    }

    #[test]
    fn implication() {
        assert!(SProp::False.implies(SProp::False));
        assert!(SProp::up_to(2).implies(SProp::up_to(2)));
        assert!(SProp::up_to(2).implies(SProp::True));
        assert!(!SProp::True.implies(SProp::up_to(1000)));
        assert!(!SProp::up_to(3).implies(SProp::up_to(2)));
    }

    #[test]
    fn truncation() {
        assert_eq!(SProp::True.truncate(4), SProp::up_to(4));
        assert_eq!(SProp::up_to(2).truncate(4), SProp::up_to(2));
        assert_eq!(SProp::False.truncate(4), SProp::False);
    }

    #[test]
    fn from_bool_roundtrip() {
        assert!(SProp::from_bool(true).holds(99));
        assert!(!SProp::from_bool(false).holds(0));
    }
}
