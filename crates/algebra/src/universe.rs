//! Enumerable universes for bounded model checking.
//!
//! The semantic soundness checks in `daenerys-core` quantify over "all
//! resources" and "all frames". Over a genuinely infinite carrier that is
//! impossible, so every RA we model-check implements [`Enumerable`]: a
//! finite, budget-controlled sample of the carrier that includes the
//! elements the laws and updates actually distinguish (units, invalid
//! elements, boundary fractions, …).

use crate::agree::Agree;
use crate::auth::Auth;
use crate::dfrac::DFrac;
use crate::excl::Excl;
use crate::frac::Frac;
use crate::gset::GSet;
use crate::nat::{MaxNat, SumNat};
use crate::ra::UnitRa;
use crate::rational::Q;

/// A type whose carrier can be sampled up to a budget.
///
/// The budget is a soft size control: larger budgets yield strictly more
/// elements. Implementations must return *deduplicated* vectors and should
/// include the algebra's distinguished elements (units, bottoms) at every
/// budget.
pub trait Enumerable: Sized {
    /// Samples the carrier with the given budget.
    fn enumerate(budget: usize) -> Vec<Self>;
}

impl Enumerable for bool {
    fn enumerate(_budget: usize) -> Vec<bool> {
        vec![false, true]
    }
}

impl Enumerable for u64 {
    fn enumerate(budget: usize) -> Vec<u64> {
        (0..=budget as u64).collect()
    }
}

impl Enumerable for Q {
    fn enumerate(budget: usize) -> Vec<Q> {
        let mut out = vec![Q::ZERO];
        let denom_max = (budget as i128).clamp(1, 6);
        for den in 1..=denom_max {
            for num in -1..=(den + 1) {
                let q = Q::new(num, den);
                if !out.contains(&q) {
                    out.push(q);
                }
            }
        }
        out
    }
}

impl Enumerable for Frac {
    // The Frac carrier is the *positive* rationals (as in Iris's `Qp`);
    // zero and negative amounts are not elements, merely q > 1 is the
    // invalid region.
    fn enumerate(budget: usize) -> Vec<Frac> {
        Q::enumerate(budget)
            .into_iter()
            .filter(|q| q.is_positive())
            .map(Frac::new)
            .collect()
    }
}

impl Enumerable for DFrac {
    fn enumerate(budget: usize) -> Vec<DFrac> {
        let mut out = vec![DFrac::Discarded];
        for q in Q::enumerate(budget) {
            if q.is_positive() {
                out.push(DFrac::Own(q));
                out.push(DFrac::Both(q));
            }
        }
        out
    }
}

impl Enumerable for SumNat {
    fn enumerate(budget: usize) -> Vec<SumNat> {
        (0..=budget as u64).map(SumNat).collect()
    }
}

impl Enumerable for MaxNat {
    fn enumerate(budget: usize) -> Vec<MaxNat> {
        (0..=budget as u64).map(MaxNat).collect()
    }
}

impl<T: Enumerable> Enumerable for Excl<T> {
    fn enumerate(budget: usize) -> Vec<Excl<T>> {
        let mut out: Vec<Excl<T>> = T::enumerate(budget).into_iter().map(Excl::Own).collect();
        out.push(Excl::Bot);
        out
    }
}

impl<T: Enumerable> Enumerable for Agree<T> {
    fn enumerate(budget: usize) -> Vec<Agree<T>> {
        let mut out: Vec<Agree<T>> = T::enumerate(budget).into_iter().map(Agree::Ag).collect();
        out.push(Agree::Bot);
        out
    }
}

impl<A: Enumerable> Enumerable for Option<A> {
    fn enumerate(budget: usize) -> Vec<Option<A>> {
        let mut out = vec![None];
        out.extend(A::enumerate(budget).into_iter().map(Some));
        out
    }
}

impl<A: Enumerable + Clone, B: Enumerable + Clone> Enumerable for (A, B) {
    fn enumerate(budget: usize) -> Vec<(A, B)> {
        let aa = A::enumerate(budget);
        let bb = B::enumerate(budget);
        let mut out = Vec::with_capacity(aa.len() * bb.len());
        for a in &aa {
            for b in &bb {
                out.push((a.clone(), b.clone()));
            }
        }
        out
    }
}

impl<A: Enumerable + UnitRa> Enumerable for Auth<A> {
    fn enumerate(budget: usize) -> Vec<Auth<A>> {
        let elems = A::enumerate(budget);
        let mut out = vec![Auth::unit()];
        for a in &elems {
            out.push(Auth::auth(a.clone()));
            out.push(Auth::frag(a.clone()));
            for b in &elems {
                out.push(Auth::both(a.clone(), b.clone()));
            }
        }
        out
    }
}

impl Enumerable for GSet<u64> {
    fn enumerate(budget: usize) -> Vec<GSet<u64>> {
        // All subsets of {0, .., min(budget,4)-1}, plus Bot.
        let n = budget.clamp(1, 4);
        let mut out = Vec::with_capacity((1 << n) + 1);
        for mask in 0u32..(1 << n) {
            out.push(GSet::from_iter(
                (0..n as u64).filter(|i| mask & (1 << i) != 0),
            ));
        }
        out.push(GSet::Bot);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::Ra;

    #[test]
    fn universes_are_deduplicated() {
        fn dedup_len<T: PartialEq>(xs: &[T]) -> usize {
            let mut seen: Vec<&T> = Vec::new();
            for x in xs {
                if !seen.contains(&x) {
                    seen.push(x);
                }
            }
            seen.len()
        }
        let qs = Q::enumerate(4);
        assert_eq!(dedup_len(&qs), qs.len());
        let ds = DFrac::enumerate(3);
        assert_eq!(dedup_len(&ds), ds.len());
    }

    #[test]
    fn budget_grows_universe() {
        assert!(SumNat::enumerate(8).len() > SumNat::enumerate(2).len());
        assert!(Q::enumerate(6).len() > Q::enumerate(1).len());
    }

    #[test]
    fn distinguished_elements_present() {
        assert!(Frac::enumerate(2).contains(&Frac::FULL));
        assert!(Excl::<u64>::enumerate(2).contains(&Excl::Bot));
        assert!(Agree::<bool>::enumerate(1).contains(&Agree::Bot));
        assert!(Option::<Frac>::enumerate(2).contains(&None));
        assert!(GSet::<u64>::enumerate(2).iter().any(|s| !s.valid()));
    }

    #[test]
    fn auth_universe_contains_both_parts() {
        let u = Auth::<SumNat>::enumerate(2);
        assert!(u.iter().any(|x| x.authority().is_some()));
        assert!(u.iter().any(|x| x.authority().is_none()));
    }
}
