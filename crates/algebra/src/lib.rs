//! # `daenerys-algebra` — resource algebras for the destabilized Iris logic
//!
//! This crate provides the algebraic substrate of the Daenerys logic
//! (our executable reproduction of *Destabilizing Iris*, PLDI 2025):
//!
//! * exact rational arithmetic for fractional permissions ([`Q`]);
//! * step-indexing primitives ([`StepIdx`], [`SProp`]);
//! * the resource-algebra interface ([`Ra`], [`UnitRa`]) together with
//!   executable law checkers;
//! * the standard camera constructions: [`Excl`], [`Agree`], [`Frac`],
//!   [`DFrac`], [`SumNat`], [`MaxNat`], products, [`Option`]-lifting,
//!   finite maps ([`GMap`]), token sets ([`GSet`]), and the authoritative
//!   construction ([`Auth`]);
//! * checked frame-preserving and local updates
//!   ([`frame_preserving_update`], [`local_update`]);
//! * [`Enumerable`] universes that let `daenerys-core` model-check
//!   entailments and proof rules over finite resource samples.
//!
//! # Example
//!
//! ```
//! use daenerys_algebra::{Auth, frame_preserving_update, Ra, SumNat};
//!
//! // The authoritative counter: an authority bounds the fragments.
//! let state = Auth::auth(SumNat(2));
//! let contrib = Auth::frag(SumNat(2));
//! assert!(state.op(&contrib).valid());
//!
//! // Exclusive ghost state updates freely.
//! use daenerys_algebra::Excl;
//! let frames = Excl::<u64>::enumerate_frames();
//! assert!(frame_preserving_update(&Excl::new(0), &Excl::new(1), &frames));
//!
//! // Small helper used in this doc test:
//! trait EnumFrames: Sized { fn enumerate_frames() -> Vec<Self>; }
//! impl EnumFrames for Excl<u64> {
//!     fn enumerate_frames() -> Vec<Self> {
//!         use daenerys_algebra::Enumerable;
//!         Excl::enumerate(3)
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agree;
mod auth;
mod dfrac;
mod excl;
mod frac;
mod gmap;
mod gset;
mod nat;
mod option;
mod prod;
mod ra;
mod rational;
mod step;
mod universe;
mod updates;

pub use agree::Agree;
pub use auth::Auth;
pub use dfrac::DFrac;
pub use excl::Excl;
pub use frac::Frac;
pub use gmap::GMap;
pub use gset::GSet;
pub use nat::{MaxNat, SumNat};
pub use ra::{
    law_assoc, law_comm, law_core_id, law_core_idem, law_core_mono, law_included_op, law_unit,
    law_valid_op, LawOutcome, Ra, UnitRa,
};
pub use rational::Q;
pub use step::{SProp, StepIdx};
pub use universe::Enumerable;
pub use updates::{
    exclusive_local_update, frame_preserving_update, frame_preserving_update_set, local_update,
};
