//! Property-based tests of the RA laws for every camera instance.
//!
//! These are the executable counterpart of the Rocq lemmas certifying
//! each camera in the original artifact (see DESIGN.md, experiment T3).

use daenerys_algebra::{
    law_assoc, law_comm, law_core_id, law_core_idem, law_core_mono, law_included_op, law_unit,
    law_valid_op, Agree, Auth, DFrac, Enumerable, Excl, Frac, GMap, GSet, MaxNat, Ra, SumNat,
    UnitRa, Q,
};
use proptest::prelude::*;

/// Runs the full non-unital law battery on three elements.
fn check_laws<A: Ra>(a: &A, b: &A, c: &A) {
    assert!(law_assoc(a, b, c).ok(), "assoc failed: {a:?} {b:?} {c:?}");
    assert!(law_comm(a, b).ok(), "comm failed: {a:?} {b:?}");
    assert!(law_valid_op(a, b).ok(), "valid-op failed: {a:?} {b:?}");
    assert!(law_core_id(a).ok(), "core-id failed: {a:?}");
    assert!(law_core_idem(a).ok(), "core-idem failed: {a:?}");
    assert!(law_core_mono(a, b).ok(), "core-mono failed: {a:?} {b:?}");
    assert!(
        law_included_op(a, b).ok(),
        "included-op failed: {a:?} {b:?}"
    );
}

fn arb_q() -> impl Strategy<Value = Q> {
    (-4i128..=8, 1i128..=6).prop_map(|(n, d)| Q::new(n, d))
}

/// Positive rationals — the carrier of the permission algebras (Iris's
/// `Qp`). Zero/negative amounts are not elements of `Frac`/`DFrac`.
fn arb_qp() -> impl Strategy<Value = Q> {
    (1i128..=8, 1i128..=6).prop_map(|(n, d)| Q::new(n, d))
}

fn arb_frac() -> impl Strategy<Value = Frac> {
    arb_qp().prop_map(Frac::new)
}

fn arb_dfrac() -> impl Strategy<Value = DFrac> {
    prop_oneof![
        arb_qp().prop_map(DFrac::Own),
        Just(DFrac::Discarded),
        arb_qp().prop_map(DFrac::Both),
    ]
}

fn arb_excl() -> impl Strategy<Value = Excl<u8>> {
    prop_oneof![any::<u8>().prop_map(Excl::Own), Just(Excl::Bot)]
}

fn arb_agree() -> impl Strategy<Value = Agree<u8>> {
    prop_oneof![any::<u8>().prop_map(Agree::Ag), Just(Agree::Bot)]
}

fn arb_gmap() -> impl Strategy<Value = GMap<u8, Frac>> {
    proptest::collection::btree_map(0u8..6, arb_frac(), 0..4).prop_map(|m| m.into_iter().collect())
}

fn arb_gset() -> impl Strategy<Value = GSet<u64>> {
    prop_oneof![
        proptest::collection::btree_set(0u64..8, 0..5).prop_map(GSet::from_iter),
        Just(GSet::Bot),
    ]
}

fn arb_auth() -> impl Strategy<Value = Auth<SumNat>> {
    let nat = (0u64..8).prop_map(SumNat);
    prop_oneof![
        Just(Auth::unit()),
        nat.clone().prop_map(Auth::auth),
        nat.clone().prop_map(Auth::frag),
        (nat.clone(), nat).prop_map(|(a, b)| Auth::both(a, b)),
    ]
}

proptest! {
    #[test]
    fn frac_laws(a in arb_frac(), b in arb_frac(), c in arb_frac()) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn dfrac_laws(a in arb_dfrac(), b in arb_dfrac(), c in arb_dfrac()) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn excl_laws(a in arb_excl(), b in arb_excl(), c in arb_excl()) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn agree_laws(a in arb_agree(), b in arb_agree(), c in arb_agree()) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn sum_nat_laws(a in 0u64..64, b in 0u64..64, c in 0u64..64) {
        check_laws(&SumNat(a), &SumNat(b), &SumNat(c));
        assert!(law_unit(&SumNat(a)).ok());
    }

    #[test]
    fn max_nat_laws(a in 0u64..64, b in 0u64..64, c in 0u64..64) {
        check_laws(&MaxNat(a), &MaxNat(b), &MaxNat(c));
        assert!(law_unit(&MaxNat(a)).ok());
    }

    #[test]
    fn option_frac_laws(
        a in proptest::option::of(arb_frac()),
        b in proptest::option::of(arb_frac()),
        c in proptest::option::of(arb_frac()),
    ) {
        check_laws(&a, &b, &c);
        assert!(law_unit(&a).ok());
    }

    #[test]
    fn pair_laws(
        a in (0u64..8, 0u64..8),
        b in (0u64..8, 0u64..8),
        c in (0u64..8, 0u64..8),
    ) {
        let f = |(x, y): (u64, u64)| (SumNat(x), MaxNat(y));
        check_laws(&f(a), &f(b), &f(c));
        assert!(law_unit(&f(a)).ok());
    }

    #[test]
    fn gmap_laws(a in arb_gmap(), b in arb_gmap(), c in arb_gmap()) {
        check_laws(&a, &b, &c);
        assert!(law_unit(&a).ok());
    }

    #[test]
    fn gset_laws(a in arb_gset(), b in arb_gset(), c in arb_gset()) {
        check_laws(&a, &b, &c);
    }

    #[test]
    fn auth_laws(a in arb_auth(), b in arb_auth(), c in arb_auth()) {
        check_laws(&a, &b, &c);
        assert!(law_unit(&a).ok());
    }

    #[test]
    fn rational_field_laws(a in arb_q(), b in arb_q(), c in arb_q()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Q::ZERO);
        prop_assert_eq!(a + Q::ZERO, a);
        prop_assert_eq!(a * Q::ONE, a);
    }

    #[test]
    fn rational_order_compatible(a in arb_q(), b in arb_q(), c in arb_q()) {
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
    }
}

/// Exhaustive law check over the enumerated universes — this is what the
/// T3 table reports on.
#[test]
fn exhaustive_laws_over_universes() {
    fn battery<A: Ra + Enumerable>(budget: usize) -> usize {
        let u = A::enumerate(budget);
        let mut checked = 0;
        for a in &u {
            assert!(law_core_id(a).ok());
            assert!(law_core_idem(a).ok());
            for b in &u {
                assert!(law_comm(a, b).ok());
                assert!(law_valid_op(a, b).ok());
                assert!(law_core_mono(a, b).ok());
                assert!(law_included_op(a, b).ok());
                for c in &u {
                    assert!(law_assoc(a, b, c).ok());
                    checked += 1;
                }
            }
        }
        checked
    }
    assert!(battery::<Frac>(3) > 0);
    assert!(battery::<DFrac>(2) > 0);
    assert!(battery::<Excl<bool>>(1) > 0);
    assert!(battery::<Agree<bool>>(1) > 0);
    assert!(battery::<SumNat>(4) > 0);
    assert!(battery::<MaxNat>(4) > 0);
    assert!(battery::<Option<Frac>>(2) > 0);
    assert!(battery::<Auth<SumNat>>(2) > 0);
    assert!(battery::<GSet<u64>>(3) > 0);
}
