//! # Daenerys — an executable reproduction of *Destabilizing Iris* (PLDI 2025)
//!
//! This facade crate re-exports the full toolkit:
//!
//! * [`algebra`] — resource algebras (cameras), fractions, step-indexing;
//! * [`heaplang`] — the HeapLang language: syntax, semantics, schedulers;
//! * [`logic`] — the destabilized base logic: worlds, assertions with
//!   heap-dependent expressions and permission introspection, the
//!   stabilization modalities, the semantic model, and the proof kernel;
//! * [`proglog`] — Hoare triples, the WP rule kernel with the
//!   destabilized side conditions, and adequacy-by-monitored-execution;
//! * [`idf`] — the Viper-style implicit-dynamic-frames verifier with the
//!   `Destabilized` and `StableBaseline` backends, its mini decision
//!   procedure, and compilation to HeapLang.
//!
//! See `README.md` for a tour and `DESIGN.md`/`EXPERIMENTS.md` for the
//! reproduction methodology.
//!
//! ## Quickstart
//!
//! ```
//! use daenerys::idf::{parse_program, Backend, Verifier};
//!
//! let program = parse_program(
//!     "field val: Int
//!      method inc(c: Ref)
//!        requires acc(c.val)
//!        ensures acc(c.val) && c.val == old(c.val) + 1
//!      { c.val := c.val + 1 }",
//! )?;
//! let mut verifier = Verifier::new(&program, Backend::Destabilized);
//! assert!(verifier.verify_all().is_ok());
//! # Ok::<(), daenerys::idf::ParseError>(())
//! ```

#![warn(missing_docs)]

/// Resource algebras and step-indexing (`daenerys-algebra`).
pub use daenerys_algebra as algebra;
/// The destabilized base logic (`daenerys-core`).
pub use daenerys_core as logic;
/// The HeapLang programming language (`daenerys-heaplang`).
pub use daenerys_heaplang as heaplang;
/// The IDF automated verifier (`daenerys-idf`).
pub use daenerys_idf as idf;
/// The program logic over HeapLang (`daenerys-proglog`).
pub use daenerys_proglog as proglog;
