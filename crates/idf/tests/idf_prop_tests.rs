//! Property tests for the IDF front-end: printer/parser round-trips and
//! verifier robustness (no panics on arbitrary well-formed programs).

use daenerys_algebra::Q;
use daenerys_idf::{
    diverging_program, parse_program, Assertion, Backend, Budget, BudgetAxis, Expr, FaultKind,
    FaultPlan, Method, Op, Program, Solver, SolverCore, Sort, Stmt, Sym, SymExpr, TermArena, Type,
    Verdict, Verifier, VerifierConfig,
};
use daenerys_obs::{ClockKind, Event, MemorySink, TraceHandle};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Once};

/// Quiets the default panic hook for injected-fault payloads so the
/// chaos property below does not spray backtraces; real panics still
/// print.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                prev(info);
            }
        }));
    });
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let var = prop_oneof![Just("a"), Just("b"), Just("n")].prop_map(Expr::var);
    let leaf = prop_oneof![
        (-8i64..=8).prop_map(Expr::Int),
        any::<bool>().prop_map(Expr::Bool),
        var.clone(),
        var.clone().prop_map(|v| Expr::field(v, "v")),
        var.clone()
            .prop_map(|v| Expr::Old(Box::new(Expr::field(v, "v")), daenerys_idf::Span::NONE)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(Op::Add),
                    Just(Op::Sub),
                    Just(Op::Mul),
                    Just(Op::Eq),
                    Just(Op::Ne),
                    Just(Op::Lt),
                    Just(Op::Le),
                    Just(Op::Gt),
                    Just(Op::Ge),
                    Just(Op::And),
                    Just(Op::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::Cond(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

fn arb_assertion() -> impl Strategy<Value = Assertion> {
    let acc = prop_oneof![Just("a"), Just("b")]
        .prop_map(|x| Assertion::Acc(Expr::var(x), "v".to_string(), Q::HALF));
    let leaf = prop_oneof![arb_expr().prop_map(Assertion::Expr), acc];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Assertion::and(a, b)),
            (arb_expr(), inner.clone()).prop_map(|(c, a)| Assertion::Implies(c, Box::new(a))),
        ]
    })
    // The printer round-trips canonical assertions (see
    // `Assertion::normalize`).
    .prop_map(|a| a.normalize())
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let target = prop_oneof![Just("t"), Just("r")];
    let recv = prop_oneof![Just("a"), Just("b")].prop_map(Expr::var);
    let leaf = prop_oneof![
        (target.clone(), arb_expr()).prop_map(|(x, e)| Stmt::Assign(x.to_string(), e)),
        (recv.clone(), arb_expr()).prop_map(|(r, e)| Stmt::FieldWrite(r, "v".to_string(), e)),
        arb_assertion().prop_map(Stmt::Inhale),
        arb_assertion().prop_map(Stmt::Exhale),
        arb_assertion().prop_map(Stmt::Assert),
        (target, arb_expr()).prop_map(|(x, e)| Stmt::VarDecl(x.to_string(), Type::Int, e)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (
                arb_expr(),
                proptest::collection::vec(inner.clone(), 1..3),
                proptest::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
            (
                arb_expr(),
                arb_assertion(),
                proptest::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(c, i, b)| Stmt::While(c, i, b)),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_stmt(), 0..5),
        arb_assertion(),
        arb_assertion(),
    )
        .prop_map(|(body, requires, ensures)| Program {
            fields: vec![("v".to_string(), Type::Int)],
            methods: vec![Method {
                name: "m".to_string(),
                params: vec![
                    ("a".to_string(), Type::Ref),
                    ("b".to_string(), Type::Ref),
                    ("n".to_string(), Type::Int),
                ],
                returns: vec![("r".to_string(), Type::Int)],
                requires,
                ensures,
                body: Some(body),
            }],
        })
}

/// A linear Int term over the symbols `x0..x2`.
fn arb_lin_term() -> impl Strategy<Value = SymExpr> {
    let atom = prop_oneof![
        (0u32..3).prop_map(|i| SymExpr::sym(Sym(i))),
        (-6i64..=6).prop_map(SymExpr::int),
        ((-2i64..=2), (0u32..3))
            .prop_map(|(c, i)| SymExpr::mul(SymExpr::int(c), SymExpr::sym(Sym(i)))),
    ];
    (atom.clone(), atom).prop_map(|(a, b)| SymExpr::add(a, b))
}

/// A boolean query formula: comparisons of linear terms under the
/// propositional connectives.
fn arb_formula() -> impl Strategy<Value = SymExpr> {
    let cmp = (arb_lin_term(), arb_lin_term(), 0u8..3).prop_map(|(a, b, k)| match k {
        0 => SymExpr::eq(a, b),
        1 => SymExpr::lt(a, b),
        _ => SymExpr::le(a, b),
    });
    cmp.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymExpr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymExpr::implies(a, b)),
            inner.clone().prop_map(SymExpr::not),
        ]
    })
}

/// An arbitrary fault aimed at the chaos target method.
fn arb_fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (0usize..8).prop_map(FaultKind::SolverUnknownAfter),
        prop_oneof![
            Just(BudgetAxis::Deadline),
            Just(BudgetAxis::SolverFuel),
            Just(BudgetAxis::States),
            Just(BudgetAxis::Terms),
        ]
        .prop_map(FaultKind::ExhaustBudget),
        (0usize..4).prop_map(FaultKind::PanicAtState),
    ]
}

/// A fault plan of 1–3 faults, all aimed at method `b`.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec(arb_fault_kind(), 1..4).prop_map(|kinds| {
        let mut plan = FaultPlan::none();
        for kind in kinds {
            plan.push("b", kind);
        }
        plan
    })
}

/// A per-method budget over the deterministic axes only (fuel, states,
/// terms — never the wall clock), each axis possibly unlimited.
fn arb_budget() -> impl Strategy<Value = Budget> {
    (
        proptest::option::of(1u64..64),
        proptest::option::of(1u64..16),
        proptest::option::of(1u64..256),
    )
        .prop_map(|(fuel, states, terms)| Budget {
            deadline_ms: None,
            solver_fuel: fuel,
            max_states: states,
            max_terms: terms,
        })
}

/// A stream of entailment queries `(pc, goal)`.
fn arb_query_stream() -> impl Strategy<Value = Vec<(Vec<SymExpr>, SymExpr)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(arb_formula(), 0..4),
            arb_formula(),
        ),
        1..8,
    )
}

/// Verifies `p` under the given solver toggles, projected to what must
/// be invariant: each method's definite verdict (`Some(true)` verified,
/// `Some(false)` failed, `None` indefinite) and its failed obligations.
/// Failure *reports* render arena terms (canonicalization legitimately
/// reshapes those spellings) and stats count branches/terms/learned
/// clauses (both knobs change those costs), so neither is compared.
fn toggled_verdicts(
    p: &Program,
    simplify: bool,
    learn: bool,
    threads: usize,
) -> Vec<(String, Option<bool>, Vec<daenerys_idf::Obligation>)> {
    toggled_verdicts_core(p, simplify, learn, threads, SolverCore::default())
}

/// As [`toggled_verdicts`], with an explicit SAT core.
fn toggled_verdicts_core(
    p: &Program,
    simplify: bool,
    learn: bool,
    threads: usize,
    solver: SolverCore,
) -> Vec<(String, Option<bool>, Vec<daenerys_idf::Obligation>)> {
    let mut v = Verifier::with_config(
        p,
        Backend::Destabilized,
        VerifierConfig {
            threads,
            simplify,
            learn,
            solver,
            ..VerifierConfig::default()
        },
    );
    v.verify_all_verdicts()
        .into_iter()
        .map(|(name, verdict)| {
            let definite = match &verdict {
                Verdict::Verified(_) => Some(true),
                Verdict::Failed { .. } => Some(false),
                _ => None,
            };
            let failures = match &verdict {
                Verdict::Failed { failures, .. } | Verdict::Unknown { failures, .. } => {
                    failures.clone()
                }
                _ => Vec::new(),
            };
            (name, definite, failures)
        })
        .collect()
}

/// On a program entirely inside the linear fragment — where every
/// canonical rewrite is a logical equivalence — the full toggle matrix
/// (canonicalization × clause learning) is verdict-transparent at 1, 2,
/// and 8 threads, including for a method that definitely fails.
#[test]
fn toggle_matrix_is_verdict_transparent_on_linear_programs() {
    let p = parse_program(
        "field val: Int
         method ok(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1
         { c.val := 1 }
         method bad(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 2
         { c.val := 3 }
         method gap(x: Int, y: Int) returns (r: Int)
           requires x < y ensures r >= 1
         { if (x + 1 < y) { r := y - x } else { r := 1 } }",
    )
    .unwrap();
    let baseline = toggled_verdicts(&p, true, true, 1);
    assert!(
        baseline
            .iter()
            .any(|(name, _, failures)| name == "bad" && !failures.is_empty()),
        "the failing method must fail, or the matrix compares nothing"
    );
    for simplify in [true, false] {
        for learn in [true, false] {
            for threads in [1usize, 2, 8] {
                for solver in [SolverCore::Cdcl, SolverCore::Dpll] {
                    assert_eq!(
                        baseline,
                        toggled_verdicts_core(&p, simplify, learn, threads, solver),
                        "verdicts diverge at simplify={}, learn={}, threads={}, solver={:?}",
                        simplify,
                        learn,
                        threads,
                        solver
                    );
                }
            }
        }
    }
}

/// Differential (program level): the CDCL and legacy DPLL cores give
/// bit-identical verdicts on the exponential diverging family — the
/// workload the CDCL core was built to collapse — at every thread
/// count and learning setting.
#[test]
fn cdcl_matches_dpll_on_diverging_programs() {
    for k in [1usize, 2, 4, 6] {
        let p = parse_program(&diverging_program(k)).unwrap();
        let baseline = toggled_verdicts_core(&p, true, true, 1, SolverCore::Cdcl);
        for learn in [true, false] {
            for threads in [1usize, 2, 8] {
                for solver in [SolverCore::Cdcl, SolverCore::Dpll] {
                    assert_eq!(
                        baseline,
                        toggled_verdicts_core(&p, true, learn, threads, solver),
                        "verdicts diverge at k={}, learn={}, threads={}, solver={:?}",
                        k,
                        learn,
                        threads,
                        solver
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential: the memoizing solver cache never changes an
    /// answer. The stream is replayed twice so the second pass is
    /// answered from cache, and every answer must still match a
    /// cache-less solver run fresh on the same queries.
    #[test]
    fn solver_cache_is_answer_transparent(stream in arb_query_stream()) {
        let mut cached = Solver::new();
        let mut uncached = Solver::new();
        uncached.cache_enabled = false;
        let mut arena_c = TermArena::new();
        let mut arena_u = TermArena::new();
        for i in 0..3 {
            cached.declare(Sym(i), Sort::Int);
            uncached.declare(Sym(i), Sort::Int);
        }
        for (pc, goal) in stream.iter().chain(stream.iter()) {
            let ac = cached.entails_exprs(&mut arena_c, pc, goal);
            let au = uncached.entails_exprs(&mut arena_u, pc, goal);
            prop_assert_eq!(ac, au, "cache changed answer for pc={:?}, goal={:?}", pc, goal);
        }
        // The replayed pass must have been served from cache.
        prop_assert!(cached.cache_hits >= stream.len());
        prop_assert_eq!(uncached.cache_hits, 0);
    }

    /// Differential: intern-time canonicalization never changes an
    /// answer. The generated fragment is linear arithmetic, where every
    /// canonical rewrite is a logical equivalence, so the comparison is
    /// bit-exact.
    #[test]
    fn canonicalization_is_answer_transparent(stream in arb_query_stream()) {
        let mut canon = Solver::new();
        let mut plain = Solver::new();
        let mut arena_c = TermArena::new();
        let mut arena_p = TermArena::new();
        arena_p.set_simplify(false);
        for i in 0..3 {
            canon.declare(Sym(i), Sort::Int);
            plain.declare(Sym(i), Sort::Int);
        }
        for (pc, goal) in &stream {
            let ac = canon.entails_exprs(&mut arena_c, pc, goal);
            let ap = plain.entails_exprs(&mut arena_p, pc, goal);
            prop_assert_eq!(
                ac, ap,
                "canonicalization changed answer for pc={:?}, goal={:?}", pc, goal
            );
        }
    }

    /// Differential: clause learning never changes an answer. Learned
    /// clauses are negations of theory-conflict cores — valid lemmas —
    /// so they may only prune work. The stream is replayed with
    /// memoization off so the second pass actually re-solves against
    /// the accumulated clauses.
    #[test]
    fn clause_learning_is_answer_transparent(stream in arb_query_stream()) {
        let mut learning = Solver::new();
        let mut naive = Solver::new();
        learning.cache_enabled = false;
        naive.cache_enabled = false;
        naive.learn_enabled = false;
        let mut arena_l = TermArena::new();
        let mut arena_n = TermArena::new();
        for i in 0..3 {
            learning.declare(Sym(i), Sort::Int);
            naive.declare(Sym(i), Sort::Int);
        }
        for (pc, goal) in stream.iter().chain(stream.iter()) {
            let al = learning.entails_exprs(&mut arena_l, pc, goal);
            let an = naive.entails_exprs(&mut arena_n, pc, goal);
            prop_assert_eq!(
                al, an,
                "clause learning changed answer for pc={:?}, goal={:?}", pc, goal
            );
        }
        prop_assert!(
            learning.branches <= naive.branches,
            "learning explored more branches ({} vs {})",
            learning.branches, naive.branches
        );
    }

    /// Differential: the CDCL core and the legacy recursive DPLL core
    /// answer every query identically on random linear streams. The
    /// generated fragment is linear arithmetic under the propositional
    /// connectives — exactly the domain of the CDCL theory layer — and
    /// the stream is replayed so cross-query lemma retention is
    /// exercised on both sides.
    #[test]
    fn cdcl_core_matches_dpll_on_query_streams(stream in arb_query_stream()) {
        let mut cdcl = Solver::new();
        let mut dpll = Solver::new();
        cdcl.core = SolverCore::Cdcl;
        dpll.core = SolverCore::Dpll;
        cdcl.cache_enabled = false;
        dpll.cache_enabled = false;
        let mut arena_c = TermArena::new();
        let mut arena_d = TermArena::new();
        for i in 0..3 {
            cdcl.declare(Sym(i), Sort::Int);
            dpll.declare(Sym(i), Sort::Int);
        }
        for (pc, goal) in stream.iter().chain(stream.iter()) {
            let ac = cdcl.entails_exprs(&mut arena_c, pc, goal);
            let ad = dpll.entails_exprs(&mut arena_d, pc, goal);
            prop_assert_eq!(
                ac, ad,
                "cores disagree for pc={:?}, goal={:?}", pc, goal
            );
        }
    }

    /// Differential (program level): on arbitrary programs, each
    /// (canonicalization, learning) setting is exactly thread-
    /// transparent, and across the learning toggle *definite* verdicts
    /// always agree. On nonlinear programs the CDCL core may decide an
    /// obligation naive DPLL leaves Unknown (propagation skips a
    /// theory-Unknown leaf), and canonicalization may merge commuted
    /// opaque atoms — both are precision improvements, so bit-exact
    /// toggle equality is asserted only on the linear fragment (see
    /// `canonicalization_is_answer_transparent` and
    /// `toggle_matrix_is_verdict_transparent_on_linear_programs`).
    #[test]
    fn toggles_are_thread_transparent_and_sound(
        simplify in any::<bool>(),
        p in arb_program(),
    ) {
        let mut per_learn = Vec::new();
        for learn in [true, false] {
            let baseline = toggled_verdicts(&p, simplify, learn, 1);
            for threads in [2usize, 8] {
                prop_assert_eq!(
                    &baseline,
                    &toggled_verdicts(&p, simplify, learn, threads),
                    "thread count changed verdicts (simplify={}, learn={}, threads={}) on:\n{}",
                    simplify, learn, threads, p
                );
            }
            per_learn.push(baseline);
        }
        // Across the learning toggle, a method definitely verified by
        // one core must never be definitely failed by the other.
        for ((name, with, _), (_, without, _)) in per_learn[0].iter().zip(&per_learn[1]) {
            if let (Some(a), Some(b)) = (with, without) {
                prop_assert_eq!(
                    a, b,
                    "cores give contradictory definite verdicts for {} (simplify={}) on:\n{}",
                    name, simplify, p
                );
            }
        }
    }

    /// Differential: whole-program verification is unaffected by the
    /// cache — same verdict, same obligations (descriptions and
    /// outcomes), same cache-independent statistics.
    #[test]
    fn verify_all_is_cache_transparent(p in arb_program()) {
        let run = |cache: bool| {
            let mut v = Verifier::with_config(
                &p,
                Backend::Destabilized,
                VerifierConfig {
                    threads: 1,
                    cache,
                    ..VerifierConfig::default()
                },
            );
            let verdict = v.verify_all().map(|stats| {
                stats
                    .into_iter()
                    .map(|(name, s)| {
                        (name, s.obligations, s.solver_queries, s.symbols, s.states)
                    })
                    .collect::<Vec<_>>()
            });
            (verdict, v.obligations().to_vec())
        };
        prop_assert_eq!(run(true), run(false), "cache changed verification of:\n{}", p);
    }

    /// The pretty-printer emits source that parses back to the same AST.
    #[test]
    fn program_print_parse_roundtrip(p in arb_program()) {
        let printed = p.to_string();
        let reparsed = parse_program(&printed);
        prop_assert!(reparsed.is_ok(), "unparseable:\n{}", printed);
        prop_assert_eq!(reparsed.unwrap(), p, "roundtrip mismatch:\n{}", printed);
    }

    /// The verifier never panics on arbitrary well-formed programs, and
    /// both backends return the same verdict.
    #[test]
    fn verifier_is_total_and_backends_agree(p in arb_program()) {
        let rd = Verifier::new(&p, Backend::Destabilized).verify_all().is_ok();
        let rb = Verifier::new(&p, Backend::StableBaseline).verify_all().is_ok();
        prop_assert_eq!(rd, rb, "backends disagree on:\n{}", p);
    }

    /// Chaos isolation: a random fault plan aimed at one method, under
    /// a random finite budget, always terminates with a full verdict
    /// map and never changes a sibling's verdict — at one worker or
    /// many.
    #[test]
    fn fault_plans_never_change_sibling_verdicts(
        plan in arb_fault_plan(),
        budget in arb_budget(),
        threads in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        quiet_injected_panics();
        let program = parse_program(
            "field val: Int
             method a(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1
             { c.val := 1 }
             method b(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 2
             { c.val := 1; c.val := c.val + 1 }
             method c(c: Ref) requires acc(c.val) ensures acc(c.val)
             { c.val := c.val + 0 }",
        ).unwrap();
        let run = |faults: FaultPlan, threads: usize| -> BTreeMap<String, Verdict> {
            let mut v = Verifier::with_config(
                &program,
                Backend::Destabilized,
                VerifierConfig {
                    threads,
                    budget,
                    faults,
                    retry_unknown: false,
                    ..VerifierConfig::default()
                },
            );
            v.verify_all_verdicts()
                .into_iter()
                .map(|(name, verdict)| (name, verdict.normalized()))
                .collect()
        };
        let clean = run(FaultPlan::none(), 1);
        let faulted = run(plan.clone(), threads);
        prop_assert_eq!(faulted.len(), 3, "verdict map incomplete under {:?}", &plan);
        for sibling in ["a", "c"] {
            prop_assert_eq!(
                &faulted[sibling],
                &clean[sibling],
                "fault plan {:?} (budget {:?}, {} threads) leaked into sibling {}",
                &plan, &budget, threads, sibling
            );
        }
    }

    /// Flight-recorder determinism: under the logical clock, the
    /// merged trace (after timestamp normalization) and the verdict
    /// map are identical at 1, 2, and 8 worker threads, with the
    /// solver cache on or off, even under injected faults and finite
    /// budgets. The merge path buffers per worker and replays in
    /// program order, so thread scheduling must never show through.
    #[test]
    fn traces_are_deterministic_across_threads_and_cache(
        plan in arb_fault_plan(),
        budget in arb_budget(),
        cache in any::<bool>(),
    ) {
        quiet_injected_panics();
        let program = parse_program(
            "field val: Int
             method a(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1
             { c.val := 1 }
             method b(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 2
             { c.val := 1; c.val := c.val + 1 }
             method c(c: Ref) requires acc(c.val) ensures acc(c.val)
             { c.val := c.val + 0 }",
        ).unwrap();
        let run = |threads: usize| -> (BTreeMap<String, Verdict>, Vec<Event>) {
            let sink = Arc::new(MemorySink::new(1 << 14));
            let mut v = Verifier::with_config(
                &program,
                Backend::Destabilized,
                VerifierConfig {
                    threads,
                    budget,
                    cache,
                    faults: plan.clone(),
                    retry_unknown: false,
                    trace: TraceHandle::new(sink.clone(), ClockKind::Logical),
                    ..VerifierConfig::default()
                },
            );
            let verdicts = v
                .verify_all_verdicts()
                .into_iter()
                .map(|(name, verdict)| (name, verdict.normalized()))
                .collect();
            let events = sink.events().iter().map(Event::normalized).collect();
            (verdicts, events)
        };
        let (verdicts_1, trace_1) = run(1);
        prop_assert!(!trace_1.is_empty(), "enabled trace produced no events");
        for threads in [2usize, 8] {
            let (verdicts_n, trace_n) = run(threads);
            prop_assert_eq!(
                &verdicts_1, &verdicts_n,
                "verdicts diverge at {} threads under {:?}", threads, &plan
            );
            prop_assert_eq!(
                &trace_1, &trace_n,
                "trace diverges at {} threads (cache={}, budget {:?}) under {:?}",
                threads, cache, &budget, &plan
            );
        }
    }
}
