//! Property tests for the spec dependency graph: on random call DAGs,
//! transitive spec dirtiness must re-verify *exactly* the
//! reverse-reachable set of the edited method (ground truth computed
//! independently from the generated adjacency), a body-only edit must
//! dirty only itself, and formatting-only spec edits must dirty
//! nothing at all.

use daenerys_idf::{parse_program, Backend, DepGraph, Verdict, Verifier, VerifierConfig};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

/// A random call DAG over `n` methods: `edges[i]` lists the callees of
/// method `i`, every callee index strictly smaller than `i` (so the
/// graph is acyclic by construction).
#[derive(Clone, Debug)]
struct Dag {
    edges: Vec<Vec<usize>>,
}

fn arb_dag() -> impl Strategy<Value = Dag> {
    // Fixed 8×8 adjacency flags, truncated to the sampled size (the
    // vendored proptest has no flat_map; over-generating is free).
    (
        3usize..9,
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), 8..9), 8..9),
    )
        .prop_map(|(n, flags)| Dag {
            edges: (0..n)
                .map(|i| (0..i).filter(|&j| flags[i][j]).collect())
                .collect(),
        })
}

impl Dag {
    fn len(&self) -> usize {
        self.edges.len()
    }

    /// Renders the DAG as an IDF program whose contracts chain
    /// transitively (`requires n >= 0 ensures r >= n`), so every
    /// method verifies under the difference-bounds theory whatever
    /// the topology.
    fn source(&self, spec_edit: Option<usize>, body_edit: Option<usize>) -> String {
        let mut src = String::new();
        for (i, callees) in self.edges.iter().enumerate() {
            let ensures = if spec_edit == Some(i) {
                "ensures r >= n && r >= 0"
            } else {
                "ensures r >= n"
            };
            src.push_str(&format!(
                "method m{}(n: Int) returns (r: Int) requires n >= 0 {}\n{{ var t: Int := n;",
                i, ensures
            ));
            for &j in callees {
                src.push_str(&format!(" call t := m{}(t);", j));
            }
            if body_edit == Some(i) {
                src.push_str(" var u: Int := 0; t := t + u;");
            }
            src.push_str(" r := t }\n");
        }
        src
    }

    /// Ground truth, straight from the adjacency: everything that can
    /// reach `target` through call edges (including `target` itself).
    fn reverse_reachable(&self, target: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::from([target]);
        let mut queue = VecDeque::from([target]);
        while let Some(cur) = queue.pop_front() {
            for (i, callees) in self.edges.iter().enumerate() {
                if callees.contains(&cur) && out.insert(i) {
                    queue.push_back(i);
                }
            }
        }
        out
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "daenerys-depgraph-{}-{}-{:?}",
        tag,
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One incremental pass; returns (normalized verdicts, reverified,
/// dirty_transitive).
fn run(src: &str, dir: &std::path::Path) -> (BTreeMap<String, Verdict>, usize, usize) {
    let program = parse_program(src).unwrap();
    let cfg = VerifierConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..VerifierConfig::default()
    };
    let mut v = Verifier::with_config(&program, Backend::Destabilized, cfg);
    let verdicts: BTreeMap<String, Verdict> = v
        .verify_all_verdicts()
        .into_iter()
        .map(|(name, verdict)| (name, verdict.normalized()))
        .collect();
    assert!(
        verdicts.values().all(Verdict::is_verified),
        "generated DAG programs always verify"
    );
    (
        verdicts,
        v.methods_reverified().expect("incremental run"),
        v.store_dirty_transitive().expect("incremental run"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A spec edit re-verifies exactly the reverse-reachable set of
    /// the edited method — no more (the rest of the corpus stays
    /// warm), no less (every transitive caller is forced even where
    /// its own fingerprint still matches).
    #[test]
    fn spec_edit_dirties_exactly_the_reverse_reachable_set(
        dag in arb_dag(),
        pick in 0usize..64,
    ) {
        let target = pick % dag.len();
        let dir = temp_dir("spec");
        let (cold, reverified_cold, _) = run(&dag.source(None, None), &dir);
        prop_assert_eq!(reverified_cold, dag.len());
        let expected = dag.reverse_reachable(target);
        let (warm, reverified, dirty_transitive) =
            run(&dag.source(Some(target), None), &dir);
        prop_assert_eq!(
            reverified,
            expected.len(),
            "re-verified set must equal the reverse-reachable cone of m{}",
            target
        );
        // The graph plane only forces what the fingerprint plane
        // missed: hits it discarded are a subset of the cone.
        prop_assert!(dirty_transitive <= expected.len());
        // Untouched methods restore bit-identically.
        for (name, verdict) in &warm {
            let i: usize = name[1..].parse().unwrap();
            if !expected.contains(&i) {
                prop_assert_eq!(&cold[name], verdict);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A body-only edit dirties the edited method and nothing else:
    /// interfaces are unchanged, so the graph contributes no roots.
    #[test]
    fn body_edit_dirties_only_itself(
        dag in arb_dag(),
        pick in 0usize..64,
    ) {
        let target = pick % dag.len();
        let dir = temp_dir("body");
        let (cold, _, _) = run(&dag.source(None, None), &dir);
        let (warm, reverified, dirty_transitive) =
            run(&dag.source(None, Some(target)), &dir);
        prop_assert_eq!(reverified, 1, "only the edited body re-verifies");
        prop_assert_eq!(dirty_transitive, 0, "no interface changed");
        for (name, verdict) in &warm {
            if name != &format!("m{}", target) {
                prop_assert_eq!(&cold[name], verdict);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Formatting-only spec edits (whitespace and comments) change no
    /// normalized interface, so nothing re-verifies — the guard for
    /// hashing pretty-printed interfaces instead of raw spec text.
    #[test]
    fn formatting_only_edits_dirty_nothing(
        dag in arb_dag(),
        pad in proptest::collection::vec(prop_oneof![
            Just("  "), Just("\n"), Just("\t"), Just(" // c\n"), Just(" /* x */ "),
        ], 1..6),
    ) {
        let dir = temp_dir("fmt");
        let plain = dag.source(None, None);
        let (_, reverified_cold, _) = run(&plain, &dir);
        prop_assert_eq!(reverified_cold, dag.len());
        // Reflow the specs: every "requires"/"ensures" keyword gets a
        // random pile of whitespace/comments in front of it.
        let mut noisy = plain
            .replace("requires", &format!("{}requires", pad.concat()))
            .replace("ensures", &format!("{}ensures", pad.concat()));
        noisy.push_str("\n// trailing commentary\n");
        let (_, reverified, dirty_transitive) = run(&noisy, &dir);
        prop_assert_eq!(reverified, 0, "formatting-only edits stay warm");
        prop_assert_eq!(dirty_transitive, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The persisted graph's dirtiness plane agrees with the ground
    /// truth adjacency on every node, not just the sampled edit:
    /// `DepGraph::reverse_reachable` *is* the reverse-reachable set.
    #[test]
    fn graph_reverse_reachability_matches_ground_truth(dag in arb_dag()) {
        let program = parse_program(&dag.source(None, None)).unwrap();
        let graph = DepGraph::of_program(&program);
        for target in 0..dag.len() {
            let roots = BTreeSet::from([format!("m{}", target)]);
            let got = graph.reverse_reachable(&roots);
            let expected: BTreeSet<String> = dag
                .reverse_reachable(target)
                .into_iter()
                .map(|i| format!("m{}", i))
                .collect();
            prop_assert_eq!(got, expected);
        }
    }
}
