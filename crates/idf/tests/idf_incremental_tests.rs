//! Integration tests for incremental verification (`cache_dir`): the
//! persistent verdict store must skip exactly the methods whose
//! semantic fingerprint is unchanged, reproduce their verdicts
//! bit-identically, and never persist an indefinite outcome.

use daenerys_idf::{
    diverging_program, parse_program, Backend, Budget, Program, Verdict, VerdictStore, Verifier,
    VerifierConfig,
};
use std::collections::BTreeMap;
use std::path::PathBuf;

const SRC: &str = "field val: Int
     method get(c: Ref) returns (r: Int)
       requires acc(c.val, 1/2)
       ensures acc(c.val, 1/2) && r == c.val
     { r := c.val }
     method double(c: Ref) returns (r: Int)
       requires acc(c.val, 1/2)
       ensures acc(c.val, 1/2)
     { var t: Int := 0; call t := get(c); r := t + t }
     method free(n: Int) returns (r: Int)
       requires n >= 0
       ensures r >= 0
     { r := n }";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("daenerys-ivc-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> VerifierConfig {
    VerifierConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..VerifierConfig::default()
    }
}

/// Runs one incremental pass; returns (normalized verdicts, reverified).
fn run(program: &Program, cfg: &VerifierConfig) -> (BTreeMap<String, Verdict>, usize) {
    let mut v = Verifier::with_config(program, Backend::Destabilized, cfg.clone());
    let verdicts = v
        .verify_all_verdicts()
        .into_iter()
        .map(|(name, verdict)| (name, verdict.normalized()))
        .collect();
    let reverified = v
        .methods_reverified()
        .expect("incremental runs report a reverified count");
    (verdicts, reverified)
}

#[test]
fn second_run_reverifies_nothing_bit_identically() {
    let dir = temp_dir("warm");
    let program = parse_program(SRC).unwrap();
    let cfg = config(&dir);
    let (first, reverified_1) = run(&program, &cfg);
    assert_eq!(reverified_1, 3, "cold store re-verifies everything");
    assert!(first.values().all(Verdict::is_verified));
    let (second, reverified_2) = run(&program, &cfg);
    assert_eq!(reverified_2, 0, "warm store re-verifies nothing");
    assert_eq!(first, second, "restored verdicts are bit-identical");
    // Thread count must not perturb the restored run either.
    for threads in [2usize, 8] {
        let cfg_n = VerifierConfig {
            threads,
            ..cfg.clone()
        };
        let (again, reverified_n) = run(&program, &cfg_n);
        assert_eq!(reverified_n, 0);
        assert_eq!(first, again);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn body_edit_invalidates_exactly_that_method() {
    let dir = temp_dir("body-edit");
    let cfg = config(&dir);
    let (_, cold) = run(&parse_program(SRC).unwrap(), &cfg);
    assert_eq!(cold, 3);
    // A body-only edit of a leaf method: only that method re-verifies.
    let edited = SRC.replace("{ r := n }", "{ r := n + 0 }");
    let (verdicts, warm) = run(&parse_program(&edited).unwrap(), &cfg);
    assert_eq!(warm, 1, "only the edited method re-verifies");
    assert!(verdicts.values().all(Verdict::is_verified));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spec_edit_invalidates_the_method_and_its_callers() {
    let dir = temp_dir("spec-edit");
    let cfg = config(&dir);
    let (_, cold) = run(&parse_program(SRC).unwrap(), &cfg);
    assert_eq!(cold, 3);
    // Strengthening get's postcondition invalidates get AND double
    // (its direct caller), but not the unrelated free.
    let edited = SRC.replace("r == c.val", "r == c.val && r >= old(c.val)");
    let (_, warm) = run(&parse_program(&edited).unwrap(), &cfg);
    assert_eq!(warm, 2, "the edited method plus its caller re-verify");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_verdicts_are_restored_with_full_diagnostics() {
    let dir = temp_dir("failed");
    let cfg = config(&dir);
    let bad = "field val: Int
         method broken(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1
         { c.val := 2 }";
    let program = parse_program(bad).unwrap();
    let (first, cold) = run(&program, &cfg);
    assert_eq!(cold, 1);
    let (second, warm) = run(&program, &cfg);
    assert_eq!(warm, 0, "a definite Failed verdict is restorable");
    assert_eq!(first, second);
    match &second["broken"] {
        Verdict::Failed { failures, report } => {
            assert!(!failures.is_empty());
            assert_eq!(report.method, "broken");
            assert!(!report.first_failure.is_empty());
        }
        other => panic!("expected Failed, got {:?}", other),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_verdicts_are_never_persisted() {
    let dir = temp_dir("unknown");
    let cfg = VerifierConfig {
        budget: Budget::unlimited().with_solver_fuel(64),
        retry_unknown: false,
        ..config(&dir)
    };
    let program = parse_program(&diverging_program(10)).unwrap();
    let (first, cold) = run(&program, &cfg);
    assert_eq!(cold, 3);
    let unknowns = first
        .values()
        .filter(|v| matches!(v, Verdict::Unknown { .. }))
        .count();
    assert_eq!(unknowns, 1, "the diverging method exhausts its fuel");
    let (second, warm) = run(&program, &cfg);
    assert_eq!(
        warm, 1,
        "the Unknown method re-verifies; its definite siblings restore"
    );
    assert_eq!(first, second);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_store_costs_reverification_not_correctness() {
    // New stores default to the sharded DAES1 binary format: stomp
    // every shard file with garbage.
    let dir = temp_dir("corrupt");
    let cfg = config(&dir);
    let program = parse_program(SRC).unwrap();
    let (first, _) = run(&program, &cfg);
    for i in 0..VerdictStore::SHARD_COUNT {
        let path = dir.join(VerdictStore::shard_file_name(i));
        if path.exists() {
            std::fs::write(&path, b"definitely not DAES1").unwrap();
        }
    }
    let (second, warm) = run(&program, &cfg);
    assert_eq!(warm, 3, "a damaged store re-verifies everything");
    assert_eq!(first, second);
    // And the rewritten store is warm again.
    let (_, again) = run(&program, &cfg);
    assert_eq!(again, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_jsonl_store_costs_reverification_not_correctness() {
    // The legacy JSONL path keeps the same damage contract.
    let dir = temp_dir("corrupt-jsonl");
    let cfg = VerifierConfig {
        store_format: Some(daenerys_idf::StoreFormat::Jsonl),
        ..config(&dir)
    };
    let program = parse_program(SRC).unwrap();
    let (first, _) = run(&program, &cfg);
    let path = dir.join(VerdictStore::FILE_NAME);
    std::fs::write(&path, "}{ definitely not json\n").unwrap();
    let (second, warm) = run(&program, &cfg);
    assert_eq!(warm, 3, "a damaged store re-verifies everything");
    assert_eq!(first, second);
    let (_, again) = run(&program, &cfg);
    assert_eq!(again, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn solver_core_switch_invalidates_the_store() {
    // The SAT core is answer-affecting for the fingerprint: verdicts
    // cached under CDCL must never be replayed for a DPLL run (and
    // vice versa), even though the cores agree on every answer.
    let dir = temp_dir("core-switch");
    let cfg = config(&dir);
    let program = parse_program(SRC).unwrap();
    let (first, cold) = run(&program, &cfg);
    assert_eq!(cold, 3);
    let dpll = VerifierConfig {
        solver: daenerys_idf::SolverCore::Dpll,
        ..cfg.clone()
    };
    let (second, switched) = run(&program, &dpll);
    assert_eq!(switched, 3, "a core switch re-verifies everything");
    // Outcomes agree; cost statistics (branches vs. propagations)
    // legitimately differ between the cores.
    assert!(
        second.values().all(Verdict::is_verified) && first.len() == second.len(),
        "the cores agree on every verdict"
    );
    // Store entries are keyed by the answer-affecting config
    // fingerprint, so the DPLL pass wrote entries *alongside* the CDCL
    // ones instead of overwriting them: switching back is warm.
    let (_, back) = run(&program, &cfg);
    assert_eq!(back, 0, "per-config entries coexist; no thrashing");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_incremental_runs_report_no_reverified_count() {
    let program = parse_program(SRC).unwrap();
    let mut v = Verifier::new(&program, Backend::Destabilized);
    let _ = v.verify_all_verdicts();
    assert_eq!(v.methods_reverified(), None);
}
