//! Cross-layer tests for the static stability analyzer: the syntactic
//! classifier against the semantic oracle of `daenerys_core::stability`
//! over the shared translation encoding, plus the verifier-level
//! guarantees of the `stability_skips` fast path and the
//! `deny_unstable` gate.

use daenerys_core::{check_stable, UniverseSpec};
use daenerys_idf::{
    agrees_with_oracle, alloc_object, classify, parse_program, positive_cases, translate_assertion,
    Assertion, Backend, Expr, Op, Program, Span, StabilityClass, TEnv, Verdict, Verifier,
    VerifierConfig, VerifyStats,
};
use daenerys_idf::{env_of, ConcreteVal};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A program/environment pair with two bound objects (`a`, `b`) over a
/// single `Int` field `v` and an integer `n` — the concrete frame the
/// shared encoding is relative to.
fn setup() -> (Program, TEnv) {
    let prog = parse_program(
        "field v: Int
         method m(a: Ref, b: Ref, n: Int) requires acc(a.v) ensures acc(a.v) { }",
    )
    .unwrap();
    let mut heap = daenerys_heaplang::Heap::new();
    let oa = alloc_object(&prog, &mut heap, &[1]);
    let ob = alloc_object(&prog, &mut heap, &[2]);
    let env = env_of(&[
        ("a", ConcreteVal::Obj(oa)),
        ("b", ConcreteVal::Obj(ob)),
        ("n", ConcreteVal::Int(3)),
    ]);
    (prog, env)
}

/// Generated assertions stay in the translatable fragment: variable
/// receivers, `old`-free, `perm` only in literal comparisons — so every
/// sample round-trips through `translate_assertion` and the syntactic
/// oracle sees exactly what the classifier saw.
fn arb_assertion() -> impl Strategy<Value = Assertion> {
    let rv = prop_oneof![Just("a"), Just("b")];
    let atom = prop_oneof![
        // Heap-free pure facts.
        (-4i64..=4).prop_map(|k| Assertion::Expr(Expr::bin(Op::Ge, Expr::var("n"), Expr::Int(k)))),
        // Heap reads (covered or not depending on surrounding accs).
        (rv.clone(), -4i64..=4).prop_map(|(v, k)| {
            Assertion::Expr(Expr::bin(
                Op::Eq,
                Expr::field(Expr::var(v), "v"),
                Expr::Int(k),
            ))
        }),
        // Permission predicates.
        rv.clone().prop_map(|v| Assertion::acc(Expr::var(v), "v")),
        // Permission introspection in a literal comparison.
        rv.prop_map(|v| {
            Assertion::Expr(Expr::bin(
                Op::Ge,
                Expr::Perm(Box::new(Expr::var(v)), "v".to_string(), Span::NONE),
                Expr::bin(Op::Div, Expr::Int(1), Expr::Int(2)),
            ))
        }),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Assertion::and(p, q)),
            // Guards: a boolean literal or a heap-free comparison.
            (any::<bool>(), inner.clone())
                .prop_map(|(b, p)| Assertion::Implies(Expr::Bool(b), Box::new(p))),
            ((-4i64..=4), inner).prop_map(|(k, p)| {
                Assertion::Implies(Expr::bin(Op::Lt, Expr::var("n"), Expr::Int(k)), Box::new(p))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two layers cannot drift: on the shared encoding, a `Stable`
    /// classification forces the syntactic oracle to accept and an
    /// `Unstable` one forces it to reject (`FramedStable` makes no
    /// syntactic claim; see `agrees_with_oracle`).
    #[test]
    fn classifier_agrees_with_semantic_oracle(a in arb_assertion()) {
        let (prog, env) = setup();
        prop_assert!(
            agrees_with_oracle(&prog, &env, &a).unwrap(),
            "classifier/oracle drift on {} (class {})",
            a,
            classify(&a).class
        );
    }

    /// The strongest claim checked semantically: classifier-`Stable`
    /// assertions are stable under *every* frame of the bounded
    /// universe, not just syntactically.
    #[test]
    fn stable_classifications_check_semantically(a in arb_assertion()) {
        let (prog, env) = setup();
        if classify(&a).class == StabilityClass::Stable {
            let p = translate_assertion(&prog, &env, &a).unwrap();
            let uni = UniverseSpec::tiny().build();
            prop_assert!(
                check_stable(&p, &uni, 2).is_ok(),
                "classified stable but semantically unstable: {}",
                a
            );
        }
    }
}

fn verdicts_with(src: &str, backend: Backend, config: VerifierConfig) -> BTreeMap<String, Verdict> {
    let p = parse_program(src).unwrap();
    let mut v = Verifier::with_config(&p, backend, config);
    v.verify_all_verdicts()
        .into_iter()
        .map(|(name, verdict)| (name, verdict.normalized()))
        .collect()
}

/// `--deny-unstable` is answer-transparent on stable-only programs: the
/// whole positive corpus classifies (framed-)stable, so flipping the
/// gate must not move a single verdict — on either backend, at any
/// thread count.
#[test]
fn deny_unstable_is_transparent_on_stable_programs() {
    for case in positive_cases() {
        for backend in [Backend::Destabilized, Backend::StableBaseline] {
            for threads in [1usize, 2, 8] {
                let base = VerifierConfig {
                    threads,
                    ..VerifierConfig::default()
                };
                let off = verdicts_with(case.source, backend, base.clone());
                let on = verdicts_with(
                    case.source,
                    backend,
                    VerifierConfig {
                        deny_unstable: true,
                        ..base
                    },
                );
                assert_eq!(
                    off, on,
                    "{}: verdicts moved under --deny-unstable ({:?}, {} threads)",
                    case.name, backend, threads
                );
            }
        }
    }
}

/// `explain_stability` is cost-only: it enriches trace events but never
/// moves a verdict.
#[test]
fn explain_stability_is_answer_transparent() {
    for case in positive_cases() {
        let off = verdicts_with(
            case.source,
            Backend::Destabilized,
            VerifierConfig::default(),
        );
        let on = verdicts_with(
            case.source,
            Backend::Destabilized,
            VerifierConfig {
                explain_stability: true,
                ..VerifierConfig::default()
            },
        );
        assert_eq!(off, on, "{}: verdicts moved under explain", case.name);
    }
}

const SKIPPING: &str = "
    field v: Int
    method bump(c: Ref, n: Int)
      requires acc(c.v) && c.v >= 0 && n >= 0
      ensures acc(c.v) && c.v == old(c.v) + n
    {
      var i: Int := 0;
      while (i < n)
        invariant acc(c.v) && 0 <= i && i <= n && c.v == old(c.v) + i
      {
        c.v := c.v + 1;
        i := i + 1
      }
    }
";

fn stats_at(threads: usize) -> BTreeMap<String, VerifyStats> {
    let p = parse_program(SKIPPING).unwrap();
    let mut v = Verifier::with_config(
        &p,
        Backend::StableBaseline,
        VerifierConfig {
            threads,
            ..VerifierConfig::default()
        },
    );
    v.verify_all()
        .unwrap()
        .into_iter()
        .map(|(name, s)| (name, s.normalized()))
        .collect()
}

/// The skip fast path is deterministic: `stability_skips` is positive
/// on a framed-stable loop program and bit-identical (along with every
/// other normalized counter, cache accounting included) at 1, 2, and 8
/// verification threads.
#[test]
fn stability_skips_are_thread_count_invariant() {
    let one = stats_at(1);
    assert!(
        one["bump"].stability_skips > 0,
        "expected skips on a framed-stable loop: {:?}",
        one["bump"]
    );
    assert_eq!(
        one["bump"].cache_hits + one["bump"].cache_misses,
        one["bump"].solver_queries,
        "cache accounting broken by the skip path"
    );
    for threads in [2usize, 8] {
        assert_eq!(one, stats_at(threads), "drift at {} threads", threads);
    }
}
