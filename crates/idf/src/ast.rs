//! Abstract syntax of the IDF (implicit dynamic frames) language.
//!
//! A deliberately Viper-shaped mini-language: methods with
//! `requires`/`ensures` contracts, object fields accessed through
//! references, accessibility predicates `acc(e.f, q)`, heap-dependent
//! expressions in specifications (`e.f`, `old(e)`, `perm(e.f)`), and
//! the statement forms an automated SL verifier manipulates
//! (`inhale`/`exhale`, loops with invariants, method calls).

use daenerys_algebra::Q;
use std::fmt;

/// Types of the IDF language.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Type {
    /// Mathematical integers.
    Int,
    /// Booleans.
    Bool,
    /// Object references.
    Ref,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "Int"),
            Type::Bool => write!(f, "Bool"),
            Type::Ref => write!(f, "Ref"),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Op {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// A source position: 1-based line and column, with `0:0` meaning
/// "unknown" (synthesized nodes). Spans are *metadata*: they compare
/// equal to every other span, so derived equality on AST nodes ignores
/// positions — two programs that print the same are equal, and
/// fingerprints/round-trip tests are unaffected by where a node came
/// from.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// 1-based line (0 = unknown).
    pub line: u32,
    /// 1-based column (0 = unknown).
    pub col: u32,
}

impl Span {
    /// The unknown position.
    pub const NONE: Span = Span { line: 0, col: 0 };

    /// A known position.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// Whether the span carries a real position.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl PartialEq for Span {
    /// Always true: spans never participate in structural equality.
    fn eq(&self, _other: &Span) -> bool {
        true
    }
}

impl Eq for Span {}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Expressions (program and specification level).
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// The null reference.
    Null,
    /// A local variable or parameter.
    Var(String),
    /// Heap read `e.f` — the heap-dependent expression.
    Field(Box<Expr>, String, Span),
    /// `old(e)`: `e` evaluated in the method's pre-state (spec only).
    Old(Box<Expr>, Span),
    /// `perm(e.f)`: the currently-held permission amount (spec only).
    Perm(Box<Expr>, String, Span),
    /// Binary operation.
    Bin(Op, Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// Integer negation.
    Neg(Box<Expr>),
    /// Conditional expression `e ? e : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Variable shorthand.
    pub fn var(x: &str) -> Expr {
        Expr::Var(x.to_string())
    }

    /// Field access shorthand (unknown span).
    pub fn field(e: Expr, f: &str) -> Expr {
        Expr::Field(Box::new(e), f.to_string(), Span::NONE)
    }

    /// Field access shorthand with a known span.
    pub fn field_at(e: Expr, f: &str, span: Span) -> Expr {
        Expr::Field(Box::new(e), f.to_string(), span)
    }

    /// Binary-op shorthand.
    pub fn bin(op: Op, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Whether the expression reads the heap (directly or under `old`).
    pub fn reads_heap(&self) -> bool {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Null | Expr::Var(_) => false,
            Expr::Field(..) | Expr::Old(..) | Expr::Perm(..) => true,
            Expr::Bin(_, a, b) => a.reads_heap() || b.reads_heap(),
            Expr::Not(a) | Expr::Neg(a) => a.reads_heap(),
            Expr::Cond(c, t, e) => c.reads_heap() || t.reads_heap() || e.reads_heap(),
        }
    }

    /// Number of field reads in the expression — the metric behind the
    /// witness counts of the stable baseline (experiment T1).
    pub fn field_reads(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Null | Expr::Var(_) => 0,
            Expr::Field(e, _, _) => 1 + e.field_reads(),
            Expr::Old(e, _) => e.field_reads(),
            Expr::Perm(e, _, _) => e.field_reads(),
            Expr::Bin(_, a, b) => a.field_reads() + b.field_reads(),
            Expr::Not(a) | Expr::Neg(a) => a.field_reads(),
            Expr::Cond(c, t, e) => c.field_reads() + t.field_reads() + e.field_reads(),
        }
    }
}

/// Recognizes a fraction literal in specification position: `n` or
/// `n/d` with integer literals (used for `acc` amounts and `perm`
/// comparisons).
pub fn fraction_literal(e: &Expr) -> Option<Q> {
    match e {
        Expr::Int(n) => Some(Q::from_int(*n)),
        Expr::Bin(Op::Div, a, b) => match (&**a, &**b) {
            (Expr::Int(n), Expr::Int(d)) if *d != 0 => Some(Q::new(*n as i128, *d as i128)),
            _ => None,
        },
        _ => None,
    }
}

/// Specification assertions.
#[derive(Clone, PartialEq, Debug)]
pub enum Assertion {
    /// A boolean expression (may be heap-dependent).
    Expr(Expr),
    /// Accessibility `acc(e.f, q)`.
    Acc(Expr, String, Q),
    /// IDF conjunction: permissions separate, pure parts conjoin.
    And(Box<Assertion>, Box<Assertion>),
    /// Conditional assertion `e ==> A`.
    Implies(Expr, Box<Assertion>),
}

impl Assertion {
    /// The trivially-true assertion.
    pub fn truth() -> Assertion {
        Assertion::Expr(Expr::Bool(true))
    }

    /// Conjunction shorthand.
    pub fn and(a: Assertion, b: Assertion) -> Assertion {
        Assertion::And(Box::new(a), Box::new(b))
    }

    /// Full-permission accessibility shorthand.
    pub fn acc(e: Expr, f: &str) -> Assertion {
        Assertion::Acc(e, f.to_string(), Q::ONE)
    }

    /// Conjunction of a list of assertions.
    pub fn all(items: impl IntoIterator<Item = Assertion>) -> Assertion {
        let mut it = items.into_iter();
        match it.next() {
            None => Assertion::truth(),
            Some(first) => it.fold(first, Assertion::and),
        }
    }

    /// Number of `acc` conjuncts.
    pub fn acc_count(&self) -> usize {
        match self {
            Assertion::Expr(_) => 0,
            Assertion::Acc(..) => 1,
            Assertion::And(a, b) => a.acc_count() + b.acc_count(),
            Assertion::Implies(_, a) => a.acc_count(),
        }
    }

    /// Canonicalizes the assertion: the parser never produces an
    /// [`Assertion::Expr`] whose top level is a boolean `&&` (it splits
    /// conjunction at the assertion level), so normalization performs
    /// the same split. The printer round-trips canonical assertions.
    pub fn normalize(&self) -> Assertion {
        fn conjuncts(a: &Assertion, out: &mut Vec<Assertion>) {
            match a {
                Assertion::Expr(Expr::Bin(Op::And, x, y)) => {
                    conjuncts(&Assertion::Expr((**x).clone()), out);
                    conjuncts(&Assertion::Expr((**y).clone()), out);
                }
                Assertion::Expr(e) => out.push(Assertion::Expr(e.clone())),
                Assertion::Acc(..) => out.push(a.clone()),
                Assertion::And(x, y) => {
                    conjuncts(x, out);
                    conjuncts(y, out);
                }
                Assertion::Implies(c, b) => {
                    out.push(Assertion::Implies(c.clone(), Box::new(b.normalize())));
                }
            }
        }
        // Flatten, then left-fold — the parser's association.
        let mut items = Vec::new();
        conjuncts(self, &mut items);
        Assertion::all(items)
    }

    /// Number of field reads across all pure parts.
    pub fn field_reads(&self) -> usize {
        match self {
            Assertion::Expr(e) => e.field_reads(),
            Assertion::Acc(e, _, _) => e.field_reads(),
            Assertion::And(a, b) => a.field_reads() + b.field_reads(),
            Assertion::Implies(e, a) => e.field_reads() + a.field_reads(),
        }
    }
}

/// Statements.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `var x: T := e`.
    VarDecl(String, Type, Expr),
    /// `x := e`.
    Assign(String, Expr),
    /// `e.f := e`.
    FieldWrite(Expr, String, Expr),
    /// `x := new(f1: e1, …)` — allocate an object with the given fields.
    New(String, Vec<(String, Expr)>),
    /// `inhale A`.
    Inhale(Assertion),
    /// `exhale A`.
    Exhale(Assertion),
    /// `assert A`.
    Assert(Assertion),
    /// `if (e) { .. } else { .. }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (e) invariant A { .. }`.
    While(Expr, Assertion, Vec<Stmt>),
    /// `targets := m(args)` (empty target list for `call m(args)`).
    Call(Vec<String>, String, Vec<Expr>),
}

/// A method with its contract.
#[derive(Clone, PartialEq, Debug)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, Type)>,
    /// Out-parameters (returned values).
    pub returns: Vec<(String, Type)>,
    /// Precondition.
    pub requires: Assertion,
    /// Postcondition.
    pub ensures: Assertion,
    /// Body (absent for abstract methods).
    pub body: Option<Vec<Stmt>>,
}

/// A full program: field declarations plus methods.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Declared fields with their types.
    pub fields: Vec<(String, Type)>,
    /// Methods in declaration order.
    pub methods: Vec<Method>,
}

impl Program {
    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Looks up a field's type.
    pub fn field_type(&self, name: &str) -> Option<Type> {
        self.fields.iter().find(|(f, _)| f == name).map(|(_, t)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_metrics() {
        // acc(a.val) && a.val >= b.val
        let spec = Assertion::and(
            Assertion::acc(Expr::var("a"), "val"),
            Assertion::Expr(Expr::bin(
                Op::Ge,
                Expr::field(Expr::var("a"), "val"),
                Expr::field(Expr::var("b"), "val"),
            )),
        );
        assert_eq!(spec.acc_count(), 1);
        assert_eq!(spec.field_reads(), 2);
    }

    #[test]
    fn reads_heap_detection() {
        assert!(Expr::field(Expr::var("x"), "f").reads_heap());
        assert!(Expr::Old(Box::new(Expr::var("x")), Span::NONE).reads_heap());
        assert!(!Expr::bin(Op::Add, Expr::var("x"), Expr::Int(1)).reads_heap());
    }

    #[test]
    fn display_round() {
        let e = Expr::bin(Op::Add, Expr::field(Expr::var("a"), "val"), Expr::Int(1));
        assert_eq!(e.to_string(), "a.val + 1");
        let a = Assertion::Acc(Expr::var("a"), "val".into(), Q::HALF);
        assert_eq!(a.to_string(), "acc(a.val, 1/2)");
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            fields: vec![("val".into(), Type::Int)],
            methods: vec![],
        };
        assert_eq!(p.field_type("val"), Some(Type::Int));
        assert_eq!(p.field_type("nope"), None);
        assert!(p.method("m").is_none());
    }
}
