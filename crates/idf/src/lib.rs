//! # `daenerys-idf` — a Viper-style implicit-dynamic-frames verifier
//!
//! The automated-verifier side of the paper's bridge.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod budget;
pub mod cases;
pub mod compile;
pub mod cost;
pub mod depgraph;
pub mod diag;
pub mod exec;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod session;
pub mod smt;
pub mod stability;
pub mod store;
pub mod sym;
pub mod translate;
pub mod wf;

pub use ast::{Assertion, Expr, Method, Op, Program, Span, Stmt, Type};
pub use budget::{Budget, BudgetAxis, Fault, FaultKind, FaultPlan};
pub use cases::{
    all_cases, chain_program, diverging_program, negative_cases, positive_cases, scaling_program,
    Case,
};
pub use compile::{
    alloc_object, compile_method, compile_program, run_and_check, spec_holds, ConcreteError,
    ConcreteObj, ConcreteVal,
};
pub use cost::{estimate_method, estimate_program, MethodCost, PATH_CAP};
pub use depgraph::{DepGraph, DepNode};
pub use diag::{pc_hash, FailureReport, QueryCost, StabilityLint, HOT_QUERY_LIMIT};
pub use exec::{
    Backend, Chunk, Obligation, UnknownReason, Verdict, Verifier, VerifierConfig, VerifyError,
    VerifyStats,
};
pub use fingerprint::{
    config_fingerprint, direct_callees, interface_fingerprint, method_fingerprint,
    normalized_interface, Fingerprint,
};
pub use parser::{
    parse_assertion, parse_program, parse_program_traced, parse_program_with_recovery,
    parse_program_with_recovery_capped, ParseError, DEFAULT_MAX_ERRORS,
};
pub use session::{Session, SessionError, SessionHost, VerifyOutcome, VerifyRequest};
pub use smt::{Answer, Solver, SolverCore};
pub use stability::{
    agrees_with_oracle, analyze_method, analyze_program, classify, Classification, Finding,
    FindingKind, SpecSite, SpecVerdict, StabilityClass,
};
pub use store::{StoreFormat, StoredVerdict, VerdictStore};
pub use sym::{Sort, Sym, SymExpr, SymSupply, Term, TermArena, TermId, Witness};
pub use translate::{
    env_of, full_ownership, obj_of, strip_old, translate_assertion, translate_assertion_traced,
    translate_expr, TEnv, TranslateError,
};
pub use wf::{check_program, check_program_traced, WfError};

/// One-call pipeline: parse → well-formedness check → verify.
///
/// # Errors
///
/// Returns a rendered error string for parse errors, well-formedness
/// diagnoses, or failed proof obligations.
///
/// # Examples
///
/// ```
/// use daenerys_idf::{verify_source, Backend};
///
/// let stats = verify_source(
///     "field v: Int
///      method zero(c: Ref) requires acc(c.v) ensures acc(c.v) && c.v == 0
///      { c.v := 0 }",
///     Backend::Destabilized,
/// )?;
/// assert_eq!(stats.len(), 1);
/// # Ok::<(), String>(())
/// ```
pub fn verify_source(
    src: &str,
    backend: Backend,
) -> Result<std::collections::BTreeMap<String, VerifyStats>, String> {
    let program = parse_program(src).map_err(|e| e.to_string())?;
    check_program(&program).map_err(|es| {
        es.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    let mut verifier = Verifier::new(&program, backend);
    verifier.verify_all().map_err(|e| e.to_string())
}

/// [`verify_source`] with an explicit [`VerifierConfig`]. When the
/// config's [`daenerys_obs::TraceHandle`] is enabled, the front-end
/// phases (`parse`, `wf`) are spanned and emitted ahead of the
/// per-method `exec:<name>` spans the verifier produces.
///
/// # Errors
///
/// Same as [`verify_source`].
pub fn verify_source_with(
    src: &str,
    backend: Backend,
    config: VerifierConfig,
) -> Result<std::collections::BTreeMap<String, VerifyStats>, String> {
    let mut collector = config.trace.collector();
    let program = parse_program_traced(src, &mut collector).map_err(|e| e.to_string())?;
    check_program_traced(&program, &mut collector).map_err(|es| {
        es.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    let (events, metrics) = collector.take();
    config.trace.emit(events);
    config.trace.merge_metrics(&metrics);
    let mut verifier = Verifier::with_config(&program, backend, config);
    verifier.verify_all().map_err(|e| e.to_string())
}
