//! The library-level session API the verification daemon drives.
//!
//! `tables` (the bench CLI) owns a program for one process lifetime;
//! the daemon instead serves many programs from many tenants against
//! one warm process. [`SessionHost`] is that warm core — the base
//! [`VerifierConfig`] and the shared persistent [`VerdictStore`] —
//! and [`Session`] is one client's view of it: a per-session budget
//! envelope layered over the base, a capped recovery parser in front,
//! and every request verified through the host's shared store
//! ([`crate::exec::Verifier::verify_all_verdicts_shared`]) so
//! concurrent sessions reuse each other's definite verdicts without
//! reopening the file.
//!
//! The host is `Sync`: sessions on different threads verify
//! concurrently, serializing only the brief store lookups/appends.

use crate::budget::Budget;
use crate::exec::{Backend, Verdict, Verifier, VerifierConfig, VerifyStats};
use crate::parser::{parse_program_with_recovery_capped, ParseError, DEFAULT_MAX_ERRORS};
use crate::store::VerdictStore;
use std::collections::BTreeMap;
use std::io;
use std::sync::Mutex;

/// Warm, process-wide verification state shared by every [`Session`].
#[derive(Debug)]
pub struct SessionHost {
    backend: Backend,
    base: VerifierConfig,
    store: Option<Mutex<VerdictStore>>,
    /// Undecodable store lines counted at open (see
    /// [`VerdictStore::corrupt_lines`]) — surfaced in the daemon's
    /// metrics snapshot.
    store_corrupt_lines: usize,
}

impl SessionHost {
    /// Builds a host for `backend` over `base`. When
    /// [`VerifierConfig::cache_dir`] is set, the persistent store is
    /// opened once here and shared (warm) across every session; the
    /// per-request config never reopens it.
    pub fn new(backend: Backend, base: VerifierConfig) -> SessionHost {
        let store = base
            .cache_dir
            .as_deref()
            .map(|dir| match base.store_format {
                Some(format) => VerdictStore::open_with(dir, format),
                None => VerdictStore::open(dir),
            });
        let store_corrupt_lines = store.as_ref().map_or(0, VerdictStore::corrupt_lines);
        SessionHost {
            backend,
            base,
            store: store.map(Mutex::new),
            store_corrupt_lines,
        }
    }

    /// The backend every session verifies under.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The warm shared store, when the host persists verdicts.
    pub fn store(&self) -> Option<&Mutex<VerdictStore>> {
        self.store.as_ref()
    }

    /// Undecodable lines skipped when the store was opened (0 without
    /// a store).
    pub fn store_corrupt_lines(&self) -> usize {
        self.store_corrupt_lines
    }

    /// Entries currently in the warm store (0 without a store).
    pub fn store_len(&self) -> usize {
        self.store.as_ref().map_or(0, |m| lock(m).len())
    }

    /// Compacts the store to disk — the graceful-shutdown flush. A
    /// no-op without a store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from [`VerdictStore::save`].
    pub fn flush_store(&self) -> io::Result<()> {
        match &self.store {
            None => Ok(()),
            Some(m) => lock(m).save(),
        }
    }

    /// A session inheriting the host's base budget.
    pub fn session(&self) -> Session<'_> {
        Session {
            host: self,
            budget: self.base.budget,
        }
    }

    /// A session under an explicit budget envelope (the tenant's).
    pub fn session_with_budget(&self, budget: Budget) -> Session<'_> {
        Session { host: self, budget }
    }
}

/// One client's verification context over a [`SessionHost`].
#[derive(Debug)]
pub struct Session<'h> {
    host: &'h SessionHost,
    budget: Budget,
}

/// One verification request's knobs, beyond the program source.
#[derive(Clone, Debug)]
pub struct VerifyRequest {
    /// The IDF program to verify.
    pub source: String,
    /// Overrides the session budget for this request (intersected by
    /// the daemon's admission layer before it gets here).
    pub budget: Option<Budget>,
    /// Diagnostic cap for recovery parsing (see
    /// [`parse_program_with_recovery_capped`]).
    pub max_errors: usize,
    /// Overrides the host's trace handle for this request — the
    /// daemon passes a context-stamped derivation
    /// ([`daenerys_obs::TraceHandle::with_context`]) so every event
    /// carries tenant/session/request attribution.
    pub trace: Option<daenerys_obs::TraceHandle>,
}

impl VerifyRequest {
    /// A request with the default diagnostic cap and no budget
    /// override.
    pub fn new(source: impl Into<String>) -> VerifyRequest {
        VerifyRequest {
            source: source.into(),
            budget: None,
            max_errors: DEFAULT_MAX_ERRORS,
            trace: None,
        }
    }
}

/// The outcome of one verification request.
#[derive(Clone, PartialEq, Debug)]
pub struct VerifyOutcome {
    /// Per-method verdicts, in method-name order.
    pub verdicts: BTreeMap<String, Verdict>,
    /// Methods actually re-verified (not restored from the warm
    /// store); `None` when the host has no store.
    pub reverified: Option<usize>,
    /// Names of the re-verified methods (the dirty cone), in program
    /// order; `None` when the host has no store. Watch-mode front ends
    /// print exactly this set.
    pub reverified_methods: Option<Vec<String>>,
    /// Methods served straight from the warm store (see
    /// [`crate::exec::Verifier::store_hits`]); `None` without a store.
    pub store_hits: Option<usize>,
    /// Methods with no matching store entry (see
    /// [`crate::exec::Verifier::store_misses`]); `None` without a
    /// store.
    pub store_misses: Option<usize>,
    /// Matching entries discarded because a transitive callee's spec
    /// changed (see [`crate::exec::Verifier::store_dirty_transitive`]);
    /// `None` without a store.
    pub store_dirty_transitive: Option<usize>,
    /// Request-wide aggregate of the per-method statistics (only
    /// [`Verdict::Verified`] carries stats, so failed/unknown methods
    /// contribute nothing) — the daemon's telemetry plane attributes
    /// fuel/cache/solver rates per tenant from this without reaching
    /// into individual verdicts.
    pub stats: VerifyStats,
}

/// Why a request produced no verdicts at all.
#[derive(Clone, PartialEq, Debug)]
pub enum SessionError {
    /// The source did not parse; every diagnostic collected (capped at
    /// the request's `max_errors` plus a sentinel).
    Parse(Vec<ParseError>),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Parse(errs) => {
                write!(f, "{} parse error(s); first: {}", errs.len(), errs[0])
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl Session<'_> {
    /// Verifies `source` with the session's budget and default knobs.
    ///
    /// # Errors
    ///
    /// [`SessionError::Parse`] when the source does not parse.
    pub fn verify_source(&self, source: &str) -> Result<VerifyOutcome, SessionError> {
        self.verify(&VerifyRequest::new(source))
    }

    /// Verifies one request: capped recovery parse, then every method
    /// through the host's warm store. Per-method faults degrade that
    /// method's verdict (the `Verifier`'s isolation), never the
    /// session.
    ///
    /// # Errors
    ///
    /// [`SessionError::Parse`] when the source does not parse.
    pub fn verify(&self, req: &VerifyRequest) -> Result<VerifyOutcome, SessionError> {
        let program = parse_program_with_recovery_capped(&req.source, req.max_errors)
            .map_err(SessionError::Parse)?;
        Ok(self.verify_program_with(&program, req.budget, req.trace.clone()))
    }

    /// Verifies an already-parsed program with the session's budget and
    /// default knobs — the parse-free entry point for clients that own
    /// the front end (the `daenerys` CLI re-rendering parse diagnostics
    /// itself, the bench harness keeping parsing out of timed regions).
    ///
    /// Every method still flows through the host's warm store, so
    /// incremental counts ([`VerifyOutcome::reverified`] and friends)
    /// behave exactly as for [`Session::verify`].
    pub fn verify_program(&self, program: &crate::ast::Program) -> VerifyOutcome {
        self.verify_program_with(program, None, None)
    }

    /// [`Session::verify_program`] with an explicit budget override
    /// and/or a request-scoped trace handle (see
    /// [`VerifyRequest::budget`] and [`VerifyRequest::trace`]).
    pub fn verify_program_with(
        &self,
        program: &crate::ast::Program,
        budget: Option<Budget>,
        trace: Option<daenerys_obs::TraceHandle>,
    ) -> VerifyOutcome {
        let config = VerifierConfig {
            budget: budget.unwrap_or(self.budget),
            // The host's store is reached via the shared path below;
            // a per-request open would race the warm copy.
            cache_dir: None,
            trace: trace.unwrap_or_else(|| self.host.base.trace.clone()),
            ..self.host.base.clone()
        };
        let mut verifier = Verifier::with_config(program, self.host.backend, config);
        let verdicts = match self.host.store() {
            Some(store) => verifier.verify_all_verdicts_shared(store),
            None => verifier.verify_all_verdicts(),
        };
        let mut stats = VerifyStats::default();
        for v in verdicts.values() {
            if let Verdict::Verified(s) = v {
                stats.merge(s);
            }
        }
        VerifyOutcome {
            verdicts,
            reverified: verifier.methods_reverified(),
            reverified_methods: verifier.reverified_methods().map(<[String]>::to_vec),
            store_hits: verifier.store_hits(),
            store_misses: verifier.store_misses(),
            store_dirty_transitive: verifier.store_dirty_transitive(),
            stats,
        }
    }
}

fn lock(m: &Mutex<VerdictStore>) -> std::sync::MutexGuard<'_, VerdictStore> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const GOOD: &str = "field val: Int
method set(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1 { c.val := 1 }";

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("daenerys-session-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn storeless_host_verifies() {
        let host = SessionHost::new(Backend::Destabilized, VerifierConfig::default());
        let out = host.session().verify_source(GOOD).unwrap();
        assert_eq!(out.verdicts.len(), 1);
        assert!(out.verdicts["set"].is_verified());
        assert_eq!(out.reverified, None);
        assert!(
            out.stats.obligations > 0,
            "the aggregate carries the verified method's stats"
        );
    }

    #[test]
    fn parse_errors_are_reported_not_panicked() {
        let host = SessionHost::new(Backend::Destabilized, VerifierConfig::default());
        let err = host.session().verify_source("method oops {").unwrap_err();
        let SessionError::Parse(errs) = err;
        assert!(!errs.is_empty());
    }

    #[test]
    fn warm_store_is_shared_across_sessions() {
        let dir = temp_dir("warm");
        let config = VerifierConfig {
            cache_dir: Some(dir.clone()),
            ..VerifierConfig::default()
        };
        let host = SessionHost::new(Backend::Destabilized, config);
        let first = host.session().verify_source(GOOD).unwrap();
        assert_eq!(first.reverified, Some(1), "cold store: everything runs");
        let second = host.session().verify_source(GOOD).unwrap();
        assert_eq!(
            second.reverified,
            Some(0),
            "warm store: the sibling session restores the verdict"
        );
        assert_eq!(first.store_misses, Some(1), "cold run misses everything");
        assert_eq!(second.store_hits, Some(1), "warm run is served from store");
        assert_eq!(second.store_misses, Some(0));
        assert_eq!(second.store_dirty_transitive, Some(0), "nothing was edited");
        assert_eq!(
            first.verdicts["set"].normalized(),
            second.verdicts["set"].normalized(),
            "restored verdicts match modulo environment-dependent stats"
        );
        assert_eq!(host.store_len(), 1);

        // The appends were durable: a fresh host restores without any
        // flush having happened.
        drop(host);
        let host2 = SessionHost::new(
            Backend::Destabilized,
            VerifierConfig {
                cache_dir: Some(dir.clone()),
                ..VerifierConfig::default()
            },
        );
        assert_eq!(host2.store_corrupt_lines(), 0);
        let third = host2.session().verify_source(GOOD).unwrap();
        assert_eq!(third.reverified, Some(0));
        host2.flush_store().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
