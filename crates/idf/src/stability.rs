//! Static stability analysis for IDF specifications.
//!
//! Runs after well-formedness and before translation/verification,
//! classifying every spec assertion (precondition, postcondition, loop
//! invariant) on a three-point lattice:
//!
//! ```text
//! Stable  <  FramedStable  <  Unstable
//! ```
//!
//! * **Stable** — the assertion never reads the heap outside `old(..)`:
//!   no interference can change its truth value, period.
//! * **FramedStable** — every heap read is covered by an `acc(..)`
//!   conjunct *in scope within the same assertion*: the permission
//!   frames the read, so no *other* thread can invalidate it while the
//!   assertion is held. Permission introspection (`perm(..)` atoms)
//!   also lands here: `perm` is stable under interference from frames
//!   the environment cannot shrink, but not under arbitrary
//!   strengthening — it breaks frame *monotonicity*, not stability.
//! * **Unstable** — some heap read has no covering permission in scope;
//!   a concurrent writer could change the value mid-proof. These are
//!   exactly the assertions the paper's destabilized logic admits and a
//!   stable logic must encode away.
//!
//! The classification is a pure AST walk (deterministic, no solver),
//! with per-subterm provenance recorded as [`Finding`]s: which read is
//! uncovered (with a fix hint), which `perm(..)` atom caps the class at
//! framed-stable, which `old(..)` shields the reads beneath it.
//!
//! Two consumers:
//!
//! * [`crate::exec`] skips the stable baseline's witness-invalidation
//!   scans for witnesses minted under non-`Unstable` assertions
//!   (counted as `stability_skips`) and gates `--deny-unstable`;
//! * the cross-validation helpers at the bottom tie this syntactic
//!   layer to the semantic oracle
//!   [`daenerys_core::stability::syntactically_stable`] over the shared
//!   [`crate::translate`] encoding, so the two layers cannot drift.

use crate::ast::{Assertion, Expr, Method, Program, Span, Stmt};
use crate::diag::StabilityLint;
use crate::translate::{translate_assertion, TEnv, TranslateError};
use std::fmt;

/// The three-point stability lattice, ordered `Stable < FramedStable <
/// Unstable`; the class of a compound assertion is the join (max) of
/// its parts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum StabilityClass {
    /// No heap reads outside `old(..)` — interference-free.
    Stable,
    /// Every heap read is covered by an in-scope `acc`, or the
    /// assertion introspects permissions — stable while the frame is
    /// held, but not frame-monotone.
    FramedStable,
    /// Some heap read has no covering permission in scope.
    Unstable,
}

impl fmt::Display for StabilityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StabilityClass::Stable => write!(f, "stable"),
            StabilityClass::FramedStable => write!(f, "framed-stable"),
            StabilityClass::Unstable => write!(f, "unstable"),
        }
    }
}

/// What a [`Finding`] points at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FindingKind {
    /// A heap read with no covering `acc` in scope — the subterm that
    /// makes the assertion unstable.
    UncoveredRead,
    /// A `perm(..)` atom — permission introspection breaks frame
    /// monotonicity, capping the class at framed-stable.
    PermAtom,
    /// An `old(..)` wrapper — pre-state values are fixed, so the reads
    /// beneath it cannot be invalidated.
    OldShield,
}

/// Per-subterm provenance: one noteworthy subterm of a classified
/// assertion, with its source span and (for uncovered reads) a fix
/// hint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// What kind of subterm this is.
    pub kind: FindingKind,
    /// The subterm, pretty-printed (`c.val`, the contents of the
    /// `old(..)`, the location under `perm(..)`).
    pub subject: String,
    /// Source position of the subterm (`Span::NONE` for synthesized
    /// nodes).
    pub span: Span,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_known() {
            write!(f, "at {}: ", self.span)?;
        }
        match self.kind {
            FindingKind::UncoveredRead => write!(
                f,
                "heap read `{s}` has no covering permission in scope; \
                 precede `{s}` with `acc({s}, _)` or wrap it in `old(..)`",
                s = self.subject
            ),
            FindingKind::PermAtom => write!(
                f,
                "`perm({})` introspects permissions, which is not \
                 frame-monotone; the assertion is at best framed-stable",
                self.subject
            ),
            FindingKind::OldShield => write!(
                f,
                "`old({})` shields its heap reads: pre-state values \
                 cannot be invalidated by interference",
                self.subject
            ),
        }
    }
}

/// The result of classifying one assertion: its lattice class plus the
/// provenance findings that produced it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Classification {
    /// Join of the classes of all subterms.
    pub class: StabilityClass,
    /// Per-subterm provenance, in left-to-right source order.
    pub findings: Vec<Finding>,
}

/// The in-scope permission cover: receiver/field pairs of `acc`
/// conjuncts. Matching is structural expression equality (spans never
/// participate in equality, so positions do not matter).
type Cover = Vec<(Expr, String)>;

fn covers(cover: &Cover, recv: &Expr, field: &str) -> bool {
    cover.iter().any(|(r, f)| f == field && r == recv)
}

/// Collects the `acc` conjuncts of an assertion into the cover.
/// Descends through `And` only: an `acc` under `==>` covers reads in
/// its own branch (handled by [`classify_in`]), not its siblings.
fn accs_of(a: &Assertion, out: &mut Cover) {
    match a {
        Assertion::Acc(r, f, _) => out.push((r.clone(), f.clone())),
        Assertion::And(p, q) => {
            accs_of(p, out);
            accs_of(q, out);
        }
        Assertion::Expr(_) | Assertion::Implies(..) => {}
    }
}

/// Classifies a spec assertion against the empty outer cover: the
/// assertion must frame its own reads. See the module docs for the
/// lattice and [`Finding`] for the provenance records.
pub fn classify(a: &Assertion) -> Classification {
    let mut findings = Vec::new();
    let class = classify_in(a, &Vec::new(), &mut findings);
    Classification { class, findings }
}

fn classify_in(a: &Assertion, outer: &Cover, findings: &mut Vec<Finding>) -> StabilityClass {
    match a {
        Assertion::Expr(e) => classify_expr(e, outer, findings),
        // The predicate itself contributes framed-stability (it *is*
        // the frame); its receiver is read to locate the cell and must
        // be covered like any other read.
        Assertion::Acc(recv, _, _) => {
            classify_expr(recv, outer, findings).max(StabilityClass::FramedStable)
        }
        // Conjunction is order-independent: `x.f > 0 && acc(x.f)`
        // frames the read just as well as the flipped form, so both
        // sides see the accs gathered from both sides.
        Assertion::And(p, q) => {
            let mut cover = outer.clone();
            accs_of(p, &mut cover);
            accs_of(q, &mut cover);
            classify_in(p, &cover, findings).max(classify_in(q, &cover, findings))
        }
        // The condition is evaluated before the branch's permissions
        // exist, so it sees only the outer cover; the body additionally
        // frames itself.
        Assertion::Implies(cond, body) => {
            let c = classify_expr(cond, outer, findings);
            let mut cover = outer.clone();
            accs_of(body, &mut cover);
            c.max(classify_in(body, &cover, findings))
        }
    }
}

fn classify_expr(e: &Expr, cover: &Cover, findings: &mut Vec<Finding>) -> StabilityClass {
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Null | Expr::Var(_) => StabilityClass::Stable,
        Expr::Field(recv, f, at) => {
            let inner = classify_expr(recv, cover, findings);
            if covers(cover, recv, f) {
                inner.max(StabilityClass::FramedStable)
            } else {
                findings.push(Finding {
                    kind: FindingKind::UncoveredRead,
                    subject: format!("{}.{}", recv, f),
                    span: *at,
                });
                StabilityClass::Unstable
            }
        }
        // `old(..)` fixes pre-state values: nothing beneath it can be
        // invalidated, whatever it reads.
        Expr::Old(inner, at) => {
            findings.push(Finding {
                kind: FindingKind::OldShield,
                subject: inner.to_string(),
                span: *at,
            });
            StabilityClass::Stable
        }
        Expr::Perm(recv, f, at) => {
            findings.push(Finding {
                kind: FindingKind::PermAtom,
                subject: format!("{}.{}", recv, f),
                span: *at,
            });
            classify_expr(recv, cover, findings).max(StabilityClass::FramedStable)
        }
        Expr::Bin(_, a, b) => {
            classify_expr(a, cover, findings).max(classify_expr(b, cover, findings))
        }
        Expr::Not(a) | Expr::Neg(a) => classify_expr(a, cover, findings),
        Expr::Cond(c, t, e) => classify_expr(c, cover, findings)
            .max(classify_expr(t, cover, findings))
            .max(classify_expr(e, cover, findings)),
    }
}

/// Which spec position an analyzed assertion sits in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpecSite {
    /// A method precondition.
    Requires,
    /// A method postcondition.
    Ensures,
    /// The invariant of the `n`-th loop of the method body (in
    /// source order, counting nested loops).
    Invariant(usize),
}

impl fmt::Display for SpecSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecSite::Requires => write!(f, "precondition"),
            SpecSite::Ensures => write!(f, "postcondition"),
            SpecSite::Invariant(i) => write!(f, "loop invariant #{}", i),
        }
    }
}

/// One classified spec assertion of a method.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecVerdict {
    /// The enclosing method.
    pub method: String,
    /// Where the assertion sits.
    pub site: SpecSite,
    /// Its lattice class.
    pub class: StabilityClass,
    /// Provenance findings (see [`Finding`]).
    pub findings: Vec<Finding>,
}

impl SpecVerdict {
    /// Renders the verdict as a structured diagnostic lint.
    pub fn lint(&self) -> StabilityLint {
        StabilityLint {
            method: self.method.clone(),
            site: self.site.to_string(),
            class: self.class.to_string(),
            findings: self.findings.iter().map(ToString::to_string).collect(),
        }
    }
}

/// Classifies every spec assertion of a method: the precondition, the
/// postcondition, and each loop invariant (including loops nested in
/// `if`/`while` bodies), in source order.
pub fn analyze_method(method: &Method) -> Vec<SpecVerdict> {
    let mut out = Vec::new();
    let push = |site: SpecSite, a: &Assertion, out: &mut Vec<SpecVerdict>| {
        let c = classify(a);
        out.push(SpecVerdict {
            method: method.name.clone(),
            site,
            class: c.class,
            findings: c.findings,
        });
    };
    push(SpecSite::Requires, &method.requires, &mut out);
    push(SpecSite::Ensures, &method.ensures, &mut out);
    let mut loop_ix = 0usize;
    if let Some(body) = &method.body {
        collect_invariants(body, &mut loop_ix, &mut |ix, inv| {
            push(SpecSite::Invariant(ix), inv, &mut out);
        });
    }
    out
}

fn collect_invariants(stmts: &[Stmt], ix: &mut usize, f: &mut impl FnMut(usize, &Assertion)) {
    for s in stmts {
        match s {
            Stmt::While(_, inv, body) => {
                let here = *ix;
                *ix += 1;
                f(here, inv);
                collect_invariants(body, ix, f);
            }
            Stmt::If(_, t, e) => {
                collect_invariants(t, ix, f);
                collect_invariants(e, ix, f);
            }
            _ => {}
        }
    }
}

/// [`analyze_method`] over every method of a program, in declaration
/// order.
pub fn analyze_program(program: &Program) -> Vec<SpecVerdict> {
    program.methods.iter().flat_map(analyze_method).collect()
}

/// Cross-validates the classifier against the semantic oracle on the
/// shared [`crate::translate`] encoding:
///
/// * `Stable` claims no read survives translation, so
///   [`daenerys_core::stability::syntactically_stable`] must accept;
/// * `Unstable` claims an uncovered read survives as a `!ℓ` term, so
///   the oracle must reject;
/// * `FramedStable` makes no *syntactic* claim — the translation of
///   `acc` contains a `wd(!ℓ)` the syntactic oracle rejects, while a
///   pure `perm` comparison translates to introspection it accepts;
///   the semantic side (`check_stable` on the framed strengthening) is
///   exercised in the test suite instead.
///
/// The assertion must be translatable: `old`-free (use
/// [`crate::translate::strip_old`] first) with variable receivers.
/// Uncovered reads then always survive translation in value position,
/// which is what makes the `Unstable` direction sound.
///
/// # Errors
///
/// Propagates [`TranslateError`] for untranslatable assertions.
pub fn agrees_with_oracle(
    prog: &Program,
    env: &TEnv,
    a: &Assertion,
) -> Result<bool, TranslateError> {
    let p = translate_assertion(prog, env, a)?;
    let syn = daenerys_core::stability::syntactically_stable(&p);
    Ok(match classify(a).class {
        StabilityClass::Stable => syn,
        StabilityClass::FramedStable => true,
        StabilityClass::Unstable => !syn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Op;
    use crate::cases::{all_cases, chain_program, diverging_program, scaling_program};
    use crate::compile::{alloc_object, ConcreteVal};
    use crate::parser::{parse_assertion, parse_program};
    use crate::translate::env_of;

    fn classify_src(src: &str) -> Classification {
        classify(&parse_assertion(src).unwrap())
    }

    #[test]
    fn lattice_is_ordered() {
        assert!(StabilityClass::Stable < StabilityClass::FramedStable);
        assert!(StabilityClass::FramedStable < StabilityClass::Unstable);
    }

    #[test]
    fn heap_free_is_stable() {
        let c = classify_src("x > 0 && (b ==> y == x + 1)");
        assert_eq!(c.class, StabilityClass::Stable);
        assert!(c.findings.is_empty());
    }

    #[test]
    fn covered_read_is_framed_stable_both_orders() {
        for src in ["acc(c.val) && c.val > 0", "c.val > 0 && acc(c.val)"] {
            let c = classify_src(src);
            assert_eq!(c.class, StabilityClass::FramedStable, "{}", src);
            assert!(c.findings.is_empty(), "{}", src);
        }
    }

    #[test]
    fn uncovered_read_is_unstable_with_hint() {
        let c = classify_src("acc(c.val) && d.val > 0");
        assert_eq!(c.class, StabilityClass::Unstable);
        assert_eq!(c.findings.len(), 1);
        let f = &c.findings[0];
        assert_eq!(f.kind, FindingKind::UncoveredRead);
        assert_eq!(f.subject, "d.val");
        let msg = f.to_string();
        assert!(msg.contains("acc(d.val, _)"), "{}", msg);
        assert!(msg.contains("old(..)"), "{}", msg);
    }

    #[test]
    fn parsed_spans_reach_findings() {
        // Parse a whole program so the positions are real.
        let prog = parse_program(
            "field val: Int\nmethod m(d: Ref)\n  requires d.val > 0\n  ensures true\n",
        )
        .unwrap();
        let c = classify(&prog.methods[0].requires);
        assert_eq!(c.class, StabilityClass::Unstable);
        assert!(c.findings[0].span.is_known());
        assert!(c.findings[0].to_string().starts_with("at 3:"));
    }

    #[test]
    fn old_shields_reads() {
        let c = classify_src("old(c.val) >= 0");
        assert_eq!(c.class, StabilityClass::Stable);
        assert_eq!(c.findings.len(), 1);
        assert_eq!(c.findings[0].kind, FindingKind::OldShield);
    }

    #[test]
    fn perm_atom_caps_at_framed_stable() {
        let c = classify_src("perm(c.val) >= 1/2");
        assert_eq!(c.class, StabilityClass::FramedStable);
        assert_eq!(c.findings.len(), 1);
        assert_eq!(c.findings[0].kind, FindingKind::PermAtom);
        assert_eq!(c.findings[0].subject, "c.val");
    }

    #[test]
    fn implies_body_frames_itself_but_not_the_condition() {
        // The acc under the implication covers the body's read…
        let c = classify_src("(go ==> (acc(c.val) && c.val == 0))");
        assert_eq!(c.class, StabilityClass::FramedStable);
        // …but not a read in the condition.
        let c = classify_src("(c.val > 0 ==> (acc(c.val) && c.val == 0))");
        assert_eq!(c.class, StabilityClass::Unstable);
        assert!(c
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::UncoveredRead));
    }

    #[test]
    fn nested_receivers_need_their_own_cover() {
        // Both the inner pointer and the pointed-to cell are framed.
        let c = classify_src("acc(x.next) && acc(x.next.val) && x.next.val == 0");
        assert_eq!(c.class, StabilityClass::FramedStable);
        // Without acc(x.next) the receiver read is uncovered — even to
        // locate the acc's own cell.
        let c = classify_src("acc(x.next.val) && x.next.val == 0");
        assert_eq!(c.class, StabilityClass::Unstable);
        assert!(c.findings.iter().any(|f| f.subject == "x.next"));
    }

    #[test]
    fn join_is_max_across_conjuncts() {
        let c = classify_src("acc(c.val) && c.val > 0 && d.val > 0");
        assert_eq!(c.class, StabilityClass::Unstable);
        let uncovered: Vec<_> = c
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::UncoveredRead)
            .collect();
        assert_eq!(uncovered.len(), 1);
        assert_eq!(uncovered[0].subject, "d.val");
    }

    #[test]
    fn analyze_method_walks_nested_invariants() {
        let prog = parse_program(
            "field v: Int
             method m(c: Ref, n: Int)
               requires acc(c.v)
               ensures acc(c.v)
             {
               var i: Int := 0;
               while (i < n) invariant acc(c.v) && i <= n {
                 if (i > 0) {
                   while (false) invariant c.v > 0 { i := i }
                 };
                 i := i + 1
               }
             }",
        )
        .unwrap();
        let vs = analyze_method(&prog.methods[0]);
        assert_eq!(vs.len(), 4);
        assert_eq!(vs[0].site, SpecSite::Requires);
        assert_eq!(vs[1].site, SpecSite::Ensures);
        assert_eq!(vs[2].site, SpecSite::Invariant(0));
        assert_eq!(vs[2].class, StabilityClass::FramedStable);
        assert_eq!(vs[3].site, SpecSite::Invariant(1));
        // The nested invariant reads c.v without framing it.
        assert_eq!(vs[3].class, StabilityClass::Unstable);
        let lint = vs[3].lint().to_string();
        assert!(lint.contains("unstable"), "{}", lint);
        assert!(lint.contains("loop invariant #1"), "{}", lint);
    }

    /// Acceptance criterion: on the verification corpus every framed
    /// assertion classifies as (framed-)stable — zero false positives.
    /// Contracts in this corpus always carry the permissions they read
    /// under, so an `Unstable` verdict would be a classifier bug.
    #[test]
    fn corpus_specs_never_classify_unstable() {
        let mut programs: Vec<(String, Program)> = all_cases()
            .into_iter()
            .map(|c| (c.name.to_string(), c.program()))
            .collect();
        for n in [1, 4, 9] {
            programs.push((format!("scaling_{}", n), scaling(&scaling_program(n))));
            programs.push((format!("chain_{}", n), scaling(&chain_program(n))));
            programs.push((format!("diverging_{}", n), scaling(&diverging_program(n))));
        }
        for (name, prog) in &programs {
            for v in analyze_program(prog) {
                assert_ne!(
                    v.class,
                    StabilityClass::Unstable,
                    "{}: {} of {} classified unstable:\n{}",
                    name,
                    v.site,
                    v.method,
                    v.lint()
                );
            }
        }
    }

    fn scaling(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn oracle_agreement_on_handcrafted_assertions() {
        let prog = parse_program(
            "field val: Int
             method m(c: Ref) requires acc(c.val) ensures acc(c.val) { }",
        )
        .unwrap();
        let mut heap = daenerys_heaplang::Heap::new();
        let obj = alloc_object(&prog, &mut heap, &[7]);
        let env = env_of(&[("c", ConcreteVal::Obj(obj)), ("n", ConcreteVal::Int(3))]);
        for src in [
            "n > 0",                     // stable ⇒ oracle accepts
            "c.val == 7",                // unstable ⇒ oracle rejects
            "acc(c.val) && c.val == 7",  // framed ⇒ no syntactic claim
            "perm(c.val) >= 1/2",        // framed ⇒ no syntactic claim
            "(n > 0 ==> c.val == 7)",    // unstable under a guard
            "acc(c.val, 1/2) && n == 3", // framed, read-free pure part
        ] {
            let a = parse_assertion(src).unwrap();
            assert!(
                agrees_with_oracle(&prog, &env, &a).unwrap(),
                "classifier/oracle drift on {:?} (class {})",
                src,
                classify(&a).class
            );
        }
    }

    #[test]
    fn stable_classification_is_semantically_stable() {
        // `Stable` is the strongest claim: the translated assertion
        // must pass the *semantic* bounded stability check, not just
        // the syntactic oracle.
        use daenerys_core::{check_stable, UniverseSpec};
        let prog = parse_program(
            "field val: Int
             method m(c: Ref) requires acc(c.val) ensures acc(c.val) { }",
        )
        .unwrap();
        let mut heap = daenerys_heaplang::Heap::new();
        let obj = alloc_object(&prog, &mut heap, &[1]);
        let env = env_of(&[("c", ConcreteVal::Obj(obj)), ("n", ConcreteVal::Int(2))]);
        let uni = UniverseSpec::tiny().build();
        for src in ["n > 0", "n == 2 && (true ==> n < 5)", "old(c.val) >= 0"] {
            let a = parse_assertion(src).unwrap();
            assert_eq!(classify(&a).class, StabilityClass::Stable, "{}", src);
            let stripped = crate::translate::strip_old(&prog, &env, &heap, &a).unwrap();
            let p = translate_assertion(&prog, &env, &stripped).unwrap();
            assert!(
                check_stable(&p, &uni, 2).is_ok(),
                "{} not semantically stable",
                src
            );
        }
    }

    #[test]
    fn findings_render_all_three_kinds() {
        let c = classify_src("acc(c.val) && perm(c.val) >= 1/2 && old(d.val) == 0 && e.val > 0");
        assert_eq!(c.class, StabilityClass::Unstable);
        let kinds: Vec<FindingKind> = c.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::PermAtom));
        assert!(kinds.contains(&FindingKind::OldShield));
        assert!(kinds.contains(&FindingKind::UncoveredRead));
        // Binary-op shorthand sanity: the walk visits both sides.
        let c = classify(&Assertion::Expr(Expr::bin(
            Op::And,
            Expr::field(Expr::var("a"), "val"),
            Expr::field(Expr::var("b"), "val"),
        )));
        assert_eq!(
            c.findings
                .iter()
                .filter(|f| f.kind == FindingKind::UncoveredRead)
                .count(),
            2
        );
    }
}
