//! Parser for the IDF surface syntax.
//!
//! ```text
//! program  ::= (field | method)*
//! field    ::= "field" ident ":" type
//! method   ::= "method" ident "(" params ")" ("returns" "(" params ")")?
//!              ("requires" assertion)* ("ensures" assertion)*
//!              ("{" stmts "}")?
//! assertion::= conjunct ("&&" conjunct)*
//! conjunct ::= "acc" "(" expr "." ident ("," frac)? ")"
//!            | expr ("==>" conjunct)?
//! frac     ::= int "/" int | "write" | int
//! stmt     ::= "var" ident ":" type ":=" expr
//!            | ident ":=" "new" "(" (ident ":" expr),* ")"
//!            | ident ":=" expr
//!            | expr "." ident ":=" expr
//!            | "inhale" assertion | "exhale" assertion | "assert" assertion
//!            | "if" "(" expr ")" block ("else" block)?
//!            | "while" "(" expr ")" ("invariant" assertion)* block
//!            | "call" (ident,+ ":=")? ident "(" expr,* ")"
//! ```

use crate::ast::{Assertion, Expr, Method, Op, Program, Span, Stmt, Type};
use crate::lexer::{lex_spanned, Kw, LexError, Sy, Tok};
use daenerys_algebra::Q;
use std::fmt;

/// A parse error, carrying both the token index and the source
/// position (1-based line/column) it was raised at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Token index.
    pub at: usize,
    /// 1-based source line (0 when unknown).
    pub line: usize,
    /// 1-based source column (0 when unknown).
    pub col: usize,
    /// Description.
    pub message: String,
}

impl ParseError {
    /// Wraps a lexer error, resolving its byte position to a
    /// line/column pair against `src`.
    pub fn from_lex(e: LexError, src: &str) -> ParseError {
        let (line, col) = line_col_of_byte(src, e.pos);
        ParseError {
            at: 0,
            line,
            col,
            message: e.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "parse error at {}:{}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(f, "parse error at token {}: {}", self.at, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            at: 0,
            line: 0,
            col: 0,
            message: e.to_string(),
        }
    }
}

/// Resolves a byte offset in `src` to a 1-based (line, column) pair.
fn line_col_of_byte(src: &str, pos: usize) -> (usize, usize) {
    let pos = pos.min(src.len());
    let mut line = 1;
    let mut col = 1;
    for &b in &src.as_bytes()[..pos] {
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// Parses a full IDF program, stopping at the first syntax error.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors. Use
/// [`parse_program_with_recovery`] to collect every diagnostic in one
/// pass instead of stopping at the first.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_program_with_recovery(src).map_err(|mut errs| errs.remove(0))
}

/// [`parse_program`] wrapped in a `parse` span on `collector` — the
/// traced entry point the bench/pipeline layers use for phase
/// attribution.
///
/// # Errors
///
/// Same as [`parse_program`].
pub fn parse_program_traced(
    src: &str,
    collector: &mut daenerys_obs::TraceCollector,
) -> Result<Program, ParseError> {
    let span = collector.span_start("parse");
    let out = parse_program(src);
    collector.span_end(span);
    out
}

/// Parses a full IDF program with error recovery: on a syntax error
/// (including one inside a method body) the parser records a
/// diagnostic, skips to the next top-level `field`/`method`
/// declaration, and keeps going — so one malformed declaration yields
/// one positioned diagnostic instead of hiding everything after it.
///
/// # Errors
///
/// Returns every diagnostic collected, in source order (the list is
/// never empty on `Err`), capped at [`DEFAULT_MAX_ERRORS`] — see
/// [`parse_program_with_recovery_capped`] for a custom cap. A program
/// that parses cleanly is returned whole; the recovered partial
/// program is discarded on error.
pub fn parse_program_with_recovery(src: &str) -> Result<Program, Vec<ParseError>> {
    parse_program_with_recovery_capped(src, DEFAULT_MAX_ERRORS)
}

/// Default diagnostic cap for [`parse_program_with_recovery`]
/// (overridable via [`parse_program_with_recovery_capped`], e.g. the
/// daemon's `--max-errors` flag).
pub const DEFAULT_MAX_ERRORS: usize = 32;

/// [`parse_program_with_recovery`] with an explicit diagnostic cap: a
/// pathological payload stops after `max_errors` real diagnostics plus
/// one sentinel (`"too many syntax errors"`) instead of flooding the
/// response or churning the recovery loop unboundedly. A cap of 0 is
/// treated as 1 — the error list is never empty on `Err`.
///
/// # Errors
///
/// As [`parse_program_with_recovery`], truncated to `max_errors`
/// diagnostics (plus the sentinel when truncation happened).
pub fn parse_program_with_recovery_capped(
    src: &str,
    max_errors: usize,
) -> Result<Program, Vec<ParseError>> {
    let max_errors = max_errors.max(1);
    let mut p = match P::new(src) {
        Ok(p) => p,
        Err(e) => return Err(vec![e]),
    };
    let mut prog = Program::default();
    let mut errors = Vec::new();
    while p.i < p.toks.len() {
        let item = if p.eat_kw(Kw::Field) {
            p.field_rest().map(|f| prog.fields.push(f))
        } else if p.peek_kw(Kw::Method) {
            p.method().map(|m| prog.methods.push(m))
        } else {
            Err(p.err("expected `field` or `method`"))
        };
        if let Err(e) = item {
            errors.push(e);
            if errors.len() >= max_errors {
                // The sentinel marks abandonment, not a token, so its
                // message skips the found-token suffix `err` appends.
                let mut sentinel = p.err("");
                sentinel.message = format!("too many syntax errors; stopping after {}", max_errors);
                errors.push(sentinel);
                break;
            }
            p.recover_to_item();
        }
    }
    if errors.is_empty() {
        Ok(prog)
    } else {
        Err(errors)
    }
}

/// Parses a single assertion (handy for tests and the harness).
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors or trailing input.
pub fn parse_assertion(src: &str) -> Result<Assertion, ParseError> {
    let mut p = P::new(src)?;
    let a = p.assertion()?;
    if p.i != p.toks.len() {
        return Err(p.err("trailing input"));
    }
    Ok(a)
}

struct P {
    toks: Vec<Tok>,
    /// Starting byte offset of each token (parallel to `toks`).
    spans: Vec<usize>,
    i: usize,
    /// Byte offset where each source line starts (index 0 = line 1).
    line_starts: Vec<usize>,
    src_len: usize,
}

impl P {
    fn new(src: &str) -> Result<P, ParseError> {
        let spanned = lex_spanned(src).map_err(|e| ParseError::from_lex(e, src))?;
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let (toks, spans) = spanned.into_iter().unzip();
        Ok(P {
            toks,
            spans,
            i: 0,
            line_starts,
            src_len: src.len(),
        })
    }

    /// The source position of token `tok_idx` (end of input when out
    /// of range) as an AST [`Span`].
    fn span_at(&self, tok_idx: usize) -> Span {
        let pos = self.spans.get(tok_idx).copied().unwrap_or(self.src_len);
        let line = self.line_starts.partition_point(|&s| s <= pos);
        let col = pos - self.line_starts[line - 1] + 1;
        Span::new(line as u32, col as u32)
    }

    fn err(&self, m: impl Into<String>) -> ParseError {
        let pos = self.spans.get(self.i).copied().unwrap_or(self.src_len);
        // The number of line starts at or before `pos` is the 1-based
        // line; the column is the offset into that line.
        let line = self.line_starts.partition_point(|&s| s <= pos);
        let col = pos - self.line_starts[line - 1] + 1;
        ParseError {
            at: self.i,
            line,
            col,
            message: format!("{} (found {:?})", m.into(), self.toks.get(self.i)),
        }
    }

    /// The tail of a `field` declaration (the keyword already eaten).
    fn field_rest(&mut self) -> Result<(String, Type), ParseError> {
        let name = self.ident()?;
        self.expect_sym(Sy::Colon)?;
        let ty = self.ty()?;
        Ok((name, ty))
    }

    /// Error recovery: skip past the offending token, then forward to
    /// the next top-level `field`/`method` keyword (or end of input).
    fn recover_to_item(&mut self) {
        self.i += 1;
        while let Some(t) = self.peek() {
            if matches!(t, Tok::Kw(Kw::Field) | Tok::Kw(Kw::Method)) {
                return;
            }
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.i + 1)
    }

    fn peek_kw(&self, k: Kw) -> bool {
        self.peek() == Some(&Tok::Kw(k))
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.peek_kw(k) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, s: Sy) -> bool {
        if self.peek() == Some(&Tok::Sym(s)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sy) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", s)))
        }
    }

    fn expect_kw(&mut self, k: Kw) -> Result<(), ParseError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", k)))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.i += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        if self.eat_kw(Kw::TyInt) {
            Ok(Type::Int)
        } else if self.eat_kw(Kw::TyBool) {
            Ok(Type::Bool)
        } else if self.eat_kw(Kw::TyRef) {
            Ok(Type::Ref)
        } else {
            Err(self.err("expected a type"))
        }
    }

    fn params(&mut self) -> Result<Vec<(String, Type)>, ParseError> {
        self.expect_sym(Sy::LParen)?;
        let mut out = Vec::new();
        if !self.eat_sym(Sy::RParen) {
            loop {
                let name = self.ident()?;
                self.expect_sym(Sy::Colon)?;
                let ty = self.ty()?;
                out.push((name, ty));
                if self.eat_sym(Sy::RParen) {
                    break;
                }
                self.expect_sym(Sy::Comma)?;
            }
        }
        Ok(out)
    }

    fn method(&mut self) -> Result<Method, ParseError> {
        self.expect_kw(Kw::Method)?;
        let name = self.ident()?;
        let params = self.params()?;
        let returns = if self.eat_kw(Kw::Returns) {
            self.params()?
        } else {
            Vec::new()
        };
        let mut requires = Vec::new();
        let mut ensures = Vec::new();
        loop {
            if self.eat_kw(Kw::Requires) {
                requires.push(self.assertion()?);
            } else if self.eat_kw(Kw::Ensures) {
                ensures.push(self.assertion()?);
            } else {
                break;
            }
        }
        let body = if self.eat_sym(Sy::LBrace) {
            Some(self.stmts_until_rbrace()?)
        } else {
            None
        };
        Ok(Method {
            name,
            params,
            returns,
            requires: Assertion::all(requires),
            ensures: Assertion::all(ensures),
            body,
        })
    }

    fn stmts_until_rbrace(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.eat_sym(Sy::RBrace) {
                return Ok(out);
            }
            out.push(self.stmt()?);
            // Optional semicolons between statements.
            while self.eat_sym(Sy::Semi) {}
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_sym(Sy::LBrace)?;
        self.stmts_until_rbrace()
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw(Kw::Var) {
            let x = self.ident()?;
            self.expect_sym(Sy::Colon)?;
            let ty = self.ty()?;
            self.expect_sym(Sy::Assign)?;
            let e = self.expr()?;
            return Ok(Stmt::VarDecl(x, ty, e));
        }
        if self.eat_kw(Kw::Inhale) {
            return Ok(Stmt::Inhale(self.assertion()?));
        }
        if self.eat_kw(Kw::Exhale) {
            return Ok(Stmt::Exhale(self.assertion()?));
        }
        if self.eat_kw(Kw::Assert) {
            return Ok(Stmt::Assert(self.assertion()?));
        }
        if self.eat_kw(Kw::If) {
            self.expect_sym(Sy::LParen)?;
            let c = self.expr()?;
            self.expect_sym(Sy::RParen)?;
            let then = self.block()?;
            let els = if self.eat_kw(Kw::Else) {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(c, then, els));
        }
        if self.eat_kw(Kw::While) {
            self.expect_sym(Sy::LParen)?;
            let c = self.expr()?;
            self.expect_sym(Sy::RParen)?;
            let mut invs = Vec::new();
            while self.eat_kw(Kw::Invariant) {
                invs.push(self.assertion()?);
            }
            let body = self.block()?;
            return Ok(Stmt::While(c, Assertion::all(invs), body));
        }
        if self.eat_kw(Kw::Call) {
            // call [targets :=] m(args)
            let first = self.ident()?;
            if self.peek() == Some(&Tok::Sym(Sy::LParen)) {
                let args = self.call_args()?;
                return Ok(Stmt::Call(Vec::new(), first, args));
            }
            let mut targets = vec![first];
            while self.eat_sym(Sy::Comma) {
                targets.push(self.ident()?);
            }
            self.expect_sym(Sy::Assign)?;
            let m = self.ident()?;
            let args = self.call_args()?;
            return Ok(Stmt::Call(targets, m, args));
        }
        // Assignment forms: `x := ...` or `e.f := e`.
        if let (Some(Tok::Ident(x)), Some(Tok::Sym(Sy::Assign))) = (self.peek(), self.peek2()) {
            let x = x.clone();
            self.i += 2;
            if self.eat_kw(Kw::New) {
                self.expect_sym(Sy::LParen)?;
                let mut fields = Vec::new();
                if !self.eat_sym(Sy::RParen) {
                    loop {
                        let f = self.ident()?;
                        self.expect_sym(Sy::Colon)?;
                        let e = self.expr()?;
                        fields.push((f, e));
                        if self.eat_sym(Sy::RParen) {
                            break;
                        }
                        self.expect_sym(Sy::Comma)?;
                    }
                }
                return Ok(Stmt::New(x, fields));
            }
            let e = self.expr()?;
            return Ok(Stmt::Assign(x, e));
        }
        // Field write: expr.f := e.
        let lhs = self.expr()?;
        match lhs {
            Expr::Field(recv, f, _) => {
                self.expect_sym(Sy::Assign)?;
                let rhs = self.expr()?;
                Ok(Stmt::FieldWrite(*recv, f, rhs))
            }
            _ => Err(self.err("expected a statement")),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_sym(Sy::LParen)?;
        let mut args = Vec::new();
        if !self.eat_sym(Sy::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat_sym(Sy::RParen) {
                    break;
                }
                self.expect_sym(Sy::Comma)?;
            }
        }
        Ok(args)
    }

    // ---- assertions ----

    fn assertion(&mut self) -> Result<Assertion, ParseError> {
        let mut acc = self.conjunct()?;
        while self.eat_sym(Sy::AndAnd) {
            let rhs = self.conjunct()?;
            acc = Assertion::and(acc, rhs);
        }
        Ok(acc)
    }

    fn conjunct(&mut self) -> Result<Assertion, ParseError> {
        if self.eat_kw(Kw::Acc) {
            self.expect_sym(Sy::LParen)?;
            let recv = self.expr()?;
            let (recv, field) = match recv {
                Expr::Field(r, f, _) => (*r, f),
                _ => return Err(self.err("acc expects a field location e.f")),
            };
            let q = if self.eat_sym(Sy::Comma) {
                self.fraction()?
            } else {
                Q::ONE
            };
            self.expect_sym(Sy::RParen)?;
            return Ok(Assertion::Acc(recv, field, q));
        }
        // A parenthesized *assertion* (e.g. `(e ==> acc(x.f))`): try it
        // with backtracking; fall through to expression parsing when the
        // parenthesis turns out to enclose a plain expression.
        if self.peek() == Some(&Tok::Sym(Sy::LParen)) {
            let save = self.i;
            self.i += 1;
            if let Ok(a) = self.assertion() {
                // Accept the parenthesized-assertion reading only when
                // it produced genuine assertion structure AND the next
                // token cannot continue an *expression* (otherwise e.g.
                // `(x && y) ==> A` would lose its implication).
                if self.eat_sym(Sy::RParen)
                    && !matches!(a, Assertion::Expr(_))
                    && self.ends_assertion()
                {
                    return Ok(a);
                }
            }
            self.i = save;
        }
        // expr, possibly `expr ==> conjunct`.
        let e = self.expr_no_and()?;
        if self.eat_sym(Sy::Implies) {
            let rhs = self.conjunct()?;
            return Ok(Assertion::Implies(e, Box::new(rhs)));
        }
        Ok(Assertion::Expr(e))
    }

    /// Whether the current token can follow a complete assertion (used
    /// to disambiguate parenthesized assertions from expressions).
    fn ends_assertion(&self) -> bool {
        matches!(
            self.peek(),
            None | Some(Tok::Sym(Sy::AndAnd))
                | Some(Tok::Sym(Sy::RParen))
                | Some(Tok::Sym(Sy::RBrace))
                | Some(Tok::Sym(Sy::Semi))
                | Some(Tok::Sym(Sy::LBrace))
                | Some(Tok::Kw(Kw::Requires))
                | Some(Tok::Kw(Kw::Ensures))
                | Some(Tok::Kw(Kw::Invariant))
                | Some(Tok::Kw(Kw::Method))
                | Some(Tok::Kw(Kw::Field))
        )
    }

    fn fraction(&mut self) -> Result<Q, ParseError> {
        if self.eat_kw(Kw::Write) {
            return Ok(Q::ONE);
        }
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.i += 1;
                if self.eat_sym(Sy::Slash) {
                    match self.peek().cloned() {
                        Some(Tok::Int(d)) if d != 0 => {
                            self.i += 1;
                            Ok(Q::new(n as i128, d as i128))
                        }
                        _ => Err(self.err("expected nonzero denominator")),
                    }
                } else {
                    Ok(Q::from_int(n))
                }
            }
            _ => Err(self.err("expected a fraction")),
        }
    }

    // ---- expressions ----
    // cond > or > and > cmp > add > mul > unary > postfix > atom

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let c = self.expr_or(true)?;
        if self.eat_sym(Sy::Question) {
            let t = self.expr()?;
            self.expect_sym(Sy::Colon)?;
            let e = self.expr()?;
            return Ok(Expr::Cond(Box::new(c), Box::new(t), Box::new(e)));
        }
        Ok(c)
    }

    /// Expression that stops at assertion-level `&&` (used inside
    /// assertion conjuncts so `A && B` splits at the assertion level).
    fn expr_no_and(&mut self) -> Result<Expr, ParseError> {
        let c = self.expr_or(false)?;
        if self.eat_sym(Sy::Question) {
            let t = self.expr()?;
            self.expect_sym(Sy::Colon)?;
            let e = self.expr()?;
            return Ok(Expr::Cond(Box::new(c), Box::new(t), Box::new(e)));
        }
        Ok(c)
    }

    fn expr_or(&mut self, allow_and: bool) -> Result<Expr, ParseError> {
        let mut e = self.expr_and(allow_and)?;
        while self.eat_sym(Sy::OrOr) {
            let rhs = self.expr_and(allow_and)?;
            e = Expr::bin(Op::Or, e, rhs);
        }
        Ok(e)
    }

    fn expr_and(&mut self, allow_and: bool) -> Result<Expr, ParseError> {
        let mut e = self.expr_cmp()?;
        while allow_and && self.eat_sym(Sy::AndAnd) {
            let rhs = self.expr_cmp()?;
            e = Expr::bin(Op::And, e, rhs);
        }
        Ok(e)
    }

    fn expr_cmp(&mut self) -> Result<Expr, ParseError> {
        let e = self.expr_add()?;
        let op = match self.peek() {
            Some(Tok::Sym(Sy::EqEq)) => Some(Op::Eq),
            Some(Tok::Sym(Sy::Ne)) => Some(Op::Ne),
            Some(Tok::Sym(Sy::Lt)) => Some(Op::Lt),
            Some(Tok::Sym(Sy::Le)) => Some(Op::Le),
            Some(Tok::Sym(Sy::Gt)) => Some(Op::Gt),
            Some(Tok::Sym(Sy::Ge)) => Some(Op::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.i += 1;
            let rhs = self.expr_add()?;
            return Ok(Expr::bin(op, e, rhs));
        }
        Ok(e)
    }

    fn expr_add(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_mul()?;
        loop {
            if self.eat_sym(Sy::Plus) {
                let rhs = self.expr_mul()?;
                e = Expr::bin(Op::Add, e, rhs);
            } else if self.eat_sym(Sy::Minus) {
                let rhs = self.expr_mul()?;
                e = Expr::bin(Op::Sub, e, rhs);
            } else {
                return Ok(e);
            }
        }
    }

    fn expr_mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_unary()?;
        loop {
            if self.eat_sym(Sy::Star) {
                let rhs = self.expr_unary()?;
                e = Expr::bin(Op::Mul, e, rhs);
            } else if self.eat_sym(Sy::Slash) {
                let rhs = self.expr_unary()?;
                e = Expr::bin(Op::Div, e, rhs);
            } else {
                return Ok(e);
            }
        }
    }

    fn expr_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym(Sy::Bang) {
            return Ok(Expr::Not(Box::new(self.expr_unary()?)));
        }
        if self.eat_sym(Sy::Minus) {
            // Fold unary minus on integer literals so negative constants
            // round-trip through the printer.
            if let Some(Tok::Int(n)) = self.peek() {
                let n = *n;
                self.i += 1;
                return Ok(Expr::Int(n.wrapping_neg()));
            }
            return Ok(Expr::Neg(Box::new(self.expr_unary()?)));
        }
        self.expr_postfix()
    }

    fn expr_postfix(&mut self) -> Result<Expr, ParseError> {
        // Anchor field-read spans at the start of the receiver, so a
        // diagnostic about `x.f` points at the `x`.
        let start = self.i;
        let mut e = self.atom()?;
        while self.eat_sym(Sy::Dot) {
            let f = self.ident()?;
            e = Expr::field_at(e, &f, self.span_at(start));
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.i += 1;
                Ok(Expr::Int(n))
            }
            Some(Tok::Kw(Kw::True)) => {
                self.i += 1;
                Ok(Expr::Bool(true))
            }
            Some(Tok::Kw(Kw::False)) => {
                self.i += 1;
                Ok(Expr::Bool(false))
            }
            Some(Tok::Kw(Kw::Null)) => {
                self.i += 1;
                Ok(Expr::Null)
            }
            Some(Tok::Kw(Kw::Old)) => {
                let at = self.span_at(self.i);
                self.i += 1;
                self.expect_sym(Sy::LParen)?;
                let e = self.expr()?;
                self.expect_sym(Sy::RParen)?;
                Ok(Expr::Old(Box::new(e), at))
            }
            Some(Tok::Kw(Kw::Perm)) => {
                let at = self.span_at(self.i);
                self.i += 1;
                self.expect_sym(Sy::LParen)?;
                let e = self.expr()?;
                self.expect_sym(Sy::RParen)?;
                match e {
                    Expr::Field(r, f, _) => Ok(Expr::Perm(r, f, at)),
                    _ => Err(self.err("perm expects a field location e.f")),
                }
            }
            Some(Tok::Ident(x)) => {
                self.i += 1;
                Ok(Expr::Var(x))
            }
            Some(Tok::Sym(Sy::LParen)) => {
                self.i += 1;
                let e = self.expr()?;
                self.expect_sym(Sy::RParen)?;
                Ok(e)
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_method() {
        let src = r#"
            field val: Int
            method transfer(a: Ref, b: Ref, amt: Int)
              requires acc(a.val) && acc(b.val) && a.val >= amt && amt >= 0
              ensures acc(a.val) && acc(b.val)
              ensures a.val == old(a.val) - amt && b.val == old(b.val) + amt
            {
              a.val := a.val - amt;
              b.val := b.val + amt
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.fields, vec![("val".to_string(), Type::Int)]);
        let m = p.method("transfer").unwrap();
        assert_eq!(m.params.len(), 3);
        assert_eq!(m.requires.acc_count(), 2);
        assert_eq!(m.body.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn parses_fractions_and_perm() {
        let a = parse_assertion("acc(x.f, 1/2) && perm(x.f) >= 1/2").unwrap();
        assert_eq!(a.acc_count(), 1);
        let a = parse_assertion("acc(x.f, write)").unwrap();
        match a {
            Assertion::Acc(_, _, q) => assert_eq!(q, Q::ONE),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_statements() {
        let src = r#"
            field f: Int
            method m(x: Ref) returns (r: Int)
            {
              var t: Int := x.f + 1;
              if (t > 0) { x.f := t } else { x.f := 0 - t };
              while (t < 10) invariant acc(x.f) { t := t + 1 };
              r := t;
              inhale acc(x.f, 1/2);
              exhale acc(x.f, 1/2);
              assert x.f == x.f;
              call m2(x);
              call r := m3(x, t)
            }
            method m2(y: Ref)
            method m3(y: Ref, n: Int) returns (out: Int)
        "#;
        let p = parse_program(src).unwrap();
        let m = p.method("m").unwrap();
        let body = m.body.as_ref().unwrap();
        assert_eq!(body.len(), 9);
        assert!(matches!(body[1], Stmt::If(..)));
        assert!(matches!(body[2], Stmt::While(..)));
        assert!(matches!(body[8], Stmt::Call(ref t, _, _) if t.len() == 1));
        assert!(p.method("m2").unwrap().body.is_none());
    }

    #[test]
    fn parses_new_and_implication() {
        let src = r#"
            field v: Int
            method m() returns (x: Ref)
              ensures acc(x.v) && (x.v > 0 ==> x.v >= 1)
            {
              x := new(v: 5)
            }
        "#;
        let p = parse_program(src).unwrap();
        let m = p.method("m").unwrap();
        assert!(matches!(m.body.as_ref().unwrap()[0], Stmt::New(..)));
    }

    #[test]
    fn conditional_expression() {
        let src = "field f: Int method m(x: Int) returns (r: Int) { r := x > 0 ? x : 0 - x }";
        let p = parse_program(src).unwrap();
        let m = p.method("m").unwrap();
        assert!(matches!(
            m.body.as_ref().unwrap()[0],
            Stmt::Assign(_, Expr::Cond(..))
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("method m( {").is_err());
        assert!(parse_program("field x").is_err());
        assert!(parse_assertion("acc(x)").is_err());
        assert!(parse_assertion("1 +").is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let src = "field val: Int\nmethod m(c: Ref) {\n  c.val := := 1\n}";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.line, 3, "error is on the third line: {}", err);
        assert!(err.col > 1, "column points into the line: {}", err);
        assert!(err.to_string().contains("parse error at 3:"));
    }

    #[test]
    fn lex_errors_carry_line_and_column_too() {
        let err = parse_program("field val: Int\nmethod m() { § }").unwrap_err();
        assert_eq!(err.line, 2, "lex error is on the second line: {}", err);
        assert!(err.to_string().contains("parse error at 2:"));
    }

    #[test]
    fn recovery_reports_multiple_diagnostics() {
        // Two broken method bodies and one good method: recovery skips
        // to the next top-level declaration after each error, so both
        // errors are reported and the good method still parses alone.
        let src = "field val: Int
method bad1(c: Ref) { c.val := := 1 }
method good(c: Ref) requires acc(c.val) ensures acc(c.val) { c.val := 0 }
method bad2(c: Ref) { assert }";
        let errs = parse_program_with_recovery(src).unwrap_err();
        assert_eq!(errs.len(), 2, "got: {:?}", errs);
        assert_eq!(errs[0].line, 2);
        assert_eq!(errs[1].line, 4);
        // The eager entry point keeps its first-error behavior.
        let first = parse_program(src).unwrap_err();
        assert_eq!(first, errs[0]);
    }

    #[test]
    fn recovery_returns_the_surviving_declarations() {
        let src = "field val: Int
method bad(c: Ref) { c.val := := 1 }
method good(c: Ref) requires acc(c.val) ensures acc(c.val) { c.val := 0 }";
        // A caller that tolerates diagnostics can still see the good
        // method by re-parsing without the bad one; the recovery API
        // itself reports errors rather than a partial AST.
        assert!(parse_program_with_recovery(src).is_err());
        let good_only = "field val: Int
method good(c: Ref) requires acc(c.val) ensures acc(c.val) { c.val := 0 }";
        let p = parse_program_with_recovery(good_only).unwrap();
        assert!(p.method("good").is_some());
    }

    #[test]
    fn recovery_survives_error_in_last_declaration() {
        let errs = parse_program_with_recovery("field val: Int\nmethod m(c: Ref) {").unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].line >= 1);
    }

    #[test]
    fn recovery_caps_pathological_diagnostic_floods() {
        // 100 broken declarations: the default cap stops after 32 real
        // diagnostics plus one sentinel instead of reporting all 100.
        let src = "method bad(c: Ref) { assert }\n".repeat(100);
        let errs = parse_program_with_recovery(&src).unwrap_err();
        assert_eq!(errs.len(), DEFAULT_MAX_ERRORS + 1, "got: {:?}", errs.len());
        assert!(errs[DEFAULT_MAX_ERRORS]
            .message
            .contains("too many syntax errors; stopping after 32"));

        let errs = parse_program_with_recovery_capped(&src, 5).unwrap_err();
        assert_eq!(errs.len(), 6);
        assert!(errs[5].message.contains("stopping after 5"));

        // A cap of 0 still reports the first error (list never empty).
        let errs = parse_program_with_recovery_capped(&src, 0).unwrap_err();
        assert_eq!(errs.len(), 2, "one real diagnostic plus the sentinel");
    }

    #[test]
    fn recovery_under_the_cap_is_unchanged() {
        let src = "method bad(c: Ref) { assert }\nmethod bad2(c: Ref) { assert }";
        let errs = parse_program_with_recovery_capped(src, 32).unwrap_err();
        assert_eq!(errs.len(), 2, "no sentinel when the cap is not hit");
    }
}
