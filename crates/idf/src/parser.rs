//! Parser for the IDF surface syntax.
//!
//! ```text
//! program  ::= (field | method)*
//! field    ::= "field" ident ":" type
//! method   ::= "method" ident "(" params ")" ("returns" "(" params ")")?
//!              ("requires" assertion)* ("ensures" assertion)*
//!              ("{" stmts "}")?
//! assertion::= conjunct ("&&" conjunct)*
//! conjunct ::= "acc" "(" expr "." ident ("," frac)? ")"
//!            | expr ("==>" conjunct)?
//! frac     ::= int "/" int | "write" | int
//! stmt     ::= "var" ident ":" type ":=" expr
//!            | ident ":=" "new" "(" (ident ":" expr),* ")"
//!            | ident ":=" expr
//!            | expr "." ident ":=" expr
//!            | "inhale" assertion | "exhale" assertion | "assert" assertion
//!            | "if" "(" expr ")" block ("else" block)?
//!            | "while" "(" expr ")" ("invariant" assertion)* block
//!            | "call" (ident,+ ":=")? ident "(" expr,* ")"
//! ```

use crate::ast::{Assertion, Expr, Method, Op, Program, Stmt, Type};
use crate::lexer::{lex, Kw, LexError, Sy, Tok};
use daenerys_algebra::Q;
use std::fmt;

/// A parse error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Token index.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            at: 0,
            message: e.to_string(),
        }
    }
}

/// Parses a full IDF program.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = P { toks: tokens, i: 0 };
    let mut prog = Program::default();
    while p.i < p.toks.len() {
        if p.eat_kw(Kw::Field) {
            let name = p.ident()?;
            p.expect_sym(Sy::Colon)?;
            let ty = p.ty()?;
            prog.fields.push((name, ty));
        } else if p.peek_kw(Kw::Method) {
            prog.methods.push(p.method()?);
        } else {
            return Err(p.err("expected `field` or `method`"));
        }
    }
    Ok(prog)
}

/// Parses a single assertion (handy for tests and the harness).
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors or trailing input.
pub fn parse_assertion(src: &str) -> Result<Assertion, ParseError> {
    let tokens = lex(src)?;
    let mut p = P { toks: tokens, i: 0 };
    let a = p.assertion()?;
    if p.i != p.toks.len() {
        return Err(p.err("trailing input"));
    }
    Ok(a)
}

struct P {
    toks: Vec<Tok>,
    i: usize,
}

impl P {
    fn err(&self, m: impl Into<String>) -> ParseError {
        ParseError {
            at: self.i,
            message: format!("{} (found {:?})", m.into(), self.toks.get(self.i)),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.i + 1)
    }

    fn peek_kw(&self, k: Kw) -> bool {
        self.peek() == Some(&Tok::Kw(k))
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.peek_kw(k) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, s: Sy) -> bool {
        if self.peek() == Some(&Tok::Sym(s)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Sy) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", s)))
        }
    }

    fn expect_kw(&mut self, k: Kw) -> Result<(), ParseError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", k)))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.i += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        if self.eat_kw(Kw::TyInt) {
            Ok(Type::Int)
        } else if self.eat_kw(Kw::TyBool) {
            Ok(Type::Bool)
        } else if self.eat_kw(Kw::TyRef) {
            Ok(Type::Ref)
        } else {
            Err(self.err("expected a type"))
        }
    }

    fn params(&mut self) -> Result<Vec<(String, Type)>, ParseError> {
        self.expect_sym(Sy::LParen)?;
        let mut out = Vec::new();
        if !self.eat_sym(Sy::RParen) {
            loop {
                let name = self.ident()?;
                self.expect_sym(Sy::Colon)?;
                let ty = self.ty()?;
                out.push((name, ty));
                if self.eat_sym(Sy::RParen) {
                    break;
                }
                self.expect_sym(Sy::Comma)?;
            }
        }
        Ok(out)
    }

    fn method(&mut self) -> Result<Method, ParseError> {
        self.expect_kw(Kw::Method)?;
        let name = self.ident()?;
        let params = self.params()?;
        let returns = if self.eat_kw(Kw::Returns) {
            self.params()?
        } else {
            Vec::new()
        };
        let mut requires = Vec::new();
        let mut ensures = Vec::new();
        loop {
            if self.eat_kw(Kw::Requires) {
                requires.push(self.assertion()?);
            } else if self.eat_kw(Kw::Ensures) {
                ensures.push(self.assertion()?);
            } else {
                break;
            }
        }
        let body = if self.eat_sym(Sy::LBrace) {
            Some(self.stmts_until_rbrace()?)
        } else {
            None
        };
        Ok(Method {
            name,
            params,
            returns,
            requires: Assertion::all(requires),
            ensures: Assertion::all(ensures),
            body,
        })
    }

    fn stmts_until_rbrace(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.eat_sym(Sy::RBrace) {
                return Ok(out);
            }
            out.push(self.stmt()?);
            // Optional semicolons between statements.
            while self.eat_sym(Sy::Semi) {}
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_sym(Sy::LBrace)?;
        self.stmts_until_rbrace()
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw(Kw::Var) {
            let x = self.ident()?;
            self.expect_sym(Sy::Colon)?;
            let ty = self.ty()?;
            self.expect_sym(Sy::Assign)?;
            let e = self.expr()?;
            return Ok(Stmt::VarDecl(x, ty, e));
        }
        if self.eat_kw(Kw::Inhale) {
            return Ok(Stmt::Inhale(self.assertion()?));
        }
        if self.eat_kw(Kw::Exhale) {
            return Ok(Stmt::Exhale(self.assertion()?));
        }
        if self.eat_kw(Kw::Assert) {
            return Ok(Stmt::Assert(self.assertion()?));
        }
        if self.eat_kw(Kw::If) {
            self.expect_sym(Sy::LParen)?;
            let c = self.expr()?;
            self.expect_sym(Sy::RParen)?;
            let then = self.block()?;
            let els = if self.eat_kw(Kw::Else) {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(c, then, els));
        }
        if self.eat_kw(Kw::While) {
            self.expect_sym(Sy::LParen)?;
            let c = self.expr()?;
            self.expect_sym(Sy::RParen)?;
            let mut invs = Vec::new();
            while self.eat_kw(Kw::Invariant) {
                invs.push(self.assertion()?);
            }
            let body = self.block()?;
            return Ok(Stmt::While(c, Assertion::all(invs), body));
        }
        if self.eat_kw(Kw::Call) {
            // call [targets :=] m(args)
            let first = self.ident()?;
            if self.peek() == Some(&Tok::Sym(Sy::LParen)) {
                let args = self.call_args()?;
                return Ok(Stmt::Call(Vec::new(), first, args));
            }
            let mut targets = vec![first];
            while self.eat_sym(Sy::Comma) {
                targets.push(self.ident()?);
            }
            self.expect_sym(Sy::Assign)?;
            let m = self.ident()?;
            let args = self.call_args()?;
            return Ok(Stmt::Call(targets, m, args));
        }
        // Assignment forms: `x := ...` or `e.f := e`.
        if let (Some(Tok::Ident(x)), Some(Tok::Sym(Sy::Assign))) = (self.peek(), self.peek2()) {
            let x = x.clone();
            self.i += 2;
            if self.eat_kw(Kw::New) {
                self.expect_sym(Sy::LParen)?;
                let mut fields = Vec::new();
                if !self.eat_sym(Sy::RParen) {
                    loop {
                        let f = self.ident()?;
                        self.expect_sym(Sy::Colon)?;
                        let e = self.expr()?;
                        fields.push((f, e));
                        if self.eat_sym(Sy::RParen) {
                            break;
                        }
                        self.expect_sym(Sy::Comma)?;
                    }
                }
                return Ok(Stmt::New(x, fields));
            }
            let e = self.expr()?;
            return Ok(Stmt::Assign(x, e));
        }
        // Field write: expr.f := e.
        let lhs = self.expr()?;
        match lhs {
            Expr::Field(recv, f) => {
                self.expect_sym(Sy::Assign)?;
                let rhs = self.expr()?;
                Ok(Stmt::FieldWrite(*recv, f, rhs))
            }
            _ => Err(self.err("expected a statement")),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_sym(Sy::LParen)?;
        let mut args = Vec::new();
        if !self.eat_sym(Sy::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat_sym(Sy::RParen) {
                    break;
                }
                self.expect_sym(Sy::Comma)?;
            }
        }
        Ok(args)
    }

    // ---- assertions ----

    fn assertion(&mut self) -> Result<Assertion, ParseError> {
        let mut acc = self.conjunct()?;
        while self.eat_sym(Sy::AndAnd) {
            let rhs = self.conjunct()?;
            acc = Assertion::and(acc, rhs);
        }
        Ok(acc)
    }

    fn conjunct(&mut self) -> Result<Assertion, ParseError> {
        if self.eat_kw(Kw::Acc) {
            self.expect_sym(Sy::LParen)?;
            let recv = self.expr()?;
            let (recv, field) = match recv {
                Expr::Field(r, f) => (*r, f),
                _ => return Err(self.err("acc expects a field location e.f")),
            };
            let q = if self.eat_sym(Sy::Comma) {
                self.fraction()?
            } else {
                Q::ONE
            };
            self.expect_sym(Sy::RParen)?;
            return Ok(Assertion::Acc(recv, field, q));
        }
        // A parenthesized *assertion* (e.g. `(e ==> acc(x.f))`): try it
        // with backtracking; fall through to expression parsing when the
        // parenthesis turns out to enclose a plain expression.
        if self.peek() == Some(&Tok::Sym(Sy::LParen)) {
            let save = self.i;
            self.i += 1;
            if let Ok(a) = self.assertion() {
                // Accept the parenthesized-assertion reading only when
                // it produced genuine assertion structure AND the next
                // token cannot continue an *expression* (otherwise e.g.
                // `(x && y) ==> A` would lose its implication).
                if self.eat_sym(Sy::RParen)
                    && !matches!(a, Assertion::Expr(_))
                    && self.ends_assertion()
                {
                    return Ok(a);
                }
            }
            self.i = save;
        }
        // expr, possibly `expr ==> conjunct`.
        let e = self.expr_no_and()?;
        if self.eat_sym(Sy::Implies) {
            let rhs = self.conjunct()?;
            return Ok(Assertion::Implies(e, Box::new(rhs)));
        }
        Ok(Assertion::Expr(e))
    }

    /// Whether the current token can follow a complete assertion (used
    /// to disambiguate parenthesized assertions from expressions).
    fn ends_assertion(&self) -> bool {
        matches!(
            self.peek(),
            None | Some(Tok::Sym(Sy::AndAnd))
                | Some(Tok::Sym(Sy::RParen))
                | Some(Tok::Sym(Sy::RBrace))
                | Some(Tok::Sym(Sy::Semi))
                | Some(Tok::Sym(Sy::LBrace))
                | Some(Tok::Kw(Kw::Requires))
                | Some(Tok::Kw(Kw::Ensures))
                | Some(Tok::Kw(Kw::Invariant))
                | Some(Tok::Kw(Kw::Method))
                | Some(Tok::Kw(Kw::Field))
        )
    }

    fn fraction(&mut self) -> Result<Q, ParseError> {
        if self.eat_kw(Kw::Write) {
            return Ok(Q::ONE);
        }
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.i += 1;
                if self.eat_sym(Sy::Slash) {
                    match self.peek().cloned() {
                        Some(Tok::Int(d)) if d != 0 => {
                            self.i += 1;
                            Ok(Q::new(n as i128, d as i128))
                        }
                        _ => Err(self.err("expected nonzero denominator")),
                    }
                } else {
                    Ok(Q::from_int(n))
                }
            }
            _ => Err(self.err("expected a fraction")),
        }
    }

    // ---- expressions ----
    // cond > or > and > cmp > add > mul > unary > postfix > atom

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let c = self.expr_or(true)?;
        if self.eat_sym(Sy::Question) {
            let t = self.expr()?;
            self.expect_sym(Sy::Colon)?;
            let e = self.expr()?;
            return Ok(Expr::Cond(Box::new(c), Box::new(t), Box::new(e)));
        }
        Ok(c)
    }

    /// Expression that stops at assertion-level `&&` (used inside
    /// assertion conjuncts so `A && B` splits at the assertion level).
    fn expr_no_and(&mut self) -> Result<Expr, ParseError> {
        let c = self.expr_or(false)?;
        if self.eat_sym(Sy::Question) {
            let t = self.expr()?;
            self.expect_sym(Sy::Colon)?;
            let e = self.expr()?;
            return Ok(Expr::Cond(Box::new(c), Box::new(t), Box::new(e)));
        }
        Ok(c)
    }

    fn expr_or(&mut self, allow_and: bool) -> Result<Expr, ParseError> {
        let mut e = self.expr_and(allow_and)?;
        while self.eat_sym(Sy::OrOr) {
            let rhs = self.expr_and(allow_and)?;
            e = Expr::bin(Op::Or, e, rhs);
        }
        Ok(e)
    }

    fn expr_and(&mut self, allow_and: bool) -> Result<Expr, ParseError> {
        let mut e = self.expr_cmp()?;
        while allow_and && self.eat_sym(Sy::AndAnd) {
            let rhs = self.expr_cmp()?;
            e = Expr::bin(Op::And, e, rhs);
        }
        Ok(e)
    }

    fn expr_cmp(&mut self) -> Result<Expr, ParseError> {
        let e = self.expr_add()?;
        let op = match self.peek() {
            Some(Tok::Sym(Sy::EqEq)) => Some(Op::Eq),
            Some(Tok::Sym(Sy::Ne)) => Some(Op::Ne),
            Some(Tok::Sym(Sy::Lt)) => Some(Op::Lt),
            Some(Tok::Sym(Sy::Le)) => Some(Op::Le),
            Some(Tok::Sym(Sy::Gt)) => Some(Op::Gt),
            Some(Tok::Sym(Sy::Ge)) => Some(Op::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.i += 1;
            let rhs = self.expr_add()?;
            return Ok(Expr::bin(op, e, rhs));
        }
        Ok(e)
    }

    fn expr_add(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_mul()?;
        loop {
            if self.eat_sym(Sy::Plus) {
                let rhs = self.expr_mul()?;
                e = Expr::bin(Op::Add, e, rhs);
            } else if self.eat_sym(Sy::Minus) {
                let rhs = self.expr_mul()?;
                e = Expr::bin(Op::Sub, e, rhs);
            } else {
                return Ok(e);
            }
        }
    }

    fn expr_mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_unary()?;
        loop {
            if self.eat_sym(Sy::Star) {
                let rhs = self.expr_unary()?;
                e = Expr::bin(Op::Mul, e, rhs);
            } else if self.eat_sym(Sy::Slash) {
                let rhs = self.expr_unary()?;
                e = Expr::bin(Op::Div, e, rhs);
            } else {
                return Ok(e);
            }
        }
    }

    fn expr_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym(Sy::Bang) {
            return Ok(Expr::Not(Box::new(self.expr_unary()?)));
        }
        if self.eat_sym(Sy::Minus) {
            // Fold unary minus on integer literals so negative constants
            // round-trip through the printer.
            if let Some(Tok::Int(n)) = self.peek() {
                let n = *n;
                self.i += 1;
                return Ok(Expr::Int(n.wrapping_neg()));
            }
            return Ok(Expr::Neg(Box::new(self.expr_unary()?)));
        }
        self.expr_postfix()
    }

    fn expr_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        while self.eat_sym(Sy::Dot) {
            let f = self.ident()?;
            e = Expr::field(e, &f);
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.i += 1;
                Ok(Expr::Int(n))
            }
            Some(Tok::Kw(Kw::True)) => {
                self.i += 1;
                Ok(Expr::Bool(true))
            }
            Some(Tok::Kw(Kw::False)) => {
                self.i += 1;
                Ok(Expr::Bool(false))
            }
            Some(Tok::Kw(Kw::Null)) => {
                self.i += 1;
                Ok(Expr::Null)
            }
            Some(Tok::Kw(Kw::Old)) => {
                self.i += 1;
                self.expect_sym(Sy::LParen)?;
                let e = self.expr()?;
                self.expect_sym(Sy::RParen)?;
                Ok(Expr::Old(Box::new(e)))
            }
            Some(Tok::Kw(Kw::Perm)) => {
                self.i += 1;
                self.expect_sym(Sy::LParen)?;
                let e = self.expr()?;
                self.expect_sym(Sy::RParen)?;
                match e {
                    Expr::Field(r, f) => Ok(Expr::Perm(r, f)),
                    _ => Err(self.err("perm expects a field location e.f")),
                }
            }
            Some(Tok::Ident(x)) => {
                self.i += 1;
                Ok(Expr::Var(x))
            }
            Some(Tok::Sym(Sy::LParen)) => {
                self.i += 1;
                let e = self.expr()?;
                self.expect_sym(Sy::RParen)?;
                Ok(e)
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_method() {
        let src = r#"
            field val: Int
            method transfer(a: Ref, b: Ref, amt: Int)
              requires acc(a.val) && acc(b.val) && a.val >= amt && amt >= 0
              ensures acc(a.val) && acc(b.val)
              ensures a.val == old(a.val) - amt && b.val == old(b.val) + amt
            {
              a.val := a.val - amt;
              b.val := b.val + amt
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.fields, vec![("val".to_string(), Type::Int)]);
        let m = p.method("transfer").unwrap();
        assert_eq!(m.params.len(), 3);
        assert_eq!(m.requires.acc_count(), 2);
        assert_eq!(m.body.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn parses_fractions_and_perm() {
        let a = parse_assertion("acc(x.f, 1/2) && perm(x.f) >= 1/2").unwrap();
        assert_eq!(a.acc_count(), 1);
        let a = parse_assertion("acc(x.f, write)").unwrap();
        match a {
            Assertion::Acc(_, _, q) => assert_eq!(q, Q::ONE),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_statements() {
        let src = r#"
            field f: Int
            method m(x: Ref) returns (r: Int)
            {
              var t: Int := x.f + 1;
              if (t > 0) { x.f := t } else { x.f := 0 - t };
              while (t < 10) invariant acc(x.f) { t := t + 1 };
              r := t;
              inhale acc(x.f, 1/2);
              exhale acc(x.f, 1/2);
              assert x.f == x.f;
              call m2(x);
              call r := m3(x, t)
            }
            method m2(y: Ref)
            method m3(y: Ref, n: Int) returns (out: Int)
        "#;
        let p = parse_program(src).unwrap();
        let m = p.method("m").unwrap();
        let body = m.body.as_ref().unwrap();
        assert_eq!(body.len(), 9);
        assert!(matches!(body[1], Stmt::If(..)));
        assert!(matches!(body[2], Stmt::While(..)));
        assert!(matches!(body[8], Stmt::Call(ref t, _, _) if t.len() == 1));
        assert!(p.method("m2").unwrap().body.is_none());
    }

    #[test]
    fn parses_new_and_implication() {
        let src = r#"
            field v: Int
            method m() returns (x: Ref)
              ensures acc(x.v) && (x.v > 0 ==> x.v >= 1)
            {
              x := new(v: 5)
            }
        "#;
        let p = parse_program(src).unwrap();
        let m = p.method("m").unwrap();
        assert!(matches!(m.body.as_ref().unwrap()[0], Stmt::New(..)));
    }

    #[test]
    fn conditional_expression() {
        let src = "field f: Int method m(x: Int) returns (r: Int) { r := x > 0 ? x : 0 - x }";
        let p = parse_program(src).unwrap();
        let m = p.method("m").unwrap();
        assert!(matches!(
            m.body.as_ref().unwrap()[0],
            Stmt::Assign(_, Expr::Cond(..))
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("method m( {").is_err());
        assert!(parse_program("field x").is_err());
        assert!(parse_assertion("acc(x)").is_err());
        assert!(parse_assertion("1 +").is_err());
    }
}
