//! Symbolic values for the IDF verifier.
//!
//! The symbolic executor manipulates terms over fresh symbols; the
//! decision procedure in [`crate::smt`] discharges entailments between
//! them. Symbols are typed (integer, boolean, reference) at creation.

use std::fmt;

/// A typed symbol identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(pub u32);

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The sort of a symbol or expression.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sort {
    /// Mathematical (64-bit) integers.
    Int,
    /// Booleans.
    Bool,
    /// Object references (with a distinguished `null`).
    Ref,
}

/// A symbolic expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SymExpr {
    /// A symbol.
    Sym(Sym),
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// The null reference.
    Null,
    /// Addition.
    Add(Box<SymExpr>, Box<SymExpr>),
    /// Subtraction.
    Sub(Box<SymExpr>, Box<SymExpr>),
    /// Multiplication (the decision procedure handles the linear
    /// fragment; nonlinear goals may come back unknown).
    Mul(Box<SymExpr>, Box<SymExpr>),
    /// Equality (any shared sort).
    Eq(Box<SymExpr>, Box<SymExpr>),
    /// Integer `<`.
    Lt(Box<SymExpr>, Box<SymExpr>),
    /// Integer `<=`.
    Le(Box<SymExpr>, Box<SymExpr>),
    /// Negation.
    Not(Box<SymExpr>),
    /// Conjunction.
    And(Box<SymExpr>, Box<SymExpr>),
    /// Disjunction.
    Or(Box<SymExpr>, Box<SymExpr>),
    /// Implication.
    Implies(Box<SymExpr>, Box<SymExpr>),
    /// If-then-else on a boolean condition.
    Ite(Box<SymExpr>, Box<SymExpr>, Box<SymExpr>),
}

#[allow(clippy::should_implement_trait)]
impl SymExpr {
    /// Integer literal.
    pub fn int(n: i64) -> SymExpr {
        SymExpr::Int(n)
    }

    /// Boolean literal.
    pub fn bool(b: bool) -> SymExpr {
        SymExpr::Bool(b)
    }

    /// Symbol reference.
    pub fn sym(s: Sym) -> SymExpr {
        SymExpr::Sym(s)
    }

    /// `a + b` with constant folding.
    pub fn add(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Int(x.wrapping_add(*y)),
            (SymExpr::Int(0), _) => b,
            (_, SymExpr::Int(0)) => a,
            _ => SymExpr::Add(Box::new(a), Box::new(b)),
        }
    }

    /// `a - b` with constant folding.
    pub fn sub(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Int(x.wrapping_sub(*y)),
            (_, SymExpr::Int(0)) => a,
            _ => SymExpr::Sub(Box::new(a), Box::new(b)),
        }
    }

    /// `a * b` with constant folding.
    pub fn mul(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Int(x.wrapping_mul(*y)),
            (SymExpr::Int(1), _) => b,
            (_, SymExpr::Int(1)) => a,
            (SymExpr::Int(0), _) | (_, SymExpr::Int(0)) => SymExpr::Int(0),
            _ => SymExpr::Mul(Box::new(a), Box::new(b)),
        }
    }

    /// `a = b` with folding.
    pub fn eq(a: SymExpr, b: SymExpr) -> SymExpr {
        if a == b {
            return SymExpr::Bool(true);
        }
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Bool(x == y),
            (SymExpr::Bool(x), SymExpr::Bool(y)) => SymExpr::Bool(x == y),
            _ => SymExpr::Eq(Box::new(a), Box::new(b)),
        }
    }

    /// `a < b` with folding.
    pub fn lt(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Bool(x < y),
            _ => SymExpr::Lt(Box::new(a), Box::new(b)),
        }
    }

    /// `a <= b` with folding.
    pub fn le(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Bool(x <= y),
            _ => SymExpr::Le(Box::new(a), Box::new(b)),
        }
    }

    /// `¬a` with folding.
    pub fn not(a: SymExpr) -> SymExpr {
        match a {
            SymExpr::Bool(b) => SymExpr::Bool(!b),
            SymExpr::Not(inner) => *inner,
            _ => SymExpr::Not(Box::new(a)),
        }
    }

    /// `a ∧ b` with folding.
    pub fn and(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Bool(true), _) => b,
            (_, SymExpr::Bool(true)) => a,
            (SymExpr::Bool(false), _) | (_, SymExpr::Bool(false)) => SymExpr::Bool(false),
            _ => SymExpr::And(Box::new(a), Box::new(b)),
        }
    }

    /// `a ∨ b` with folding.
    pub fn or(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Bool(false), _) => b,
            (_, SymExpr::Bool(false)) => a,
            (SymExpr::Bool(true), _) | (_, SymExpr::Bool(true)) => SymExpr::Bool(true),
            _ => SymExpr::Or(Box::new(a), Box::new(b)),
        }
    }

    /// `a → b` with folding.
    pub fn implies(a: SymExpr, b: SymExpr) -> SymExpr {
        SymExpr::or(SymExpr::not(a), b)
    }

    /// The symbols occurring in the expression.
    pub fn symbols(&self, out: &mut Vec<Sym>) {
        match self {
            SymExpr::Sym(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            SymExpr::Int(_) | SymExpr::Bool(_) | SymExpr::Null => {}
            SymExpr::Not(a) => a.symbols(out),
            SymExpr::Add(a, b)
            | SymExpr::Sub(a, b)
            | SymExpr::Mul(a, b)
            | SymExpr::Eq(a, b)
            | SymExpr::Lt(a, b)
            | SymExpr::Le(a, b)
            | SymExpr::And(a, b)
            | SymExpr::Or(a, b)
            | SymExpr::Implies(a, b) => {
                a.symbols(out);
                b.symbols(out);
            }
            SymExpr::Ite(c, t, e) => {
                c.symbols(out);
                t.symbols(out);
                e.symbols(out);
            }
        }
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExpr::Sym(s) => write!(f, "{}", s),
            SymExpr::Int(n) => write!(f, "{}", n),
            SymExpr::Bool(b) => write!(f, "{}", b),
            SymExpr::Null => write!(f, "null"),
            SymExpr::Add(a, b) => write!(f, "({} + {})", a, b),
            SymExpr::Sub(a, b) => write!(f, "({} - {})", a, b),
            SymExpr::Mul(a, b) => write!(f, "({} * {})", a, b),
            SymExpr::Eq(a, b) => write!(f, "({} == {})", a, b),
            SymExpr::Lt(a, b) => write!(f, "({} < {})", a, b),
            SymExpr::Le(a, b) => write!(f, "({} <= {})", a, b),
            SymExpr::Not(a) => write!(f, "!{}", a),
            SymExpr::And(a, b) => write!(f, "({} && {})", a, b),
            SymExpr::Or(a, b) => write!(f, "({} || {})", a, b),
            SymExpr::Implies(a, b) => write!(f, "({} ==> {})", a, b),
            SymExpr::Ite(c, t, e) => write!(f, "(ite {} {} {})", c, t, e),
        }
    }
}

/// A fresh-symbol supply.
#[derive(Clone, Debug, Default)]
pub struct SymSupply {
    next: u32,
}

impl SymSupply {
    /// A new supply starting at 0.
    pub fn new() -> SymSupply {
        SymSupply::default()
    }

    /// Mints a fresh symbol.
    pub fn fresh(&mut self) -> Sym {
        let s = Sym(self.next);
        self.next += 1;
        s
    }

    /// How many symbols have been minted (the witness-count metric of
    /// experiment T1).
    pub fn minted(&self) -> usize {
        self.next as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding() {
        assert_eq!(
            SymExpr::add(SymExpr::int(2), SymExpr::int(3)),
            SymExpr::int(5)
        );
        assert_eq!(
            SymExpr::and(SymExpr::bool(true), SymExpr::sym(Sym(0))),
            SymExpr::sym(Sym(0))
        );
        assert_eq!(
            SymExpr::mul(SymExpr::int(0), SymExpr::sym(Sym(0))),
            SymExpr::int(0)
        );
        assert_eq!(
            SymExpr::eq(SymExpr::sym(Sym(1)), SymExpr::sym(Sym(1))),
            SymExpr::bool(true)
        );
        assert_eq!(SymExpr::not(SymExpr::not(SymExpr::sym(Sym(0)))), SymExpr::sym(Sym(0)));
    }

    #[test]
    fn symbol_collection() {
        let e = SymExpr::add(
            SymExpr::sym(Sym(1)),
            SymExpr::mul(SymExpr::sym(Sym(2)), SymExpr::sym(Sym(1))),
        );
        let mut syms = Vec::new();
        e.symbols(&mut syms);
        assert_eq!(syms, vec![Sym(1), Sym(2)]);
    }

    #[test]
    fn supply_is_monotone() {
        let mut s = SymSupply::new();
        let a = s.fresh();
        let b = s.fresh();
        assert_ne!(a, b);
        assert_eq!(s.minted(), 2);
    }
}
