//! Symbolic values for the IDF verifier.
//!
//! The symbolic executor manipulates terms over fresh symbols; the
//! decision procedure in [`crate::smt`] discharges entailments between
//! them. Symbols are typed (integer, boolean, reference) at creation.
//!
//! Terms come in two representations:
//!
//! * [`SymExpr`] — a plain owned tree, convenient for tests and for
//!   building formulas by hand;
//! * [`TermId`] into a [`TermArena`] — the hash-consed form the
//!   verifier and solver use internally. Every structurally distinct
//!   term is stored exactly once, so equality and hashing are O(1) id
//!   comparisons and sub-term sharing is free.

use std::collections::HashMap;
use std::fmt;

/// A typed symbol identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(pub u32);

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The sort of a symbol or expression.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sort {
    /// Mathematical (64-bit) integers.
    Int,
    /// Booleans.
    Bool,
    /// Object references (with a distinguished `null`).
    Ref,
}

/// A stable-baseline witness: one spec-level field read that was
/// rendered as a fresh symbol instead of a direct heap read. The
/// baseline scans live witnesses at every field write to decide which
/// must be invalidated; `scan_exempt` marks witnesses minted under an
/// assertion the static analysis ([`crate::stability`]) proved
/// (framed-)stable, whose scans the executor skips without posing a
/// solver query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Witness {
    /// The receiver the read was taken from.
    pub recv: TermId,
    /// The field that was read.
    pub field: String,
    /// The fresh symbol standing in for the read value.
    pub sym: Sym,
    /// Whether invalidation scans may skip this witness.
    pub scan_exempt: bool,
}

/// A symbolic expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SymExpr {
    /// A symbol.
    Sym(Sym),
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// The null reference.
    Null,
    /// Addition.
    Add(Box<SymExpr>, Box<SymExpr>),
    /// Subtraction.
    Sub(Box<SymExpr>, Box<SymExpr>),
    /// Multiplication (the decision procedure handles the linear
    /// fragment; nonlinear goals may come back unknown).
    Mul(Box<SymExpr>, Box<SymExpr>),
    /// Equality (any shared sort).
    Eq(Box<SymExpr>, Box<SymExpr>),
    /// Integer `<`.
    Lt(Box<SymExpr>, Box<SymExpr>),
    /// Integer `<=`.
    Le(Box<SymExpr>, Box<SymExpr>),
    /// Negation.
    Not(Box<SymExpr>),
    /// Conjunction.
    And(Box<SymExpr>, Box<SymExpr>),
    /// Disjunction.
    Or(Box<SymExpr>, Box<SymExpr>),
    /// Implication.
    Implies(Box<SymExpr>, Box<SymExpr>),
    /// If-then-else on a boolean condition.
    Ite(Box<SymExpr>, Box<SymExpr>, Box<SymExpr>),
}

#[allow(clippy::should_implement_trait)]
impl SymExpr {
    /// Integer literal.
    pub fn int(n: i64) -> SymExpr {
        SymExpr::Int(n)
    }

    /// Boolean literal.
    pub fn bool(b: bool) -> SymExpr {
        SymExpr::Bool(b)
    }

    /// Symbol reference.
    pub fn sym(s: Sym) -> SymExpr {
        SymExpr::Sym(s)
    }

    /// `a + b` with constant folding.
    pub fn add(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Int(x.wrapping_add(*y)),
            (SymExpr::Int(0), _) => b,
            (_, SymExpr::Int(0)) => a,
            _ => SymExpr::Add(Box::new(a), Box::new(b)),
        }
    }

    /// `a - b` with constant folding.
    pub fn sub(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Int(x.wrapping_sub(*y)),
            (_, SymExpr::Int(0)) => a,
            _ => SymExpr::Sub(Box::new(a), Box::new(b)),
        }
    }

    /// `a * b` with constant folding.
    pub fn mul(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Int(x.wrapping_mul(*y)),
            (SymExpr::Int(1), _) => b,
            (_, SymExpr::Int(1)) => a,
            (SymExpr::Int(0), _) | (_, SymExpr::Int(0)) => SymExpr::Int(0),
            _ => SymExpr::Mul(Box::new(a), Box::new(b)),
        }
    }

    /// `a = b` with folding.
    pub fn eq(a: SymExpr, b: SymExpr) -> SymExpr {
        if a == b {
            return SymExpr::Bool(true);
        }
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Bool(x == y),
            (SymExpr::Bool(x), SymExpr::Bool(y)) => SymExpr::Bool(x == y),
            _ => SymExpr::Eq(Box::new(a), Box::new(b)),
        }
    }

    /// `a < b` with folding.
    pub fn lt(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Bool(x < y),
            _ => SymExpr::Lt(Box::new(a), Box::new(b)),
        }
    }

    /// `a <= b` with folding.
    pub fn le(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Int(x), SymExpr::Int(y)) => SymExpr::Bool(x <= y),
            _ => SymExpr::Le(Box::new(a), Box::new(b)),
        }
    }

    /// `¬a` with folding.
    pub fn not(a: SymExpr) -> SymExpr {
        match a {
            SymExpr::Bool(b) => SymExpr::Bool(!b),
            SymExpr::Not(inner) => *inner,
            _ => SymExpr::Not(Box::new(a)),
        }
    }

    /// `a ∧ b` with folding.
    pub fn and(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Bool(true), _) => b,
            (_, SymExpr::Bool(true)) => a,
            (SymExpr::Bool(false), _) | (_, SymExpr::Bool(false)) => SymExpr::Bool(false),
            _ => SymExpr::And(Box::new(a), Box::new(b)),
        }
    }

    /// `a ∨ b` with folding.
    pub fn or(a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Bool(false), _) => b,
            (_, SymExpr::Bool(false)) => a,
            (SymExpr::Bool(true), _) | (_, SymExpr::Bool(true)) => SymExpr::Bool(true),
            _ => SymExpr::Or(Box::new(a), Box::new(b)),
        }
    }

    /// `a → b` with folding.
    pub fn implies(a: SymExpr, b: SymExpr) -> SymExpr {
        SymExpr::or(SymExpr::not(a), b)
    }

    /// The symbols occurring in the expression.
    pub fn symbols(&self, out: &mut Vec<Sym>) {
        match self {
            SymExpr::Sym(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            SymExpr::Int(_) | SymExpr::Bool(_) | SymExpr::Null => {}
            SymExpr::Not(a) => a.symbols(out),
            SymExpr::Add(a, b)
            | SymExpr::Sub(a, b)
            | SymExpr::Mul(a, b)
            | SymExpr::Eq(a, b)
            | SymExpr::Lt(a, b)
            | SymExpr::Le(a, b)
            | SymExpr::And(a, b)
            | SymExpr::Or(a, b)
            | SymExpr::Implies(a, b) => {
                a.symbols(out);
                b.symbols(out);
            }
            SymExpr::Ite(c, t, e) => {
                c.symbols(out);
                t.symbols(out);
                e.symbols(out);
            }
        }
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExpr::Sym(s) => write!(f, "{}", s),
            SymExpr::Int(n) => write!(f, "{}", n),
            SymExpr::Bool(b) => write!(f, "{}", b),
            SymExpr::Null => write!(f, "null"),
            SymExpr::Add(a, b) => write!(f, "({} + {})", a, b),
            SymExpr::Sub(a, b) => write!(f, "({} - {})", a, b),
            SymExpr::Mul(a, b) => write!(f, "({} * {})", a, b),
            SymExpr::Eq(a, b) => write!(f, "({} == {})", a, b),
            SymExpr::Lt(a, b) => write!(f, "({} < {})", a, b),
            SymExpr::Le(a, b) => write!(f, "({} <= {})", a, b),
            SymExpr::Not(a) => write!(f, "!{}", a),
            SymExpr::And(a, b) => write!(f, "({} && {})", a, b),
            SymExpr::Or(a, b) => write!(f, "({} || {})", a, b),
            SymExpr::Implies(a, b) => write!(f, "({} ==> {})", a, b),
            SymExpr::Ite(c, t, e) => write!(f, "(ite {} {} {})", c, t, e),
        }
    }
}

/// An interned term: an index into a [`TermArena`].
///
/// Two ids from the *same* arena are equal iff the terms they denote
/// are structurally equal, so `==` on ids replaces deep tree
/// comparison.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(u32);

impl TermId {
    /// The raw arena index — stable within one arena, used for
    /// order-insensitive path-condition hashing in trace events.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// One hash-consed term node. Children are [`TermId`]s, so the node is
/// small and `Copy`; `Implies` is desugared to `¬a ∨ b` at interning
/// time and has no node of its own.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A symbol.
    Sym(Sym),
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// The null reference.
    Null,
    /// Addition.
    Add(TermId, TermId),
    /// Subtraction.
    Sub(TermId, TermId),
    /// Multiplication.
    Mul(TermId, TermId),
    /// Equality (any shared sort).
    Eq(TermId, TermId),
    /// Integer `<`.
    Lt(TermId, TermId),
    /// Integer `<=`.
    Le(TermId, TermId),
    /// Negation.
    Not(TermId),
    /// Conjunction.
    And(TermId, TermId),
    /// Disjunction.
    Or(TermId, TermId),
    /// If-then-else on a boolean condition.
    Ite(TermId, TermId, TermId),
}

/// Interns both children of a binary [`SymExpr`] node, then applies the
/// arena constructor (keeps `intern_expr` readable).
macro_rules! bin {
    ($arena:expr, $ctor:ident, $a:expr, $b:expr) => {{
        let ia = $arena.intern_expr($a);
        let ib = $arena.intern_expr($b);
        $arena.$ctor(ia, ib)
    }};
}

/// A hash-consing arena for [`Term`]s.
///
/// The constructors perform the same constant folding as the
/// [`SymExpr`] smart constructors, then intern: structurally equal
/// terms always receive the same [`TermId`]. The arena only ever
/// grows; [`TermArena::len`] is the interned-term metric reported by
/// the evaluation harness.
///
/// With simplification enabled (the default), the constructors
/// additionally *canonicalize* at intern time — commutative arguments
/// are ordered by id, idempotent and complementary boolean pairs
/// collapse, self-comparisons fold (`x ≤ x`, `a − a`), and boolean
/// `ite` shells reduce — so syntactically different but equal terms
/// hash-cons to the same [`TermId`]. All the extra rules are semantic
/// equivalences, so they change term counts and solver cost, never
/// answers; [`TermArena::set_simplify`] turns them off to measure the
/// difference.
#[derive(Clone, Debug)]
pub struct TermArena {
    nodes: Vec<Term>,
    index: HashMap<Term, TermId>,
    /// Soft interned-term budget: interning never fails (terms created
    /// past the limit are still valid), but [`TermArena::over_limit`]
    /// reports the overrun so the verifier's cooperative budget checks
    /// can prune the run.
    limit: Option<usize>,
    /// Whether the canonicalizing rewrite rules (beyond plain constant
    /// folding) run at intern time.
    simplify: bool,
}

impl Default for TermArena {
    fn default() -> TermArena {
        TermArena {
            nodes: Vec::new(),
            index: HashMap::new(),
            limit: None,
            simplify: true,
        }
    }
}

impl TermArena {
    /// An empty arena (simplification on).
    pub fn new() -> TermArena {
        TermArena::default()
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sets (or clears) the soft interned-term budget. The limit is a
    /// cooperative signal, not a hard stop: [`TermArena::over_limit`]
    /// turns true once `len()` exceeds it.
    pub fn set_limit(&mut self, limit: Option<usize>) {
        self.limit = limit;
    }

    /// True when the arena has grown past its soft budget.
    pub fn over_limit(&self) -> bool {
        self.limit.is_some_and(|l| self.nodes.len() > l)
    }

    /// Enables or disables the canonicalizing rewrite rules. Plain
    /// constant folding always runs; the toggle covers only the
    /// canonicalization layer (commutative ordering, idempotence,
    /// complements, self-comparisons, boolean `ite` shells), so `off`
    /// reproduces the pre-canonicalization pipeline for measurement.
    pub fn set_simplify(&mut self, on: bool) {
        self.simplify = on;
    }

    /// Whether the canonicalizing rewrite rules are enabled.
    pub fn simplify_enabled(&self) -> bool {
        self.simplify
    }

    /// Orders a commutative argument pair by id (canonicalization on
    /// only), so `x ⊕ y` and `y ⊕ x` intern to one node.
    fn commute(&self, a: TermId, b: TermId) -> (TermId, TermId) {
        if self.simplify && a.raw() > b.raw() {
            (b, a)
        } else {
            (a, b)
        }
    }

    /// The node a [`TermId`] denotes.
    pub fn node(&self, id: TermId) -> Term {
        self.nodes[id.0 as usize]
    }

    fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.index.get(&t) {
            return id;
        }
        let id = TermId(u32::try_from(self.nodes.len()).expect("arena overflow"));
        self.nodes.push(t);
        self.index.insert(t, id);
        id
    }

    /// Integer literal.
    pub fn int(&mut self, n: i64) -> TermId {
        self.intern(Term::Int(n))
    }

    /// Boolean literal.
    pub fn bool(&mut self, b: bool) -> TermId {
        self.intern(Term::Bool(b))
    }

    /// Symbol reference.
    pub fn sym(&mut self, s: Sym) -> TermId {
        self.intern(Term::Sym(s))
    }

    /// The null reference.
    pub fn null(&mut self) -> TermId {
        self.intern(Term::Null)
    }

    /// `a + b` with constant folding; canonicalization orders the
    /// commutative arguments by id.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.node(a), self.node(b)) {
            (Term::Int(x), Term::Int(y)) => self.int(x.wrapping_add(y)),
            (Term::Int(0), _) => b,
            (_, Term::Int(0)) => a,
            _ => {
                let (a, b) = self.commute(a, b);
                self.intern(Term::Add(a, b))
            }
        }
    }

    /// `a - b` with constant folding; canonicalization folds `a − a`
    /// to `0`.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        if self.simplify && a == b {
            return self.int(0);
        }
        match (self.node(a), self.node(b)) {
            (Term::Int(x), Term::Int(y)) => self.int(x.wrapping_sub(y)),
            (_, Term::Int(0)) => a,
            _ => self.intern(Term::Sub(a, b)),
        }
    }

    /// `a * b` with constant folding; canonicalization orders the
    /// commutative arguments by id.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.node(a), self.node(b)) {
            (Term::Int(x), Term::Int(y)) => self.int(x.wrapping_mul(y)),
            (Term::Int(1), _) => b,
            (_, Term::Int(1)) => a,
            (Term::Int(0), _) | (_, Term::Int(0)) => self.int(0),
            _ => {
                let (a, b) = self.commute(a, b);
                self.intern(Term::Mul(a, b))
            }
        }
    }

    /// `a = b` with folding; structural equality is the id check, and
    /// canonicalization orients the symmetric arguments by id.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.bool(true);
        }
        match (self.node(a), self.node(b)) {
            (Term::Int(x), Term::Int(y)) => self.bool(x == y),
            (Term::Bool(x), Term::Bool(y)) => self.bool(x == y),
            _ => {
                let (a, b) = self.commute(a, b);
                self.intern(Term::Eq(a, b))
            }
        }
    }

    /// `a < b` with folding; canonicalization folds the irreflexive
    /// self-comparison `a < a` to `false`.
    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        if self.simplify && a == b {
            return self.bool(false);
        }
        match (self.node(a), self.node(b)) {
            (Term::Int(x), Term::Int(y)) => self.bool(x < y),
            _ => self.intern(Term::Lt(a, b)),
        }
    }

    /// `a <= b` with folding; canonicalization folds the reflexive
    /// self-comparison `a ≤ a` to `true`.
    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        if self.simplify && a == b {
            return self.bool(true);
        }
        match (self.node(a), self.node(b)) {
            (Term::Int(x), Term::Int(y)) => self.bool(x <= y),
            _ => self.intern(Term::Le(a, b)),
        }
    }

    /// `¬a` with folding.
    pub fn not(&mut self, a: TermId) -> TermId {
        match self.node(a) {
            Term::Bool(b) => self.bool(!b),
            Term::Not(inner) => inner,
            _ => self.intern(Term::Not(a)),
        }
    }

    /// `a ∧ b` with folding; canonicalization collapses idempotent
    /// (`a ∧ a`) and complementary (`a ∧ ¬a`) pairs. Argument order is
    /// preserved — conjunction order determines the deterministic DPLL
    /// branching order and the rendering of path conditions in failure
    /// reports.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.node(a), self.node(b)) {
            (Term::Bool(true), _) => b,
            (_, Term::Bool(true)) => a,
            (Term::Bool(false), _) | (_, Term::Bool(false)) => self.bool(false),
            (na, nb) => {
                if self.simplify {
                    if a == b {
                        return a;
                    }
                    if na == Term::Not(b) || nb == Term::Not(a) {
                        return self.bool(false);
                    }
                }
                self.intern(Term::And(a, b))
            }
        }
    }

    /// `a ∨ b` with folding; canonicalization collapses idempotent
    /// (`a ∨ a`) and complementary (`a ∨ ¬a`) pairs. Argument order is
    /// preserved for the same determinism reasons as [`TermArena::and`].
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.node(a), self.node(b)) {
            (Term::Bool(false), _) => b,
            (_, Term::Bool(false)) => a,
            (Term::Bool(true), _) | (_, Term::Bool(true)) => self.bool(true),
            (na, nb) => {
                if self.simplify {
                    if a == b {
                        return a;
                    }
                    if na == Term::Not(b) || nb == Term::Not(a) {
                        return self.bool(true);
                    }
                }
                self.intern(Term::Or(a, b))
            }
        }
    }

    /// `a → b`, desugared to `¬a ∨ b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// `ite(c, t, e)` with folding on a literal condition;
    /// canonicalization reduces the boolean shells `ite(c, true,
    /// false)` to `c` and `ite(c, false, true)` to `¬c`.
    pub fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        if t == e {
            return t;
        }
        match self.node(c) {
            Term::Bool(true) => t,
            Term::Bool(false) => e,
            _ => {
                if self.simplify {
                    match (self.node(t), self.node(e)) {
                        (Term::Bool(true), Term::Bool(false)) => return c,
                        (Term::Bool(false), Term::Bool(true)) => return self.not(c),
                        _ => {}
                    }
                }
                self.intern(Term::Ite(c, t, e))
            }
        }
    }

    /// Interns an owned [`SymExpr`] tree.
    pub fn intern_expr(&mut self, e: &SymExpr) -> TermId {
        match e {
            SymExpr::Sym(s) => self.sym(*s),
            SymExpr::Int(n) => self.int(*n),
            SymExpr::Bool(b) => self.bool(*b),
            SymExpr::Null => self.null(),
            SymExpr::Add(a, b) => bin!(self, add, a, b),
            SymExpr::Sub(a, b) => bin!(self, sub, a, b),
            SymExpr::Mul(a, b) => bin!(self, mul, a, b),
            SymExpr::Eq(a, b) => bin!(self, eq, a, b),
            SymExpr::Lt(a, b) => bin!(self, lt, a, b),
            SymExpr::Le(a, b) => bin!(self, le, a, b),
            SymExpr::Not(a) => {
                let ia = self.intern_expr(a);
                self.not(ia)
            }
            SymExpr::And(a, b) => bin!(self, and, a, b),
            SymExpr::Or(a, b) => bin!(self, or, a, b),
            SymExpr::Implies(a, b) => bin!(self, implies, a, b),
            SymExpr::Ite(c, t, el) => {
                let ic = self.intern_expr(c);
                let it = self.intern_expr(t);
                let ie = self.intern_expr(el);
                self.ite(ic, it, ie)
            }
        }
    }

    /// Reconstructs an owned tree (display, diagnostics, tests).
    pub fn to_expr(&self, id: TermId) -> SymExpr {
        let b = |x: &TermId| Box::new(self.to_expr(*x));
        match &self.nodes[id.0 as usize] {
            Term::Sym(s) => SymExpr::Sym(*s),
            Term::Int(n) => SymExpr::Int(*n),
            Term::Bool(v) => SymExpr::Bool(*v),
            Term::Null => SymExpr::Null,
            Term::Add(x, y) => SymExpr::Add(b(x), b(y)),
            Term::Sub(x, y) => SymExpr::Sub(b(x), b(y)),
            Term::Mul(x, y) => SymExpr::Mul(b(x), b(y)),
            Term::Eq(x, y) => SymExpr::Eq(b(x), b(y)),
            Term::Lt(x, y) => SymExpr::Lt(b(x), b(y)),
            Term::Le(x, y) => SymExpr::Le(b(x), b(y)),
            Term::Not(x) => SymExpr::Not(b(x)),
            Term::And(x, y) => SymExpr::And(b(x), b(y)),
            Term::Or(x, y) => SymExpr::Or(b(x), b(y)),
            Term::Ite(c, t, e) => SymExpr::Ite(b(c), b(t), b(e)),
        }
    }

    /// The symbols occurring in the term.
    pub fn symbols(&self, id: TermId, out: &mut Vec<Sym>) {
        match self.node(id) {
            Term::Sym(s) => {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
            Term::Int(_) | Term::Bool(_) | Term::Null => {}
            Term::Not(a) => self.symbols(a, out),
            Term::Add(a, b)
            | Term::Sub(a, b)
            | Term::Mul(a, b)
            | Term::Eq(a, b)
            | Term::Lt(a, b)
            | Term::Le(a, b)
            | Term::And(a, b)
            | Term::Or(a, b) => {
                self.symbols(a, out);
                self.symbols(b, out);
            }
            Term::Ite(c, t, e) => {
                self.symbols(c, out);
                self.symbols(t, out);
                self.symbols(e, out);
            }
        }
    }
}

/// A fresh-symbol supply.
#[derive(Clone, Debug, Default)]
pub struct SymSupply {
    next: u32,
}

impl SymSupply {
    /// A new supply starting at 0.
    pub fn new() -> SymSupply {
        SymSupply::default()
    }

    /// Mints a fresh symbol.
    pub fn fresh(&mut self) -> Sym {
        let s = Sym(self.next);
        self.next += 1;
        s
    }

    /// How many symbols have been minted (the witness-count metric of
    /// experiment T1).
    pub fn minted(&self) -> usize {
        self.next as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding() {
        assert_eq!(
            SymExpr::add(SymExpr::int(2), SymExpr::int(3)),
            SymExpr::int(5)
        );
        assert_eq!(
            SymExpr::and(SymExpr::bool(true), SymExpr::sym(Sym(0))),
            SymExpr::sym(Sym(0))
        );
        assert_eq!(
            SymExpr::mul(SymExpr::int(0), SymExpr::sym(Sym(0))),
            SymExpr::int(0)
        );
        assert_eq!(
            SymExpr::eq(SymExpr::sym(Sym(1)), SymExpr::sym(Sym(1))),
            SymExpr::bool(true)
        );
        assert_eq!(
            SymExpr::not(SymExpr::not(SymExpr::sym(Sym(0)))),
            SymExpr::sym(Sym(0))
        );
    }

    #[test]
    fn symbol_collection() {
        let e = SymExpr::add(
            SymExpr::sym(Sym(1)),
            SymExpr::mul(SymExpr::sym(Sym(2)), SymExpr::sym(Sym(1))),
        );
        let mut syms = Vec::new();
        e.symbols(&mut syms);
        assert_eq!(syms, vec![Sym(1), Sym(2)]);
    }

    #[test]
    fn arena_hash_consing_dedups() {
        let mut a = TermArena::new();
        let x = a.sym(Sym(0));
        let y = a.sym(Sym(1));
        let t1 = a.add(x, y);
        let t2 = a.add(x, y);
        assert_eq!(t1, t2, "structurally equal terms share an id");
        let before = a.len();
        let _ = a.add(x, y);
        assert_eq!(a.len(), before, "re-interning allocates nothing");
    }

    #[test]
    fn arena_folds_like_symexpr() {
        let mut a = TermArena::new();
        let two = a.int(2);
        let three = a.int(3);
        let five = a.int(5);
        assert_eq!(a.add(two, three), five);
        let x = a.sym(Sym(0));
        let t = a.bool(true);
        assert_eq!(a.and(t, x), x);
        let zero = a.int(0);
        assert_eq!(a.mul(zero, x), zero);
        assert_eq!(a.eq(x, x), t);
        let nx = a.not(x);
        assert_eq!(a.not(nx), x);
    }

    #[test]
    fn arena_roundtrips_symexpr() {
        let mut a = TermArena::new();
        let e = SymExpr::implies(
            SymExpr::lt(SymExpr::sym(Sym(0)), SymExpr::int(4)),
            SymExpr::eq(SymExpr::sym(Sym(1)), SymExpr::int(0)),
        );
        let id = a.intern_expr(&e);
        assert_eq!(a.to_expr(id), e);
        let mut syms = Vec::new();
        a.symbols(id, &mut syms);
        assert_eq!(syms, vec![Sym(0), Sym(1)]);
    }

    #[test]
    fn canonicalization_merges_commuted_terms() {
        let mut a = TermArena::new();
        let x = a.sym(Sym(0));
        let y = a.sym(Sym(1));
        assert_eq!(a.add(x, y), a.add(y, x), "x + y ≡ y + x");
        assert_eq!(a.mul(x, y), a.mul(y, x), "x * y ≡ y * x");
        assert_eq!(a.eq(x, y), a.eq(y, x), "x == y ≡ y == x");
    }

    #[test]
    fn canonicalization_folds_self_comparisons() {
        let mut a = TermArena::new();
        let x = a.sym(Sym(0));
        let t = a.bool(true);
        let f = a.bool(false);
        let zero = a.int(0);
        assert_eq!(a.le(x, x), t, "x <= x");
        assert_eq!(a.lt(x, x), f, "x < x");
        assert_eq!(a.sub(x, x), zero, "x - x");
    }

    #[test]
    fn canonicalization_collapses_boolean_pairs() {
        let mut a = TermArena::new();
        let p = a.sym(Sym(0));
        let np = a.not(p);
        let t = a.bool(true);
        let f = a.bool(false);
        assert_eq!(a.and(p, p), p, "p && p");
        assert_eq!(a.or(p, p), p, "p || p");
        assert_eq!(a.and(p, np), f, "p && !p");
        assert_eq!(a.and(np, p), f, "!p && p");
        assert_eq!(a.or(p, np), t, "p || !p");
        assert_eq!(a.or(np, p), t, "!p || p");
        assert_eq!(a.ite(p, t, f), p, "ite(p, true, false)");
        assert_eq!(a.ite(p, f, t), np, "ite(p, false, true)");
    }

    #[test]
    fn simplify_off_reproduces_plain_interning() {
        let mut a = TermArena::new();
        a.set_simplify(false);
        assert!(!a.simplify_enabled());
        let x = a.sym(Sym(0));
        let y = a.sym(Sym(1));
        assert_ne!(a.add(x, y), a.add(y, x), "no commutative ordering");
        let le = a.le(x, x);
        assert_eq!(a.to_expr(le).to_string(), "(s0 <= s0)");
        // Constant folding is not part of the toggle.
        let two = a.int(2);
        let three = a.int(3);
        let five = a.int(5);
        assert_eq!(a.add(two, three), five);
    }

    #[test]
    fn supply_is_monotone() {
        let mut s = SymSupply::new();
        let a = s.fresh();
        let b = s.fresh();
        assert_ne!(a, b);
        assert_eq!(s.minted(), 2);
    }
}
