//! The case-study suite of the evaluation (experiment T1) and the
//! scaling-workload generator (experiment F1).
//!
//! Each case is a small but representative IDF program of the kind the
//! paper's motivation section draws on: heap-dependent contracts,
//! fractional sharing, permission introspection, loops and calls. All
//! positive cases verify on *both* backends; the negative cases must be
//! rejected by both.

use crate::ast::Program;
use crate::parser::parse_program;

/// A named case study.
#[derive(Clone, Debug)]
pub struct Case {
    /// Short identifier (used in the tables).
    pub name: &'static str,
    /// IDF source text.
    pub source: &'static str,
    /// Whether the program should verify.
    pub should_verify: bool,
    /// Whether the dynamic oracle can synthesize inputs for it (flat
    /// object graphs only; linked structures are static-only).
    pub dynamic: bool,
}

impl Case {
    /// Parses the case's program.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source does not parse (a bug in the suite).
    pub fn program(&self) -> Program {
        parse_program(self.source)
            .unwrap_or_else(|e| panic!("case {} does not parse: {}", self.name, e))
    }
}

/// The positive case studies.
pub fn positive_cases() -> Vec<Case> {
    vec![
        Case {
            name: "counter_inc",
            should_verify: true,
            dynamic: true,
            source: r#"
                field val: Int
                method inc(c: Ref)
                  requires acc(c.val)
                  ensures acc(c.val) && c.val == old(c.val) + 1
                { c.val := c.val + 1 }
            "#,
        },
        Case {
            name: "bank_transfer",
            should_verify: true,
            dynamic: true,
            source: r#"
                field bal: Int
                method transfer(a: Ref, b: Ref, amt: Int)
                  requires acc(a.bal) && acc(b.bal) && 0 <= amt && amt <= a.bal
                  ensures acc(a.bal) && acc(b.bal)
                  ensures a.bal == old(a.bal) - amt && b.bal == old(b.bal) + amt
                  ensures a.bal >= 0
                {
                  a.bal := a.bal - amt;
                  b.bal := b.bal + amt
                }
            "#,
        },
        Case {
            name: "cell_swap",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method swap(a: Ref, b: Ref)
                  requires acc(a.v) && acc(b.v)
                  ensures acc(a.v) && acc(b.v)
                  ensures a.v == old(b.v) && b.v == old(a.v)
                {
                  var t: Int := a.v;
                  a.v := b.v;
                  b.v := t
                }
            "#,
        },
        Case {
            name: "shared_read",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method both(a: Ref, b: Ref) returns (s: Int)
                  requires acc(a.v, 1/2) && acc(b.v, 1/2)
                  ensures acc(a.v, 1/2) && acc(b.v, 1/2)
                  ensures s == a.v + b.v
                { s := a.v + b.v }
            "#,
        },
        Case {
            name: "perm_introspect",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method introspect(c: Ref)
                  requires acc(c.v, 1/2)
                  ensures acc(c.v, 1/2)
                {
                  assert perm(c.v) >= 1/2;
                  assert perm(c.v) < 1;
                  inhale acc(c.v, 1/2);
                  assert perm(c.v) == 1;
                  c.v := c.v + 1;
                  exhale acc(c.v, 1/2)
                }
            "#,
        },
        Case {
            name: "abs_branch",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method absval(c: Ref)
                  requires acc(c.v)
                  ensures acc(c.v) && c.v >= 0
                  ensures old(c.v) >= 0 ==> c.v == old(c.v)
                {
                  if (c.v < 0) { c.v := 0 - c.v } else { }
                }
            "#,
        },
        Case {
            // A quadratic sum invariant would be nonlinear and out of
            // our solver's fragment (it verifies only dynamically; see
            // `compile::tests`), so the static loop case is linear.
            name: "scale_loop",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method scale(n: Int) returns (s: Int)
                  requires n >= 0
                  ensures s == 3 * n
                {
                  var i: Int := 0;
                  s := 0;
                  while (i < n)
                    invariant 0 <= i && i <= n && s == 3 * i
                  { s := s + 3; i := i + 1 }
                }
            "#,
        },
        Case {
            name: "call_chain",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method add(c: Ref, n: Int)
                  requires acc(c.v)
                  ensures acc(c.v) && c.v == old(c.v) + n
                { c.v := c.v + n }
                method add4(c: Ref)
                  requires acc(c.v)
                  ensures acc(c.v) && c.v == old(c.v) + 4
                {
                  call add(c, 1);
                  call add(c, 3)
                }
            "#,
        },
        Case {
            name: "fresh_cells",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method mk(init: Int) returns (x: Ref)
                  ensures acc(x.v) && x.v == init
                { x := new(v: init) }
                method mk_pair() returns (x: Ref, y: Ref)
                  ensures acc(x.v) && acc(y.v) && x.v == 1 && y.v == 2
                {
                  x := new(v: 1);
                  y := new(v: 2)
                }
            "#,
        },
        Case {
            name: "max_field",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method maxv(a: Ref, b: Ref) returns (m: Int)
                  requires acc(a.v, 1/2) && acc(b.v, 1/2)
                  ensures acc(a.v, 1/2) && acc(b.v, 1/2)
                  ensures m >= a.v && m >= b.v && (m == a.v || m == b.v)
                {
                  m := a.v > b.v ? a.v : b.v
                }
            "#,
        },
        Case {
            name: "counter_loop",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method pump(c: Ref, n: Int)
                  requires acc(c.v) && n >= 0 && c.v == 0
                  ensures acc(c.v) && c.v == n
                {
                  var i: Int := 0;
                  while (i < n)
                    invariant acc(c.v) && 0 <= i && i <= n && c.v == i
                  {
                    c.v := c.v + 1;
                    i := i + 1
                  }
                }
            "#,
        },
        Case {
            name: "nested_refs",
            should_verify: true,
            dynamic: false,
            source: r#"
                field val: Int
                field next: Ref
                method follow(x: Ref) returns (r: Int)
                  requires acc(x.next) && acc(x.next.val)
                  ensures acc(x.next) && acc(x.next.val)
                  ensures r == x.next.val && x.next == old(x.next)
                {
                  var y: Ref := x.next;
                  r := y.val
                }
            "#,
        },
        Case {
            name: "conditional_acc",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method maybe_zero(c: Ref, go: Bool)
                  requires go ==> acc(c.v)
                  ensures go ==> (acc(c.v) && c.v == 0)
                {
                  if (go) { c.v := 0 } else { }
                }
            "#,
        },
        Case {
            name: "constructor_call",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method mk(init: Int) returns (x: Ref)
                  ensures acc(x.v) && x.v == init
                { x := new(v: init) }
                method client() returns (r: Int)
                  ensures r == 42
                {
                  var c: Ref := null;
                  call c := mk(42);
                  r := c.v
                }
            "#,
        },
        Case {
            name: "ghost_inhale_exhale",
            should_verify: true,
            dynamic: true,
            source: r#"
                field v: Int
                method lend(c: Ref)
                  requires acc(c.v)
                  ensures acc(c.v) && c.v == old(c.v)
                {
                  exhale acc(c.v, 1/2);
                  assert perm(c.v) == 1/2;
                  inhale acc(c.v, 1/2)
                }
            "#,
        },
    ]
}

/// The negative cases: must be rejected by both backends.
pub fn negative_cases() -> Vec<Case> {
    vec![
        Case {
            name: "neg_write_no_perm",
            should_verify: false,
            dynamic: true,
            source: r#"
                field v: Int
                method bad(c: Ref)
                { c.v := 1 }
            "#,
        },
        Case {
            name: "neg_wrong_post",
            should_verify: false,
            dynamic: true,
            source: r#"
                field v: Int
                method bad(c: Ref)
                  requires acc(c.v)
                  ensures acc(c.v) && c.v == old(c.v) + 2
                { c.v := c.v + 1 }
            "#,
        },
        Case {
            name: "neg_leaked_permission",
            should_verify: false,
            dynamic: true,
            source: r#"
                field v: Int
                method bad(c: Ref)
                  requires acc(c.v, 1/2)
                  ensures acc(c.v)
                { }
            "#,
        },
        Case {
            name: "neg_write_half",
            should_verify: false,
            dynamic: true,
            source: r#"
                field v: Int
                method bad(c: Ref)
                  requires acc(c.v, 1/2)
                  ensures acc(c.v, 1/2)
                { c.v := 0 }
            "#,
        },
        Case {
            name: "neg_bad_invariant",
            should_verify: false,
            dynamic: true,
            source: r#"
                field v: Int
                method bad(n: Int) returns (i: Int)
                  requires n >= 0
                  ensures i == n
                {
                  i := 0;
                  while (i < n)
                    invariant i <= n + 1
                  { i := i + 2 }
                }
            "#,
        },
    ]
}

/// All cases (positive then negative).
pub fn all_cases() -> Vec<Case> {
    let mut v = positive_cases();
    v.extend(negative_cases());
    v
}

/// The F1 scaling workload: a method that reads and updates `n` distinct
/// objects, with a contract mentioning every field — the destabilized
/// backend handles each read once; the stable baseline mints a witness
/// per read and rescans them at every write.
pub fn scaling_program(n: usize) -> String {
    let mut params = Vec::new();
    let mut req = vec![];
    let mut ens = vec![];
    let mut body = vec![];
    for i in 0..n {
        params.push(format!("c{}: Ref", i));
        req.push(format!("acc(c{}.v)", i));
        ens.push(format!("acc(c{}.v)", i));
        ens.push(format!("c{i}.v == old(c{i}.v) + 1", i = i));
        body.push(format!("c{i}.v := c{i}.v + 1", i = i));
    }
    format!(
        "field v: Int\nmethod bump_all({params})\n  requires {req}\n  ensures {ens}\n{{\n  {body}\n}}\n",
        params = params.join(", "),
        req = req.join(" && "),
        ens = ens.join(" && "),
        body = body.join(";\n  "),
    )
}

/// The F1 chain workload: `n` sequential branches on the *same*
/// transitive-chain condition. Every branch re-poses the same two
/// path-consistency questions — whose answers need a Fourier–Motzkin
/// pass over the whole `x0 < … < x7` chain — so the memoizing solver
/// answers all but the first pair from cache, while the uncached path
/// pays the full theory cost `2n` times.
pub fn chain_program(n: usize) -> String {
    const VARS: usize = 8;
    let params: Vec<String> = (0..VARS).map(|i| format!("x{}: Int", i)).collect();
    let mut req = vec!["acc(c.v)".to_string(), "c.v == 0".to_string()];
    for i in 0..VARS - 1 {
        req.push(format!("x{} < x{}", i, i + 1));
    }
    let block = format!(
        "if (x0 < x{last}) {{ c.v := c.v + 1 }} else {{ c.v := 0 - 1 }}",
        last = VARS - 1
    );
    let body = vec![block; n.max(1)];
    format!(
        "field v: Int\nmethod chain(c: Ref, {params})\n  requires {req}\n  ensures acc(c.v) && c.v == {n}\n{{\n  {body}\n}}\n",
        params = params.join(", "),
        req = req.join(" && "),
        n = n.max(1),
        body = body.join(";\n  "),
    )
}

/// The chaos-suite demo workload: a three-method program whose middle
/// method `diverge` poses one intentionally diverging solver query,
/// flanked by two well-behaved siblings (`before`, `after`).
///
/// `diverge`'s single obligation asks whether `x0 + … + x{k-1} >= 0`
/// follows from `xi == 0 || xi == 1` for each `i`. Refuting the
/// negation forces the DPLL search to close all `2^k` disjunction
/// branches (every leaf is a distinct theory query, so the caches
/// cannot collapse them): branch count grows exponentially in `k`.
/// Under a finite [`crate::Budget::solver_fuel`] smaller than `2^k`
/// the method degrades to a deterministic `Unknown` while `before` and
/// `after` verify bit-identically to a fault-free run — at any thread
/// count.
pub fn diverging_program(k: usize) -> String {
    let k = k.max(1);
    let params: Vec<String> = (0..k).map(|i| format!("x{}: Int", i)).collect();
    let req: Vec<String> = (0..k)
        .map(|i| format!("(x{i} == 0 || x{i} == 1)", i = i))
        .collect();
    let sum: Vec<String> = (0..k).map(|i| format!("x{}", i)).collect();
    format!(
        "field val: Int\n\
         method before(c: Ref)\n  requires acc(c.val)\n  ensures acc(c.val) && c.val == old(c.val) + 1\n{{\n  c.val := c.val + 1\n}}\n\
         method diverge({params})\n  requires {req}\n{{\n  assert {sum} >= 0\n}}\n\
         method after(c: Ref)\n  requires acc(c.val)\n  ensures acc(c.val) && c.val == 0\n{{\n  c.val := 0\n}}\n",
        params = params.join(", "),
        req = req.join(" && "),
        sum = sum.join(" + "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Backend, Verifier};

    #[test]
    fn all_cases_parse() {
        for c in all_cases() {
            let _ = c.program();
        }
    }

    #[test]
    fn positive_cases_verify_on_both_backends() {
        for c in positive_cases() {
            let p = c.program();
            for backend in [Backend::Destabilized, Backend::StableBaseline] {
                let mut v = Verifier::new(&p, backend);
                let r = v.verify_all();
                assert!(
                    r.is_ok(),
                    "case {} failed on {:?}:\n{}",
                    c.name,
                    backend,
                    r.unwrap_err()
                );
            }
        }
    }

    #[test]
    fn negative_cases_fail_on_both_backends() {
        for c in negative_cases() {
            let p = c.program();
            for backend in [Backend::Destabilized, Backend::StableBaseline] {
                let mut v = Verifier::new(&p, backend);
                assert!(
                    v.verify_all().is_err(),
                    "case {} wrongly verified on {:?}",
                    c.name,
                    backend
                );
            }
        }
    }

    #[test]
    fn scaling_program_parses_and_verifies() {
        for n in [1, 2, 4] {
            let src = scaling_program(n);
            let p = parse_program(&src).unwrap();
            let mut v = Verifier::new(&p, Backend::Destabilized);
            assert!(v.verify_all().is_ok(), "scaling n={} failed", n);
            let mut v = Verifier::new(&p, Backend::StableBaseline);
            assert!(v.verify_all().is_ok(), "scaling n={} failed (baseline)", n);
        }
    }

    #[test]
    fn chain_program_parses_and_verifies() {
        use crate::exec::VerifierConfig;
        for n in [1, 2, 8] {
            let src = chain_program(n);
            let p = parse_program(&src).unwrap();
            let mut v = Verifier::new(&p, Backend::Destabilized);
            assert!(v.verify_all().is_ok(), "chain n={} failed", n);
            let mut v = Verifier::new(&p, Backend::StableBaseline);
            assert!(v.verify_all().is_ok(), "chain n={} failed (baseline)", n);
        }
        // The chain re-asks the same branch questions, so the cache
        // should absorb almost all of them.
        let src = chain_program(16);
        let p = parse_program(&src).unwrap();
        let mut v = Verifier::with_config(
            &p,
            Backend::Destabilized,
            VerifierConfig {
                threads: 1,
                ..VerifierConfig::default()
            },
        );
        let stats = v.verify_all().unwrap();
        let s = &stats["chain"];
        assert!(
            s.cache_hits > s.cache_misses,
            "chain should be cache-dominated: {} hits / {} misses",
            s.cache_hits,
            s.cache_misses
        );
    }

    #[test]
    fn baseline_cost_grows_faster() {
        let src = scaling_program(6);
        let p = parse_program(&src).unwrap();
        let mut vd = Verifier::new(&p, Backend::Destabilized);
        let d = vd.verify_all().unwrap();
        let mut vb = Verifier::new(&p, Backend::StableBaseline);
        let b = vb.verify_all().unwrap();
        let ds = &d["bump_all"];
        let bs = &b["bump_all"];
        assert!(bs.witnesses >= 6, "baseline witnesses: {}", bs.witnesses);
        assert!(bs.rebinds > ds.rebinds);
        assert!(bs.obligations > ds.obligations);
    }
}
