//! Well-formedness and type checking for IDF programs.
//!
//! Runs before verification, as in Viper: catches unbound variables,
//! unknown fields and methods, ill-typed expressions, spec-only
//! constructs (`old`, `perm`) in code positions, and arity errors —
//! so the symbolic executor can assume a well-formed program.

use crate::ast::{Assertion, Expr, Method, Op, Program, Span, Stmt, Type};
use std::collections::BTreeMap;
use std::fmt;

/// A well-formedness diagnosis. Diagnoses raised at an AST node that
/// carries a source position (`old`, `perm`, field reads) report it via
/// `span`, like [`crate::parser::ParseError`] does; structural errors
/// (duplicates, arity) stay method-level with [`Span::NONE`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WfError {
    /// The method the error is in (empty for program-level errors).
    pub method: String,
    /// Description.
    pub message: String,
    /// Source position (`Span::NONE` when unknown).
    pub span: Span,
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_known() {
            write!(f, "at {}: ", self.span)?;
        }
        if self.method.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "in method {}: {}", self.method, self.message)
        }
    }
}

impl std::error::Error for WfError {}

/// Where an expression occurs, for spec-only construct checking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Position {
    Code,
    Precondition,
    Postcondition,
    Invariant,
}

impl Position {
    fn allows_old(self) -> bool {
        matches!(self, Position::Postcondition | Position::Invariant)
    }

    fn allows_perm(self) -> bool {
        !matches!(self, Position::Code)
    }
}

struct Checker<'a> {
    program: &'a Program,
    method: String,
    errors: Vec<WfError>,
    scope: BTreeMap<String, Type>,
}

impl<'a> Checker<'a> {
    fn error(&mut self, message: impl Into<String>) {
        self.error_at(message, Span::NONE);
    }

    fn error_at(&mut self, message: impl Into<String>, span: Span) {
        self.errors.push(WfError {
            method: self.method.clone(),
            message: message.into(),
            span,
        });
    }

    /// Infers an expression's type, reporting errors; `None` on failure.
    fn infer(&mut self, e: &Expr, pos: Position) -> Option<Type> {
        match e {
            Expr::Int(_) => Some(Type::Int),
            Expr::Bool(_) => Some(Type::Bool),
            Expr::Null => Some(Type::Ref),
            Expr::Var(x) => match self.scope.get(x) {
                Some(t) => Some(*t),
                None => {
                    self.error(format!("unbound variable {}", x));
                    None
                }
            },
            Expr::Field(recv, f, at) => {
                let rt = self.infer(recv, pos)?;
                if rt != Type::Ref {
                    self.error_at(format!("field access on non-reference {}", recv), *at);
                    return None;
                }
                match self.program.field_type(f) {
                    Some(t) => Some(t),
                    None => {
                        self.error_at(format!("unknown field {}", f), *at);
                        None
                    }
                }
            }
            Expr::Old(inner, at) => {
                if !pos.allows_old() {
                    self.error_at(
                        format!("old({}) outside a postcondition/invariant", inner),
                        *at,
                    );
                }
                self.infer(inner, pos)
            }
            Expr::Perm(recv, f, at) => {
                if !pos.allows_perm() {
                    self.error_at("perm(…) in code position".to_string(), *at);
                }
                let rt = self.infer(recv, pos)?;
                if rt != Type::Ref {
                    self.error_at(format!("perm on non-reference {}", recv), *at);
                }
                if self.program.field_type(f).is_none() {
                    self.error_at(format!("unknown field {}", f), *at);
                }
                // Permission amounts live at the spec level; comparisons
                // against fraction literals are resolved statically.
                Some(Type::Int)
            }
            Expr::Bin(op, a, b) => {
                let ta = self.infer(a, pos);
                let tb = self.infer(b, pos);
                match op {
                    Op::Add | Op::Sub | Op::Mul | Op::Div => {
                        self.expect(ta, Type::Int, a);
                        self.expect(tb, Type::Int, b);
                        Some(Type::Int)
                    }
                    Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                        // perm comparisons are exempt from Int-typing of
                        // the fraction side (n/d is Int-typed anyway).
                        self.expect(ta, Type::Int, a);
                        self.expect(tb, Type::Int, b);
                        Some(Type::Bool)
                    }
                    Op::Eq | Op::Ne => {
                        if let (Some(x), Some(y)) = (ta, tb) {
                            if x != y {
                                self.error(format!(
                                    "equality between {} and {} ({} == {})",
                                    x, y, a, b
                                ));
                            }
                        }
                        Some(Type::Bool)
                    }
                    Op::And | Op::Or => {
                        self.expect(ta, Type::Bool, a);
                        self.expect(tb, Type::Bool, b);
                        Some(Type::Bool)
                    }
                }
            }
            Expr::Not(a) => {
                let t = self.infer(a, pos);
                self.expect(t, Type::Bool, a);
                Some(Type::Bool)
            }
            Expr::Neg(a) => {
                let t = self.infer(a, pos);
                self.expect(t, Type::Int, a);
                Some(Type::Int)
            }
            Expr::Cond(c, t, e2) => {
                let tc = self.infer(c, pos);
                self.expect(tc, Type::Bool, c);
                let tt = self.infer(t, pos)?;
                let te = self.infer(e2, pos)?;
                if tt != te {
                    self.error(format!("conditional branches differ: {} vs {}", tt, te));
                }
                Some(tt)
            }
        }
    }

    fn expect(&mut self, t: Option<Type>, want: Type, at: &Expr) {
        if let Some(t) = t {
            if t != want {
                self.error(format!("expected {} but {} has type {}", want, at, t));
            }
        }
    }

    fn check_assertion(&mut self, a: &Assertion, pos: Position) {
        match a {
            Assertion::Expr(e) => {
                let t = self.infer(e, pos);
                self.expect(t, Type::Bool, e);
            }
            Assertion::Acc(recv, f, q) => {
                let t = self.infer(recv, pos);
                self.expect(t, Type::Ref, recv);
                if self.program.field_type(f).is_none() {
                    self.error(format!("unknown field {}", f));
                }
                if !q.is_valid_permission() {
                    self.error(format!("acc fraction {} outside (0, 1]", q));
                }
            }
            Assertion::And(p, q) => {
                self.check_assertion(p, pos);
                self.check_assertion(q, pos);
            }
            Assertion::Implies(c, body) => {
                let t = self.infer(c, pos);
                self.expect(t, Type::Bool, c);
                self.check_assertion(body, pos);
            }
        }
    }

    fn check_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.check_stmt(s);
        }
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl(x, ty, e) => {
                let t = self.infer(e, Position::Code);
                self.expect(t, *ty, e);
                self.scope.insert(x.clone(), *ty);
            }
            Stmt::Assign(x, e) => {
                let t = self.infer(e, Position::Code);
                match self.scope.get(x).copied() {
                    Some(want) => self.expect(t, want, e),
                    None => self.error(format!("assignment to undeclared variable {}", x)),
                }
            }
            Stmt::FieldWrite(recv, f, e) => {
                let rt = self.infer(recv, Position::Code);
                self.expect(rt, Type::Ref, recv);
                match self.program.field_type(f) {
                    Some(want) => {
                        let t = self.infer(e, Position::Code);
                        self.expect(t, want, e);
                    }
                    None => self.error(format!("unknown field {}", f)),
                }
            }
            Stmt::New(x, inits) => {
                for (f, e) in inits {
                    match self.program.field_type(f) {
                        Some(want) => {
                            let t = self.infer(e, Position::Code);
                            self.expect(t, want, e);
                        }
                        None => self.error(format!("unknown field {} in new", f)),
                    }
                }
                match self.scope.get(x) {
                    Some(Type::Ref) => {}
                    Some(t) => self.error(format!("new target {} has type {}", x, t)),
                    None => self.error(format!("new target {} undeclared", x)),
                }
            }
            Stmt::Inhale(a) | Stmt::Exhale(a) | Stmt::Assert(a) => {
                self.check_assertion(a, Position::Invariant);
            }
            Stmt::If(c, t, e) => {
                let tc = self.infer(c, Position::Code);
                self.expect(tc, Type::Bool, c);
                let saved = self.scope.clone();
                self.check_stmts(t);
                self.scope = saved.clone();
                self.check_stmts(e);
                self.scope = saved;
            }
            Stmt::While(c, inv, body) => {
                let tc = self.infer(c, Position::Code);
                self.expect(tc, Type::Bool, c);
                self.check_assertion(inv, Position::Invariant);
                let saved = self.scope.clone();
                self.check_stmts(body);
                self.scope = saved;
            }
            Stmt::Call(targets, m, args) => {
                let Some(callee) = self.program.method(m).cloned() else {
                    self.error(format!("call to unknown method {}", m));
                    return;
                };
                if callee.params.len() != args.len() {
                    self.error(format!(
                        "{} expects {} argument(s), got {}",
                        m,
                        callee.params.len(),
                        args.len()
                    ));
                }
                for ((_, want), a) in callee.params.iter().zip(args.iter()) {
                    let t = self.infer(a, Position::Code);
                    self.expect(t, *want, a);
                }
                if callee.returns.len() != targets.len() {
                    self.error(format!(
                        "{} returns {} value(s), got {} target(s)",
                        m,
                        callee.returns.len(),
                        targets.len()
                    ));
                }
                for ((_, rt), tgt) in callee.returns.iter().zip(targets.iter()) {
                    match self.scope.get(tgt).copied() {
                        Some(have) if have != *rt => {
                            self.error(format!("target {} has type {}, expected {}", tgt, have, rt))
                        }
                        Some(_) => {}
                        None => self.error(format!("call target {} undeclared", tgt)),
                    }
                }
            }
        }
    }
}

fn check_method(program: &Program, m: &Method) -> Vec<WfError> {
    let mut ck = Checker {
        program,
        method: m.name.clone(),
        errors: Vec::new(),
        scope: m
            .params
            .iter()
            .chain(m.returns.iter())
            .map(|(x, t)| (x.clone(), *t))
            .collect(),
    };
    // Duplicate parameter/return names.
    let mut seen = Vec::new();
    for (x, _) in m.params.iter().chain(m.returns.iter()) {
        if seen.contains(&x) {
            ck.error(format!("duplicate parameter/return name {}", x));
        }
        seen.push(x);
    }
    ck.check_assertion(&m.requires, Position::Precondition);
    ck.check_assertion(&m.ensures, Position::Postcondition);
    if let Some(body) = &m.body {
        ck.check_stmts(body);
    }
    ck.errors
}

/// [`check_program`] wrapped in a `wf` span on `collector` — the
/// traced entry point for phase attribution.
///
/// # Errors
///
/// Same as [`check_program`].
pub fn check_program_traced(
    program: &Program,
    collector: &mut daenerys_obs::TraceCollector,
) -> Result<(), Vec<WfError>> {
    let span = collector.span_start("wf");
    let out = check_program(program);
    collector.span_end(span);
    out
}

/// Checks a whole program.
///
/// # Errors
///
/// Returns every diagnosis found (empty never — `Ok(())` means none).
pub fn check_program(program: &Program) -> Result<(), Vec<WfError>> {
    let mut errors = Vec::new();
    // Duplicate field/method names.
    for (i, (f, _)) in program.fields.iter().enumerate() {
        if program.fields[..i].iter().any(|(g, _)| g == f) {
            errors.push(WfError {
                method: String::new(),
                message: format!("duplicate field {}", f),
                span: Span::NONE,
            });
        }
    }
    for (i, m) in program.methods.iter().enumerate() {
        if program.methods[..i].iter().any(|n| n.name == m.name) {
            errors.push(WfError {
                method: String::new(),
                message: format!("duplicate method {}", m.name),
                span: Span::NONE,
            });
        }
        errors.extend(check_method(program, m));
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::all_cases;
    use crate::parser::parse_program;

    fn errors_of(src: &str) -> Vec<String> {
        match check_program(&parse_program(src).unwrap()) {
            Ok(()) => Vec::new(),
            Err(es) => es.into_iter().map(|e| e.message).collect(),
        }
    }

    #[test]
    fn all_case_studies_are_well_formed() {
        for case in all_cases() {
            assert_eq!(
                check_program(&case.program()),
                Ok(()),
                "case {} has wf errors",
                case.name
            );
        }
    }

    #[test]
    fn unbound_variables_are_caught() {
        let es = errors_of("field v: Int method m() { x := 1 }");
        assert!(es.iter().any(|e| e.contains("undeclared variable x")));
    }

    #[test]
    fn unknown_fields_are_caught() {
        let es = errors_of("field v: Int method m(c: Ref) requires acc(c.w) { }");
        assert!(es.iter().any(|e| e.contains("unknown field w")));
    }

    #[test]
    fn type_errors_are_caught() {
        let es = errors_of("field v: Int method m(n: Int) { var b: Bool := n + 1 }");
        assert!(es.iter().any(|e| e.contains("expected Bool")));
        let es = errors_of("field v: Int method m(n: Int, b: Bool) requires n == b { }");
        assert!(es.iter().any(|e| e.contains("equality between")));
    }

    #[test]
    fn spec_only_constructs_in_code_are_caught() {
        let es = errors_of("field v: Int method m(c: Ref) { var t: Int := old(c.v) }");
        assert!(es.iter().any(|e| e.contains("old(")));
    }

    #[test]
    fn spec_only_diagnostics_carry_line_and_column() {
        // `old` in a code position on line 3, `perm` on line 4: each
        // diagnostic must point at its own keyword, not just the method.
        let src = "field v: Int
method m(c: Ref) {
  var t: Int := old(c.v);
  var u: Int := perm(c.v)
}";
        let errs = check_program(&parse_program(src).unwrap()).unwrap_err();
        let old_err = errs
            .iter()
            .find(|e| e.message.contains("old("))
            .expect("old diagnostic");
        assert_eq!((old_err.span.line, old_err.span.col), (3, 17));
        assert!(old_err.to_string().starts_with("at 3:17:"), "{}", old_err);
        let perm_err = errs
            .iter()
            .find(|e| e.message.contains("perm("))
            .expect("perm diagnostic");
        assert_eq!((perm_err.span.line, perm_err.span.col), (4, 17));
        // Unknown fields in specs are positioned too.
        let errs = check_program(
            &parse_program("field v: Int\nmethod m(c: Ref)\n  requires acc(c.v) && c.w == 1\n{ }")
                .unwrap(),
        )
        .unwrap_err();
        let fld = errs
            .iter()
            .find(|e| e.message.contains("unknown field w"))
            .expect("field diagnostic");
        assert_eq!(fld.span.line, 3);
        assert!(fld.span.col > 1);
    }

    #[test]
    fn old_in_precondition_is_caught() {
        let es =
            errors_of("field v: Int method m(c: Ref) requires acc(c.v) && c.v == old(c.v) { }");
        assert!(es.iter().any(|e| e.contains("old(")));
    }

    #[test]
    fn arity_errors_are_caught() {
        let es = errors_of(
            "field v: Int
             method callee(n: Int)
             method m() { call callee(1, 2) }",
        );
        assert!(es.iter().any(|e| e.contains("expects 1 argument")));
    }

    #[test]
    fn bad_fractions_are_caught() {
        let es = errors_of("field v: Int method m(c: Ref) requires acc(c.v, 3/2) { }");
        assert!(es.iter().any(|e| e.contains("outside (0, 1]")));
    }

    #[test]
    fn duplicates_are_caught() {
        let es = errors_of("field v: Int field v: Int method m() { }");
        assert!(es.iter().any(|e| e.contains("duplicate field")));
        let es = errors_of("field v: Int method m() method m()");
        assert!(es.iter().any(|e| e.contains("duplicate method")));
        let es = errors_of("field v: Int method m(x: Int, x: Int) { }");
        assert!(es.iter().any(|e| e.contains("duplicate parameter")));
    }
}
