//! The persisted method → callee-spec dependency graph behind
//! incremental verification at monorepo scale.
//!
//! A method's verdict depends on its own text and its *direct* callees'
//! contracts, so the verdict-store fingerprint alone invalidates a
//! spec edit's direct callers — but only them: a transitive caller's
//! fingerprint is unchanged (its own direct callees' specs did not
//! move). Build-system-grade invalidation wants the conservative
//! closure instead: **a spec change dirties its callers transitively;
//! a body-only change dirties only the method itself.** This module
//! supplies that closure.
//!
//! Per method the graph persists (a) the [interface
//! fingerprint](crate::fingerprint::interface_fingerprint) of its
//! *normalized* signature + contract and (b) its direct-callee edge
//! list. On the next run the engine diffs the stored interface
//! fingerprints against the current program's: every method whose
//! interface moved (or vanished) is a *spec-dirty root*, and the dirty
//! set is the reverse-reachable cone of those roots unioned with the
//! plain fingerprint misses. Methods forced by the cone despite a
//! matching store entry are counted as `dirty_transitive` — the
//! verifier is deterministic, so re-running them reproduces the stored
//! verdict bit for bit and correctness never depends on the graph
//! being present, fresh, or even plausible: a missing or damaged graph
//! only costs extra re-verification.
//!
//! The graph file (`depgraph.jsonl`, one node per line) lives next to
//! the verdict store in the cache directory and is format-independent:
//! migrating the store between JSONL and `DAES1` leaves it alone.

use crate::ast::Program;
use crate::fingerprint::{direct_callees, interface_fingerprint, Fingerprint};
use daenerys_obs::parse_json;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One method's node: its normalized-interface fingerprint and its
/// direct-callee edges (sorted, deduplicated).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DepNode {
    /// Fingerprint of the method's normalized interface (signature +
    /// contract, body dropped) — the value whose movement makes the
    /// method a spec-dirty root.
    pub interface: Fingerprint,
    /// Names the method's body calls directly (the edge list). Empty
    /// for leaves and bodyless methods.
    pub callees: Vec<String>,
}

/// The method → callee-spec dependency graph, keyed by method name.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct DepGraph {
    nodes: BTreeMap<String, DepNode>,
}

impl DepGraph {
    /// The graph file name within the cache directory.
    pub const FILE_NAME: &'static str = "depgraph.jsonl";

    /// An empty graph (no prior run: every fingerprint miss stands on
    /// its own and nothing is transitively forced).
    pub fn new() -> DepGraph {
        DepGraph::default()
    }

    /// Builds the graph of `program`: every declared method is a node
    /// (bodyless methods too — callers depend on their specs), with
    /// edges from [`direct_callees`].
    pub fn of_program(program: &Program) -> DepGraph {
        let mut nodes = BTreeMap::new();
        for m in &program.methods {
            nodes.insert(
                m.name.clone(),
                DepNode {
                    interface: interface_fingerprint(m),
                    callees: direct_callees(m),
                },
            );
        }
        DepGraph { nodes }
    }

    /// The node for `name`, if present.
    pub fn node(&self, name: &str) -> Option<&DepNode> {
        self.nodes.get(name)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Upserts every node of `cur` into `self`, returning `true` when
    /// anything changed. Nodes absent from `cur` are kept: the daemon's
    /// shared store sees many programs, and forgetting one tenant's
    /// edges whenever another tenant verifies would turn every
    /// alternation into a spurious full dirty cone.
    pub fn absorb(&mut self, cur: &DepGraph) -> bool {
        let mut changed = false;
        for (name, node) in &cur.nodes {
            if self.nodes.get(name) != Some(node) {
                self.nodes.insert(name.clone(), node.clone());
                changed = true;
            }
        }
        changed
    }

    /// The *spec-dirty roots* of a run: methods whose interface
    /// fingerprint moved since `prev` — edited specs, plus methods
    /// `prev` never recorded (their callers may hold entries minted
    /// against a `missing:` marker), plus methods `prev` recorded that
    /// `cur` no longer declares (deleted specs dirty their remaining
    /// callers).
    pub fn spec_dirty_roots(prev: &DepGraph, cur: &DepGraph) -> BTreeSet<String> {
        let mut roots = BTreeSet::new();
        for (name, node) in &cur.nodes {
            match prev.nodes.get(name) {
                Some(p) if p.interface == node.interface => {}
                _ => {
                    roots.insert(name.clone());
                }
            }
        }
        for name in prev.nodes.keys() {
            if !cur.nodes.contains_key(name) {
                roots.insert(name.clone());
            }
        }
        roots
    }

    /// The reverse-reachable cone of `roots` in this graph: the roots
    /// themselves plus every method from which a root can be reached
    /// along call edges — exactly the set a build system would dirty
    /// for those spec edits. Root names need not be nodes (a deleted
    /// method still dirties the callers that mention it).
    pub fn reverse_reachable(&self, roots: &BTreeSet<String>) -> BTreeSet<String> {
        // callee → callers, derived on demand (the graph persists
        // forward edges only; the reverse index is cheap and always
        // consistent).
        let mut callers: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (name, node) in &self.nodes {
            for callee in &node.callees {
                callers.entry(callee).or_default().push(name);
            }
        }
        let mut dirty: BTreeSet<String> = roots.clone();
        let mut queue: VecDeque<&str> = roots.iter().map(String::as_str).collect();
        while let Some(name) = queue.pop_front() {
            if let Some(cs) = callers.get(name) {
                for &caller in cs {
                    if dirty.insert(caller.to_string()) {
                        queue.push_back(caller);
                    }
                }
            }
        }
        dirty
    }

    /// A deterministic topological order over `pending` (indices into
    /// `names`): callees before callers, ties broken by program order,
    /// cycles (recursion) falling back to program order for the
    /// strongly-connected remainder. Methods are verified in isolation
    /// against callee *specs*, so this order is a scheduling policy —
    /// warm leaves first — never a correctness requirement.
    pub fn topo_order(&self, names: &[String], pending: &[usize]) -> Vec<usize> {
        let in_pending: BTreeSet<usize> = pending.iter().copied().collect();
        let index_of: BTreeMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        // Edges restricted to the pending subgraph: i depends on j
        // (j first) when i calls j.
        let mut deps: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut rdeps: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut degree: BTreeMap<usize, usize> = pending.iter().map(|&i| (i, 0)).collect();
        for &i in pending {
            if let Some(node) = self.nodes.get(&names[i]) {
                for callee in &node.callees {
                    if let Some(&j) = index_of.get(callee.as_str()) {
                        if j != i && in_pending.contains(&j) {
                            deps.entry(i).or_default().push(j);
                            rdeps.entry(j).or_default().push(i);
                            *degree.get_mut(&i).expect("pending index") += 1;
                        }
                    }
                }
            }
        }
        let mut ready: BTreeSet<usize> = degree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(pending.len());
        let mut emitted: BTreeSet<usize> = BTreeSet::new();
        while let Some(&i) = ready.iter().next() {
            ready.remove(&i);
            order.push(i);
            emitted.insert(i);
            if let Some(callers) = rdeps.get(&i) {
                for &c in callers {
                    let d = degree.get_mut(&c).expect("pending index");
                    *d -= 1;
                    if *d == 0 {
                        ready.insert(c);
                    }
                }
            }
        }
        // Recursion: whatever Kahn could not discharge keeps program
        // order.
        for &i in pending {
            if !emitted.contains(&i) {
                order.push(i);
            }
        }
        order
    }

    /// Loads the graph from `dir` (the cache directory). Missing files
    /// and corrupt lines load as absent nodes — a damaged graph widens
    /// the dirty cone on the next run, never narrows it, because an
    /// absent node is a spec-dirty root by definition.
    pub fn load(dir: &Path) -> DepGraph {
        let mut nodes = BTreeMap::new();
        if let Ok(text) = fs::read_to_string(dir.join(Self::FILE_NAME)) {
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                if let Some((name, node)) = decode_node(line) {
                    nodes.insert(name, node);
                }
            }
        }
        DepGraph { nodes }
    }

    /// Writes the graph to `dir` atomically (temp file + rename), one
    /// node per line in name order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or writing the
    /// file.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        for (name, node) in &self.nodes {
            encode_node(&mut out, name, node);
            out.push('\n');
        }
        let path = dir.join(Self::FILE_NAME);
        let tmp = path.with_extension("jsonl.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, &path)
    }
}

fn encode_node(out: &mut String, name: &str, node: &DepNode) {
    let _ = write!(
        out,
        "{{\"method\":\"{}\",\"iface\":\"{}\",\"callees\":[",
        crate::store::esc(name),
        node.interface
    );
    for (i, callee) in node.callees.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", crate::store::esc(callee));
    }
    out.push_str("]}");
}

fn decode_node(line: &str) -> Option<(String, DepNode)> {
    // Fast path first: a 10k-node graph is 10k lines, and the general
    // JSON parser dominates warm store-open time if it runs per line.
    decode_node_fast(line).or_else(|| decode_node_general(line))
}

/// Zero-tree decoder for the exact shape [`encode_node`] emits. Any
/// deviation (reordered fields, extra whitespace, trailing garbage)
/// returns `None` and defers to the general parser.
fn decode_node_fast(line: &str) -> Option<(String, DepNode)> {
    let rest = line.strip_prefix("{\"method\":\"")?;
    let (name, rest) = scan_json_str(rest)?;
    let rest = rest.strip_prefix(",\"iface\":\"")?;
    let (iface, rest) = scan_json_str(rest)?;
    let interface = Fingerprint::parse(&iface)?;
    let mut rest = rest.strip_prefix(",\"callees\":[")?;
    let mut callees = Vec::new();
    if !rest.starts_with(']') {
        loop {
            rest = rest.strip_prefix('"')?;
            let (callee, after) = scan_json_str(rest)?;
            callees.push(callee);
            match after.strip_prefix(',') {
                Some(next) => rest = next,
                None => {
                    rest = after;
                    break;
                }
            }
        }
    }
    let tail = rest.strip_prefix("]}")?;
    tail.is_empty()
        .then_some((name, DepNode { interface, callees }))
}

/// Scans an escaped JSON string body up to its closing quote; returns
/// the unescaped contents and the remainder *after* the quote. Byte
/// indexing is safe: the scanner only splits at ASCII `"`/`\` bytes,
/// which never occur inside a multi-byte UTF-8 sequence.
fn scan_json_str(s: &str) -> Option<(String, &str)> {
    let bytes = s.as_bytes();
    let mut out = String::new();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                out.push_str(&s[start..i]);
                return Some((out, &s[i + 1..]));
            }
            b'\\' => {
                out.push_str(&s[start..i]);
                let esc = *bytes.get(i + 1)?;
                i += 2;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = s.get(i..i + 4)?;
                        out.push(char::from_u32(u32::from_str_radix(hex, 16).ok()?)?);
                        i += 4;
                    }
                    _ => return None,
                }
                start = i;
            }
            _ => i += 1,
        }
    }
    None
}

fn decode_node_general(line: &str) -> Option<(String, DepNode)> {
    let json = parse_json(line).ok()?;
    let obj = json.as_obj()?;
    let name = obj.get("method")?.as_str()?.to_string();
    let interface = Fingerprint::parse(obj.get("iface")?.as_str()?)?;
    let callees = obj
        .get("callees")?
        .as_arr()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Option<Vec<String>>>()?;
    Some((name, DepNode { interface, callees }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use std::path::PathBuf;

    const SRC: &str = "field val: Int
         method leaf(n: Int) returns (r: Int)
           requires n >= 0
           ensures r >= n
         { r := n }
         method mid(n: Int) returns (r: Int)
           requires n >= 0
           ensures r >= n
         { var t: Int := 0; call t := leaf(n); r := t }
         method top(n: Int) returns (r: Int)
           requires n >= 0
           ensures r >= n
         { var t: Int := 0; call t := mid(n); r := t }
         method lone(n: Int) returns (r: Int)
           requires n >= 0
           ensures r >= n
         { r := n }";

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("daenerys-depgraph-{}-{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn roots_of(prev_src: &str, cur_src: &str) -> BTreeSet<String> {
        let prev = DepGraph::of_program(&parse_program(prev_src).unwrap());
        let cur = DepGraph::of_program(&parse_program(cur_src).unwrap());
        DepGraph::spec_dirty_roots(&prev, &cur)
    }

    fn set(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn graph_extraction_records_interfaces_and_edges() {
        let g = DepGraph::of_program(&parse_program(SRC).unwrap());
        assert_eq!(g.len(), 4);
        assert_eq!(g.node("mid").unwrap().callees, vec!["leaf".to_string()]);
        assert!(g.node("leaf").unwrap().callees.is_empty());
        assert_ne!(
            g.node("leaf").unwrap().interface,
            g.node("mid").unwrap().interface,
            "different names give different interfaces"
        );
        assert_eq!(
            g.node("leaf").unwrap().interface.to_string().len(),
            32,
            "interfaces render as full fingerprints"
        );
    }

    #[test]
    fn body_edits_produce_no_roots() {
        let edited = SRC.replace("{ r := n }", "{ r := n + 0 }");
        assert!(roots_of(SRC, &edited).is_empty());
    }

    #[test]
    fn spec_edits_root_exactly_the_edited_method() {
        let edited = SRC.replace(
            "method mid(n: Int) returns (r: Int)\n           requires n >= 0\n           ensures r >= n",
            "method mid(n: Int) returns (r: Int)\n           requires n >= 0\n           ensures r >= n && r >= 0",
        );
        assert_eq!(roots_of(SRC, &edited), set(&["mid"]));
    }

    #[test]
    fn deleted_and_new_methods_are_roots() {
        let mut lines: Vec<&str> = SRC.lines().collect();
        lines.truncate(lines.len() - 4); // drop `lone`
        let smaller = lines.join("\n");
        assert_eq!(roots_of(SRC, &smaller), set(&["lone"]));
        assert_eq!(roots_of(&smaller, SRC), set(&["lone"]));
    }

    #[test]
    fn reverse_reachable_is_the_transitive_caller_cone() {
        let g = DepGraph::of_program(&parse_program(SRC).unwrap());
        assert_eq!(
            g.reverse_reachable(&set(&["leaf"])),
            set(&["leaf", "mid", "top"]),
            "a leaf spec edit dirties the whole caller chain"
        );
        assert_eq!(g.reverse_reachable(&set(&["top"])), set(&["top"]));
        assert_eq!(g.reverse_reachable(&set(&["lone"])), set(&["lone"]));
        assert_eq!(
            g.reverse_reachable(&set(&["gone"])),
            set(&["gone"]),
            "non-node roots pass through (deleted methods)"
        );
    }

    #[test]
    fn topo_order_puts_callees_first_and_is_total() {
        let g = DepGraph::of_program(&parse_program(SRC).unwrap());
        let names: Vec<String> = ["leaf", "mid", "top", "lone"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        // Pending in caller-first order: topo must flip it.
        let order = g.topo_order(&names, &[2, 1, 0, 3]);
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert_eq!(order.len(), 4);
        assert!(pos(0) < pos(1) && pos(1) < pos(2), "callees come first");
    }

    #[test]
    fn topo_order_tolerates_recursion() {
        let src = "method a(n: Int) returns (r: Int)
               requires n >= 0 ensures r >= 0
             { var t: Int := 0; call t := b(n); r := t }
             method b(n: Int) returns (r: Int)
               requires n >= 0 ensures r >= 0
             { var t: Int := 0; call t := a(n); r := t }";
        let g = DepGraph::of_program(&parse_program(src).unwrap());
        let names = vec!["a".to_string(), "b".to_string()];
        assert_eq!(
            g.topo_order(&names, &[0, 1]),
            vec![0, 1],
            "a cycle falls back to program order"
        );
    }

    #[test]
    fn save_load_roundtrips_and_damage_is_tolerated() {
        let dir = temp_dir("roundtrip");
        let g = DepGraph::of_program(&parse_program(SRC).unwrap());
        g.save(&dir).unwrap();
        assert_eq!(DepGraph::load(&dir), g);
        // Corrupt one line: that node vanishes (becoming a dirty root
        // next run); the rest load.
        let path = dir.join(DepGraph::FILE_NAME);
        let text = fs::read_to_string(&path).unwrap();
        let mangled: Vec<String> = text
            .lines()
            .map(|l| {
                if l.starts_with("{\"method\":\"mid\"") {
                    "not json".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect();
        fs::write(&path, mangled.join("\n")).unwrap();
        let reloaded = DepGraph::load(&dir);
        assert_eq!(reloaded.len(), 3);
        assert!(reloaded.node("mid").is_none());
        assert!(reloaded.node("top").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn absorb_upserts_without_forgetting() {
        let g1 = DepGraph::of_program(&parse_program(SRC).unwrap());
        let other = "method unrelated(n: Int) returns (r: Int)
             requires n >= 0 ensures r >= 0 { r := n }";
        let g2 = DepGraph::of_program(&parse_program(other).unwrap());
        let mut merged = g1.clone();
        assert!(merged.absorb(&g2), "new nodes change the graph");
        assert_eq!(merged.len(), 5);
        assert!(merged.node("top").is_some(), "old tenants are kept");
        assert!(!merged.absorb(&g2), "absorbing again is a no-op");
    }
}
