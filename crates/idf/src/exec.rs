//! The symbolic-execution verifier, with two backends.
//!
//! * [`Backend::Destabilized`] — the Daenerys way: heap-dependent
//!   expressions in specifications are evaluated *directly* against the
//!   symbolic heap; a field read costs one chunk lookup.
//! * [`Backend::StableBaseline`] — the classical stable-Iris encoding:
//!   specifications cannot mention the heap, so every field read in a
//!   spec is routed through an explicitly minted *witness* symbol, the
//!   witness bindings must be re-derived at every spec boundary, and
//!   every heap write triggers an invalidation scan over the live
//!   witnesses. The extra obligations, solver queries, and symbols are
//!   the measurable price of stability (experiments T1 and F1).
//!
//! The execution itself is standard Viper-style forward symbolic
//! execution: a symbolic store, a path condition, and a heap of
//! permission chunks; `inhale`/`exhale` produce and consume assertions;
//! loops are cut by invariants; calls by contracts.
//!
//! Performance architecture (see DESIGN.md): symbolic values are
//! hash-consed [`TermId`]s into a per-verifier [`TermArena`]; chunk
//! stores are `Rc`-shared so exhale/`old` snapshots are O(1); and
//! [`Verifier::verify_all`] fans methods out across OS threads, each
//! method verified in an isolated arena + solver so results and
//! statistics are bit-identical at any thread count.

use crate::ast::{fraction_literal, Assertion, Expr, Op, Program, Stmt, Type};
use crate::budget::{Budget, BudgetAxis, FaultKind, FaultPlan};
use crate::diag::{self, FailureReport, QueryCost, QueryLog};
use crate::smt::{Answer, Solver, SolverCore};
use crate::stability::{self, StabilityClass};
use crate::sym::{Sort, Sym, SymSupply, Term, TermArena, TermId, Witness};
use daenerys_algebra::Q;
use daenerys_obs::{Event, MetricsRegistry, TraceCollector, TraceHandle, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Which verification backend to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Heap-dependent specs evaluated directly (the paper's logic).
    Destabilized,
    /// Classical stable encoding with explicit witnesses.
    StableBaseline,
}

/// Tuning knobs for the verifier pipeline.
///
/// The *performance* knobs (`threads`, `cache`) change cost, never
/// answers: outcomes and normalized statistics are identical for every
/// setting. The *resilience* knobs (`budget`, `faults`) can degrade a
/// method's verdict to [`Verdict::Unknown`] or
/// [`Verdict::CrashedInternal`] — but deterministically (the
/// wall-clock deadline excepted), and never for sibling methods: each
/// method is verified in isolation, so a fault or exhausted budget in
/// one method leaves every other verdict bit-identical at any thread
/// count.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifierConfig {
    /// Worker threads for [`Verifier::verify_all`]; `0` means one per
    /// available CPU.
    pub threads: usize,
    /// Whether the solver's memo layers (query + theory cache) are
    /// consulted.
    pub cache: bool,
    /// Per-method resource budget (default: unlimited on every axis).
    pub budget: Budget,
    /// Deterministic fault-injection plan for chaos testing (default:
    /// empty — no faults).
    pub faults: FaultPlan,
    /// Retry a budget-exhausted method once with a doubled
    /// ([`Budget::escalated`]) budget before settling on `Unknown`
    /// (default: `true`; a no-op under the unlimited budget).
    pub retry_unknown: bool,
    /// Canonicalize terms at intern time (constant folding, commuted
    /// argument ordering, neutral/absorbing-element elimination) so
    /// equal obligations hash-cons to the same term (default: `true`).
    pub simplify: bool,
    /// Enable the clause-learning solver core: unit propagation,
    /// pure-literal elimination, and conflict clauses retained across
    /// queries within a method (default: `true`). Off reproduces the
    /// naive DPLL bit for bit.
    pub learn: bool,
    /// Fail any method whose specification contains an assertion the
    /// static stability analyzer classifies
    /// [`StabilityClass::Unstable`] (default: `false`). This is an
    /// *answer-affecting* knob and is part of the incremental
    /// fingerprint.
    pub deny_unstable: bool,
    /// Which search core the solver runs (default: [`SolverCore::Cdcl`];
    /// `--solver=dpll` selects the legacy case-splitting core). Both
    /// cores answer identically on the supported fragment, but the
    /// selector is answer-affecting in principle and is part of the
    /// incremental fingerprint.
    pub solver: SolverCore,
    /// Attach rendered per-finding provenance to `stability.classify`
    /// trace events (default: `false`). Cost only, never answers.
    pub explain_stability: bool,
    /// Directory of the persistent incremental verdict store. `Some`
    /// turns on incremental verification: methods whose semantic
    /// fingerprint matches a prior `Verified`/`Failed` entry are not
    /// re-verified (default: `None` — every method is verified).
    pub cache_dir: Option<std::path::PathBuf>,
    /// On-disk encoding for the verdict store (default: `None` —
    /// auto-detect whatever [`VerifierConfig::cache_dir`] already
    /// holds, with fresh directories starting in the sharded `DAES1`
    /// binary format). Cost only: the encoding never changes answers
    /// and is excluded from the incremental fingerprint.
    pub store_format: Option<crate::store::StoreFormat>,
    /// The flight recorder (default: disabled — zero overhead).
    /// Workers buffer events per method and [`Verifier::verify_all`]'s
    /// merge path emits them in program order, so traces are
    /// deterministic at any thread count.
    pub trace: TraceHandle,
}

impl Default for VerifierConfig {
    fn default() -> VerifierConfig {
        VerifierConfig {
            threads: 0,
            cache: true,
            budget: Budget::UNLIMITED,
            faults: FaultPlan::default(),
            retry_unknown: true,
            simplify: true,
            learn: true,
            deny_unstable: false,
            solver: SolverCore::default(),
            explain_stability: false,
            cache_dir: None,
            store_format: None,
            trace: TraceHandle::disabled(),
        }
    }
}

impl VerifierConfig {
    /// The actual fan-out width `threads == 0` resolves to.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

/// A permission chunk `acc(recv.field, perm)` with the value `value`.
#[derive(Clone, PartialEq, Debug)]
pub struct Chunk {
    /// Receiver reference (interned).
    pub recv: TermId,
    /// Field name.
    pub field: String,
    /// Permission amount.
    pub perm: Q,
    /// Current symbolic value (interned).
    pub value: TermId,
}

/// One proof obligation and its outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Obligation {
    /// What had to be proved.
    pub description: String,
    /// The solver's verdict (or a structural failure note).
    pub outcome: Answer,
}

/// A verification failure summary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// The failed obligations.
    pub failures: Vec<Obligation>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} failed obligation(s):", self.failures.len())?;
        for o in &self.failures {
            writeln!(f, "  [{:?}] {}", o.outcome, o.description)?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Why a method's verdict is [`Verdict::Unknown`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UnknownReason {
    /// A [`Budget`] axis ran out before verification finished.
    BudgetExhausted {
        /// The exhausted axis.
        axis: BudgetAxis,
        /// Human-readable detail (limit and where it tripped).
        detail: String,
    },
    /// The solver answered `Unknown` on at least one obligation (the
    /// goal left the decidable fragment) without any budget tripping.
    OutOfFragment {
        /// Human-readable detail (how many obligations were unknown).
        detail: String,
    },
    /// The request was refused before any verification work ran — the
    /// daemon's per-tenant admission control rejected it (over its
    /// in-flight cap or aggregate envelope). Never produced by the
    /// in-process verifier itself.
    Admission {
        /// Human-readable detail (which admission limit tripped).
        detail: String,
    },
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::BudgetExhausted { axis, detail } => {
                write!(f, "budget exhausted ({}): {}", axis, detail)
            }
            UnknownReason::OutOfFragment { detail } => {
                write!(f, "out of fragment: {}", detail)
            }
            UnknownReason::Admission { detail } => {
                write!(f, "admission refused: {}", detail)
            }
        }
    }
}

/// The three-valued (plus crash) outcome of verifying one method.
///
/// The lattice is `Verified < Unknown < Failed` in definiteness:
/// `Verified` and `Failed` are definite answers, `Unknown` means the
/// pipeline gave up (budget, fragment) without contradicting either,
/// and `CrashedInternal` records an internal error (a contained panic)
/// that says nothing about the program.
#[derive(Clone, PartialEq, Debug)]
pub enum Verdict {
    /// Every obligation was proved; the method's statistics.
    Verified(VerifyStats),
    /// At least one obligation is definitely violated.
    Failed {
        /// The non-valid obligations (invalid and unknown alike).
        failures: Vec<Obligation>,
        /// Structured diagnostics: the first failure, the symbolic
        /// context it happened in, and the hottest solver queries.
        report: FailureReport,
    },
    /// Verification gave up without a definite answer.
    Unknown {
        /// Why the verdict is unknown.
        reason: UnknownReason,
        /// The non-valid obligations observed before giving up
        /// (includes a synthesized budget-exhaustion obligation).
        failures: Vec<Obligation>,
        /// Structured diagnostics (never empty: at minimum the method
        /// name and the exhaustion/fragment detail).
        report: FailureReport,
    },
    /// The verifier itself panicked on this method; the panic was
    /// contained by per-method isolation and siblings are unaffected.
    CrashedInternal {
        /// The panic payload.
        message: String,
    },
}

impl Verdict {
    /// True for [`Verdict::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, Verdict::Verified(_))
    }

    /// True for an [`Verdict::Unknown`] caused by budget exhaustion
    /// (the retry-eligible case).
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(
            self,
            Verdict::Unknown {
                reason: UnknownReason::BudgetExhausted { .. },
                ..
            }
        )
    }

    /// The [`FailureReport`] attached to a `Failed`/`Unknown` verdict.
    pub fn report(&self) -> Option<&FailureReport> {
        match self {
            Verdict::Failed { report, .. } | Verdict::Unknown { report, .. } => Some(report),
            _ => None,
        }
    }

    /// The verdict with environment-dependent statistics fields zeroed
    /// (see [`VerifyStats::normalized`]) — the form compared by the
    /// determinism tests.
    pub fn normalized(&self) -> Verdict {
        match self {
            Verdict::Verified(s) => Verdict::Verified(s.normalized()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Verified(_) => f.write_str("verified"),
            Verdict::Failed { failures, .. } => {
                write!(f, "failed ({} obligation(s))", failures.len())
            }
            Verdict::Unknown { reason, .. } => write!(f, "unknown: {}", reason),
            Verdict::CrashedInternal { message } => {
                write!(f, "crashed internally: {}", message)
            }
        }
    }
}

/// Statistics for one method verification — the T1/F1 measurements.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VerifyStats {
    /// Total proof obligations discharged.
    pub obligations: usize,
    /// Solver entailment/consistency queries.
    pub solver_queries: usize,
    /// Search branches explored: DPLL search-node entries under the
    /// legacy core, decisions under CDCL.
    pub solver_branches: usize,
    /// CDCL conflicts (0 under the legacy core).
    pub solver_conflicts: usize,
    /// CDCL restarts (Luby schedule; 0 under the legacy core).
    pub solver_restarts: usize,
    /// Literals assigned by unit propagation (0 under the legacy core).
    pub solver_propagations: usize,
    /// Literals assigned by theory propagation (congruence closure and
    /// difference-bound strengthening; 0 under the legacy core).
    pub theory_props: usize,
    /// Solver query-cache hits (whole queries answered from memory).
    pub cache_hits: usize,
    /// Solver query-cache misses.
    pub cache_misses: usize,
    /// Conflict clauses learned by the solver while verifying the
    /// method (the monotone [`Solver::learned_clauses`] delta).
    pub learned_clauses: usize,
    /// Distinct terms interned while verifying the method.
    pub interned_terms: usize,
    /// Symbols minted (includes baseline witnesses).
    pub symbols: usize,
    /// Witness symbols minted by the stable baseline.
    pub witnesses: usize,
    /// Witness re-derivations/invalidation scans (baseline only).
    pub rebinds: usize,
    /// Invalidation-scan solver queries the baseline *skipped* because
    /// the assertion that minted the witness was statically classified
    /// stable (see [`crate::stability`]) — the scan's answer is
    /// discarded either way, so skipping is answer-transparent.
    pub stability_skips: usize,
    /// Symbolic execution states explored.
    pub states: usize,
    /// Budget-exhausted attempts absorbed before this result (1 when
    /// the method only verified after the retry-with-escalated-budget
    /// policy kicked in).
    pub budget_exhausted: usize,
    /// Wall-clock verification time in nanoseconds.
    pub wall_nanos: u64,
    /// Fan-out width of the `verify_all` run that produced the stats
    /// (1 when the method was verified directly).
    pub threads: usize,
}

impl VerifyStats {
    /// Query-cache hit rate in `[0, 1]` (0 when no query missed or
    /// hit the cache).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The stats with environment-dependent fields (wall time, thread
    /// count) zeroed — the form compared for determinism: two runs of
    /// the same program must agree on `normalized()` regardless of
    /// thread count or machine speed.
    pub fn normalized(&self) -> VerifyStats {
        VerifyStats {
            wall_nanos: 0,
            threads: 0,
            ..self.clone()
        }
    }

    /// Accumulates another method's counters (wall times add; the
    /// thread field keeps `self`'s value).
    pub fn merge(&mut self, other: &VerifyStats) {
        self.obligations += other.obligations;
        self.solver_queries += other.solver_queries;
        self.solver_branches += other.solver_branches;
        self.solver_conflicts += other.solver_conflicts;
        self.solver_restarts += other.solver_restarts;
        self.solver_propagations += other.solver_propagations;
        self.theory_props += other.theory_props;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.learned_clauses += other.learned_clauses;
        self.interned_terms += other.interned_terms;
        self.symbols += other.symbols;
        self.witnesses += other.witnesses;
        self.rebinds += other.rebinds;
        self.stability_skips += other.stability_skips;
        self.states += other.states;
        self.budget_exhausted += other.budget_exhausted;
        self.wall_nanos += other.wall_nanos;
    }
}

/// The symbolic state.
///
/// The chunk store is `Rc`-shared: taking the exhale/`old` snapshot a
/// state needs is an `Rc::clone`, and the store is only deep-copied
/// (`Rc::make_mut`) when a path actually writes through it. States
/// never leave the thread that created them, so `Rc` suffices.
#[derive(Clone, Debug)]
struct State {
    store: BTreeMap<String, TermId>,
    /// Declared types of in-scope variables (drives havocking).
    var_types: BTreeMap<String, Type>,
    pc: Vec<TermId>,
    chunks: Rc<Vec<Chunk>>,
    /// Pre-state chunks for `old(…)` (method entry or call site).
    old: Rc<Vec<Chunk>>,
    /// Baseline: live witnesses minted for spec-level field reads.
    witnesses: Vec<Witness>,
}

/// The symbolic context captured at the first failing obligation —
/// the raw material of a [`FailureReport`].
#[derive(Debug, Default)]
struct FailureCtx {
    chunks: Vec<String>,
    path_condition: Vec<String>,
}

/// How the fan-out engine reaches the persistent verdict store.
enum StoreAccess<'a> {
    /// No [`VerifierConfig::cache_dir`]: verdicts are not persisted.
    None,
    /// The CLI path: this run owns the store, records in memory, and
    /// compacts to disk once at the end.
    Owned(crate::store::VerdictStore),
    /// The daemon path: a warm store shared across concurrent
    /// sessions. The lock is held only per-lookup and per-record;
    /// records append durably so a killed daemon loses at most one
    /// verdict.
    Shared(&'a std::sync::Mutex<crate::store::VerdictStore>),
}

/// Locks a shared store, tolerating poisoning: the store's file format
/// is valid line-by-line, so a panic mid-record cannot leave the map
/// in a state worth refusing.
fn lock_store(
    m: &std::sync::Mutex<crate::store::VerdictStore>,
) -> std::sync::MutexGuard<'_, crate::store::VerdictStore> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl StoreAccess<'_> {
    /// True when verdicts are being restored/recorded at all.
    fn is_present(&self) -> bool {
        !matches!(self, StoreAccess::None)
    }

    /// The stored verdict for `method` under exactly `fp`, cloned out
    /// so no lock outlives the call.
    fn lookup(&self, method: &str, fp: crate::fingerprint::Fingerprint) -> Option<Verdict> {
        match self {
            StoreAccess::None => None,
            StoreAccess::Owned(s) => s.lookup(method, fp).cloned(),
            StoreAccess::Shared(m) => lock_store(m).lookup(method, fp).cloned(),
        }
    }

    /// Records a verdict (best-effort on the durable path: an
    /// unwritable cache directory costs future reuse, never
    /// correctness).
    fn record(&mut self, method: &str, fp: crate::fingerprint::Fingerprint, verdict: &Verdict) {
        match self {
            StoreAccess::None => {}
            StoreAccess::Owned(s) => {
                s.record(method, fp, verdict);
            }
            StoreAccess::Shared(m) => {
                let _ = lock_store(m).record_durable(method, fp, verdict);
            }
        }
    }

    /// A clone of the persisted dependency graph as of the last run
    /// (the "previous" side of spec-dirtiness planning), taken before
    /// this run's nodes are absorbed.
    fn graph_snapshot(&self) -> Option<crate::depgraph::DepGraph> {
        match self {
            StoreAccess::None => None,
            StoreAccess::Owned(s) => Some(s.graph().clone()),
            StoreAccess::Shared(m) => Some(lock_store(m).graph().clone()),
        }
    }

    /// Upserts the current program's dependency nodes into the store's
    /// graph (in memory; persisted at [`StoreAccess::finish`] so a run
    /// killed mid-verify re-plans from the *old* interfaces).
    fn absorb_graph(&mut self, cur: &crate::depgraph::DepGraph) {
        match self {
            StoreAccess::None => {}
            StoreAccess::Owned(s) => s.absorb_graph(cur),
            StoreAccess::Shared(m) => lock_store(m).absorb_graph(cur),
        }
    }

    /// End-of-run persistence: the owned path compacts to disk (graph
    /// included); the shared path already appended verdicts durably
    /// and only flushes the graph here.
    fn finish(self) {
        match self {
            StoreAccess::None => {}
            StoreAccess::Owned(s) => {
                let _ = s.save();
            }
            StoreAccess::Shared(m) => {
                let _ = lock_store(m).persist_graph();
            }
        }
    }
}

/// The outcome of verifying one method in isolation. Trace events and
/// metrics ride along so the fan-out can merge them in program order.
struct MethodOutcome {
    verdict: Verdict,
    obligations: Vec<Obligation>,
    events: Vec<Event>,
    metrics: MetricsRegistry,
}

/// The verifier for one program.
#[derive(Debug)]
pub struct Verifier<'a> {
    program: &'a Program,
    backend: Backend,
    config: VerifierConfig,
    solver: Solver,
    supply: SymSupply,
    arena: TermArena,
    obligations: Vec<Obligation>,
    stats: VerifyStats,
    /// Budget bookkeeping for the method currently being verified.
    method_started: Instant,
    method_states_base: usize,
    exhausted: Option<(BudgetAxis, String)>,
    /// Active injected faults for the current method.
    fault_exhaust: Option<BudgetAxis>,
    fault_panic_at_state: Option<usize>,
    /// Per-method trace buffer (disabled unless the config's
    /// [`TraceHandle`] is enabled).
    collector: TraceCollector,
    /// The current method's most expensive solver queries.
    query_log: QueryLog,
    /// Context captured at the current method's first failure.
    failure_ctx: Option<FailureCtx>,
    /// Whether the top-level spec assertion currently being produced or
    /// consumed was classified stable by the static analyzer — baseline
    /// witnesses minted under it are exempt from FieldWrite
    /// invalidation scans (set at each spec boundary, see
    /// [`Verifier::enter_spec`]).
    spec_scan_exempt: bool,
    /// How many methods the last `verify_all`/`verify_all_verdicts`
    /// run actually re-verified (`None` before any run, or when the
    /// run was not incremental).
    reverified: Option<usize>,
    /// Store-plane accounting for the last incremental run (`None`
    /// for non-incremental runs): verdicts served from the store,
    /// genuine fingerprint misses, and matching entries discarded
    /// because a transitive callee's spec changed.
    store_hits: Option<usize>,
    store_misses: Option<usize>,
    store_dirty_transitive: Option<usize>,
    /// Names of the methods the last incremental run re-verified, in
    /// program order — the dirty cone a front end (watch mode) prints.
    reverified_names: Option<Vec<String>>,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier for `program` using `backend` and the default
    /// configuration (caching on, one thread per CPU).
    pub fn new(program: &'a Program, backend: Backend) -> Verifier<'a> {
        Verifier::with_config(program, backend, VerifierConfig::default())
    }

    /// Creates a verifier with an explicit [`VerifierConfig`].
    pub fn with_config(
        program: &'a Program,
        backend: Backend,
        config: VerifierConfig,
    ) -> Verifier<'a> {
        let mut solver = Solver::new();
        solver.cache_enabled = config.cache;
        solver.learn_enabled = config.learn;
        solver.core = config.solver;
        let mut arena = TermArena::new();
        arena.set_simplify(config.simplify);
        let collector = config.trace.collector();
        Verifier {
            program,
            backend,
            config,
            solver,
            supply: SymSupply::new(),
            arena,
            obligations: Vec::new(),
            stats: VerifyStats::default(),
            method_started: Instant::now(),
            method_states_base: 0,
            exhausted: None,
            fault_exhaust: None,
            fault_panic_at_state: None,
            collector,
            query_log: QueryLog::default(),
            failure_ctx: None,
            spec_scan_exempt: false,
            reverified: None,
            store_hits: None,
            store_misses: None,
            store_dirty_transitive: None,
            reverified_names: None,
        }
    }

    /// How many methods the last `verify_all`/`verify_all_verdicts`
    /// run re-verified, when it was incremental
    /// ([`VerifierConfig::cache_dir`] set): methods restored from the
    /// verdict store are not counted. `None` before any run or for
    /// non-incremental runs (which always re-verify everything).
    pub fn methods_reverified(&self) -> Option<usize> {
        self.reverified
    }

    /// Methods whose verdict the last incremental run served straight
    /// from the store (fingerprint matched and the dependency graph
    /// had no objection). `None` for non-incremental runs.
    pub fn store_hits(&self) -> Option<usize> {
        self.store_hits
    }

    /// Methods the last incremental run found no matching store entry
    /// for (first sight, an edit, or an answer-affecting config
    /// change). `None` for non-incremental runs.
    pub fn store_misses(&self) -> Option<usize> {
        self.store_misses
    }

    /// Methods whose stored verdict *matched* but was discarded
    /// because a transitive callee's specification changed — the
    /// dependency graph's conservative dirtiness cone beyond what
    /// direct-callee fingerprints already catch. `None` for
    /// non-incremental runs.
    pub fn store_dirty_transitive(&self) -> Option<usize> {
        self.store_dirty_transitive
    }

    /// The names of the methods the last incremental run re-verified
    /// (the dirty cone), in program order. `None` for non-incremental
    /// runs; empty when the warm store absorbed everything.
    pub fn reverified_methods(&self) -> Option<&[String]> {
        self.reverified_names.as_deref()
    }

    /// Verifies every method with a body; returns per-method stats.
    ///
    /// Methods are verified concurrently across
    /// [`VerifierConfig::effective_threads`] workers. Each method gets
    /// its own arena, solver, and symbol supply, and results are merged
    /// in program order, so obligations, outcomes, and normalized
    /// statistics are byte-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns the combined failures if any obligation does not hold;
    /// a method degraded to [`Verdict::Unknown`] or
    /// [`Verdict::CrashedInternal`] contributes its failure obligations
    /// too (so exhaustion is never mistaken for success). Use
    /// [`Verifier::verify_all_verdicts`] for the per-method
    /// three-valued view.
    pub fn verify_all(&mut self) -> Result<BTreeMap<String, VerifyStats>, VerifyError> {
        let mut out = BTreeMap::new();
        let mut failures = Vec::new();
        for (name, verdict) in self.run_all() {
            match verdict {
                Verdict::Verified(stats) => {
                    out.insert(name, stats);
                }
                Verdict::Failed { failures: f, .. } | Verdict::Unknown { failures: f, .. } => {
                    failures.extend(f);
                }
                Verdict::CrashedInternal { message } => {
                    failures.push(crash_obligation(&name, &message))
                }
            }
        }
        if failures.is_empty() {
            Ok(out)
        } else {
            Err(VerifyError { failures })
        }
    }

    /// Verifies every method with a body and returns each method's
    /// three-valued [`Verdict`].
    ///
    /// Unlike [`Verifier::verify_all`] this never collapses the run
    /// into a single `Result`: a method that panicked internally, blew
    /// its budget, or left the solver's fragment is reported as
    /// `CrashedInternal`/`Unknown` for *that method only*, with every
    /// sibling verdict bit-identical to a fault-free run at any thread
    /// count.
    pub fn verify_all_verdicts(&mut self) -> BTreeMap<String, Verdict> {
        self.run_all().into_iter().collect()
    }

    /// [`Verifier::verify_all_verdicts`] against a *shared* persistent
    /// [`crate::store::VerdictStore`] — the daemon path, where many
    /// concurrent sessions reuse one warm store instead of each
    /// opening [`VerifierConfig::cache_dir`].
    ///
    /// The store lock is held only briefly: once per method at plan
    /// time (fingerprint lookup) and once per definite verdict at
    /// record time, where the verdict is appended durably
    /// ([`crate::store::VerdictStore::record_durable`]) so a killed
    /// daemon loses at most one verdict. A poisoned lock is tolerated
    /// (the store's invariants hold line-by-line).
    pub fn verify_all_verdicts_shared(
        &mut self,
        store: &std::sync::Mutex<crate::store::VerdictStore>,
    ) -> BTreeMap<String, Verdict> {
        self.run_all_with(StoreAccess::Shared(store))
            .into_iter()
            .collect()
    }

    /// The shared fan-out engine behind [`Verifier::verify_all`] and
    /// [`Verifier::verify_all_verdicts`]: verify every method with a
    /// body in isolation (concurrently across
    /// [`VerifierConfig::effective_threads`] workers, each unit behind
    /// `catch_unwind`), then merge obligations and statistics in
    /// program (method-declaration) order.
    fn run_all(&mut self) -> Vec<(String, Verdict)> {
        let store = self
            .config
            .cache_dir
            .as_deref()
            .map(|dir| match self.config.store_format {
                Some(format) => crate::store::VerdictStore::open_with(dir, format),
                None => crate::store::VerdictStore::open(dir),
            });
        if let Some(store) = &store {
            // Surface crash-mid-append damage as counters: a truncated
            // final line costs one verdict, never the store.
            if store.corrupt_lines() > 0 {
                let mut m = daenerys_obs::MetricsRegistry::new();
                m.add("store.corrupt_lines", store.corrupt_lines() as u64);
                if store.truncated_tail() {
                    m.add("store.truncated_tail", 1);
                }
                self.config.trace.merge_metrics(&m);
            }
        }
        let access = match store {
            Some(s) => StoreAccess::Owned(s),
            None => StoreAccess::None,
        };
        self.run_all_with(access)
    }

    /// [`Verifier::run_all`] with the verdict store already resolved:
    /// owned (opened from [`VerifierConfig::cache_dir`]), shared (the
    /// daemon's warm `Mutex`-guarded store), or absent.
    fn run_all_with(&mut self, mut store: StoreAccess<'_>) -> Vec<(String, Verdict)> {
        let names: Vec<String> = self
            .program
            .methods
            .iter()
            .filter(|m| m.body.is_some())
            .map(|m| m.name.clone())
            .collect();

        // Incremental mode: restore every method whose semantic
        // fingerprint matches a stored *definite* verdict; only the
        // rest are scheduled. Fingerprints cover bodies, contracts,
        // direct-callee *normalized interfaces*, and the
        // answer-affecting config knobs (see `fingerprint`), so a
        // restored verdict is the one re-verification would produce.
        //
        // Entries are keyed `{method}@{config-fingerprint}` so runs
        // under different answer-affecting configs (daemon tenants
        // with different budgets, a `--solver` flip) coexist in one
        // store instead of thrashing each other's entries — and
        // tenants with *identical* config share one warm read side.
        let mut fingerprints: Vec<Option<crate::fingerprint::Fingerprint>> =
            vec![None; names.len()];
        let mut keys: Vec<String> = Vec::new();
        let mut restored: Vec<Option<Verdict>> = vec![None; names.len()];
        let mut hits = 0usize;
        let mut misses = 0usize;
        let mut dirty_transitive = 0usize;
        let cur_graph = store
            .is_present()
            .then(|| crate::depgraph::DepGraph::of_program(self.program));
        if let Some(cur) = &cur_graph {
            let cfg_fp = crate::fingerprint::config_fingerprint(self.backend, &self.config);
            keys = names.iter().map(|n| format!("{}@{}", n, cfg_fp)).collect();
            for (i, name) in names.iter().enumerate() {
                let method = self.program.method(name).expect("scheduled methods exist");
                let fp = crate::fingerprint::method_fingerprint(
                    self.program,
                    method,
                    self.backend,
                    &self.config,
                );
                fingerprints[i] = Some(fp);
                restored[i] = store.lookup(&keys[i], fp);
                if restored[i].is_none() {
                    misses += 1;
                }
            }
            // Transitive spec dirtiness: a changed (or new, or
            // deleted) callee *interface* forces every reverse-
            // reachable caller to re-verify, even where its own
            // fingerprint still matches — build-system-grade
            // conservatism on top of the fingerprint plane. The
            // verifier is deterministic, so forced re-verification
            // reproduces the stored verdict bit for bit; a missing or
            // damaged graph only widens this cone (absent nodes are
            // roots), never narrows it.
            if let Some(prev) = store.graph_snapshot() {
                let roots = crate::depgraph::DepGraph::spec_dirty_roots(&prev, cur);
                if !roots.is_empty() {
                    let dirty = cur.reverse_reachable(&roots);
                    for (i, name) in names.iter().enumerate() {
                        if restored[i].is_some() && dirty.contains(name) {
                            restored[i] = None;
                            dirty_transitive += 1;
                        }
                    }
                }
            }
            store.absorb_graph(cur);
            for (i, r) in restored.iter_mut().enumerate() {
                if let Some(v) = r {
                    // Stored failure reports carry the store key;
                    // restore the bare method name so a warm verdict
                    // is bit-identical to a cold one.
                    if let Verdict::Failed { report, .. } = v {
                        report.method = names[i].clone();
                    }
                    hits += 1;
                }
            }
        }
        let mut pending: Vec<usize> = (0..names.len())
            .filter(|&i| restored[i].is_none())
            .collect();
        if let Some(cur) = &cur_graph {
            // Callee-first scheduling: warms the solver's cross-method
            // lemma locality bottom-up. Purely a dispatch order — the
            // program-order merge below keeps results and traces
            // identical whatever the schedule.
            pending = cur.topo_order(&names, &pending);
        }
        self.reverified = store.is_present().then_some(pending.len());
        self.reverified_names = store.is_present().then(|| {
            // Program order, not dispatch order: the cone reads the
            // same at any thread count or schedule.
            let mut sorted = pending.clone();
            sorted.sort_unstable();
            sorted.iter().map(|&i| names[i].clone()).collect()
        });
        self.store_hits = store.is_present().then_some(hits);
        self.store_misses = store.is_present().then_some(misses);
        self.store_dirty_transitive = store.is_present().then_some(dirty_transitive);
        if store.is_present() {
            let mut m = daenerys_obs::MetricsRegistry::new();
            m.add("store.hits", hits as u64);
            m.add("store.misses", misses as u64);
            m.add("store.dirty_transitive", dirty_transitive as u64);
            self.config.trace.merge_metrics(&m);
        }

        let threads = self.config.effective_threads().min(pending.len()).max(1);
        let mut slots: Vec<Option<MethodOutcome>> = Vec::new();
        slots.resize_with(names.len(), || None);

        if threads <= 1 {
            for &i in &pending {
                slots[i] = Some(run_isolated(
                    self.program,
                    self.backend,
                    &self.config,
                    &names[i],
                ));
            }
        } else {
            let program = self.program;
            let backend = self.backend;
            let config = &self.config;
            let names_ref = &names;
            let pending_ref = &pending;
            let outcomes = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        scope.spawn(move || {
                            let mut partial = Vec::new();
                            for (slot, &i) in pending_ref.iter().enumerate() {
                                if slot % threads == t {
                                    partial.push((
                                        i,
                                        run_isolated(program, backend, config, &names_ref[i]),
                                    ));
                                }
                            }
                            partial
                        })
                    })
                    .collect();
                // Workers cannot panic: every per-method unit runs
                // behind `catch_unwind` inside `run_isolated`.
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("verifier worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (i, outcome) in outcomes {
                slots[i] = Some(outcome);
            }
        }

        // Deterministic merge in program (method-declaration) order.
        // Trace events are emitted here too — sequence numbers are
        // stamped on this single-threaded path, so the stream is
        // identical at any thread count.
        let mut out = Vec::with_capacity(names.len());
        for (i, (slot, restored)) in slots.into_iter().zip(restored).enumerate() {
            if let Some(verdict) = restored {
                // Restored methods did no work: nothing merges into the
                // run's aggregate statistics and no trace is emitted.
                out.push((names[i].clone(), verdict));
                continue;
            }
            let outcome = slot.expect("every scheduled method produced an outcome");
            self.obligations.extend(outcome.obligations);
            let mut verdict = outcome.verdict;
            if let Verdict::Verified(stats) = &mut verdict {
                stats.threads = threads;
                self.stats.merge(stats);
            }
            self.config.trace.emit(outcome.events);
            self.config.trace.merge_metrics(&outcome.metrics);
            if let Some(fp) = fingerprints[i] {
                store.record(&keys[i], fp, &verdict);
            }
            out.push((names[i].clone(), verdict));
        }
        store.finish();
        self.config.trace.flush();
        out
    }

    /// Verifies one method.
    ///
    /// # Errors
    ///
    /// Returns the failed obligations; an unknown or bodyless (abstract)
    /// method is reported as a structural failure, not a panic. Budget
    /// exhaustion surfaces as a synthesized `Answer::Unknown`
    /// obligation (see [`Verifier::verify_method_verdict`] for the
    /// structured view).
    pub fn verify_method(&mut self, name: &str) -> Result<VerifyStats, VerifyError> {
        self.verify_method_inner(name).0
    }

    /// Verifies one method and reports the three-valued [`Verdict`].
    ///
    /// Budget exhaustion and out-of-fragment solver answers yield
    /// [`Verdict::Unknown`]; definite violations yield
    /// [`Verdict::Failed`]. (Panic containment lives one level up, in
    /// [`Verifier::verify_all_verdicts`], because it requires an
    /// isolated per-method verifier to discard.)
    pub fn verify_method_verdict(&mut self, name: &str) -> Verdict {
        let (result, exhausted) = self.verify_method_inner(name);
        let report = self.build_failure_report(name, &result, &exhausted);
        classify(result, exhausted, report)
    }

    /// Assembles the [`FailureReport`] for a just-finished method from
    /// the captured failure context and the hot-query log. Returns the
    /// empty report for a clean run (it is dropped by `classify`).
    fn build_failure_report(
        &mut self,
        name: &str,
        result: &Result<VerifyStats, VerifyError>,
        exhausted: &Option<(BudgetAxis, String)>,
    ) -> FailureReport {
        if exhausted.is_none() && result.is_ok() {
            self.failure_ctx = None;
            return FailureReport::default();
        }
        let first_failure = match (exhausted, result) {
            (Some((axis, detail)), _) => format!("budget exhausted ({}): {}", axis, detail),
            (None, Err(e)) => e
                .failures
                .first()
                .map(|o| format!("[{:?}] {}", o.outcome, o.description))
                .unwrap_or_else(|| "failure without a recorded obligation".to_string()),
            (None, Ok(_)) => String::new(),
        };
        let ctx = self.failure_ctx.take().unwrap_or_default();
        FailureReport {
            method: name.to_string(),
            first_failure,
            chunks: ctx.chunks,
            path_condition: ctx.path_condition,
            hot_queries: self.query_log.top(),
        }
    }

    /// The shared engine behind [`Verifier::verify_method`] and
    /// [`Verifier::verify_method_verdict`]: runs the method under the
    /// configured budget and fault plan, returning the classical result
    /// plus the budget-exhaustion reason, if any.
    fn verify_method_inner(
        &mut self,
        name: &str,
    ) -> (
        Result<VerifyStats, VerifyError>,
        Option<(BudgetAxis, String)>,
    ) {
        let started = Instant::now();
        // Install the per-method budget: refuel the solver, (re)anchor
        // the deadline and the state/term baselines.
        self.method_started = started;
        self.method_states_base = self.stats.states;
        self.exhausted = None;
        self.solver.fuel = self.config.budget.solver_fuel;
        self.solver.fuel_exhausted = false;
        // The deadline is also handed to the solver, which polls it
        // inside its conflict loop: a single hard query then returns
        // `Unknown` within a small multiple of the deadline instead of
        // only noticing the overrun at the next statement boundary.
        self.solver.deadline = self
            .config
            .budget
            .deadline_ms
            .map(|ms| started + Duration::from_millis(ms));
        self.solver.deadline_exhausted = false;
        // Learned clauses never outlive the method that produced them:
        // clearing here keeps every method's solver behavior a function
        // of that method alone, preserving the per-method determinism
        // contract at any thread count and under retries.
        self.solver.clear_learned();
        self.arena.set_limit(self.config.budget.max_terms.map(|m| {
            self.arena
                .len()
                .saturating_add(usize::try_from(m).unwrap_or(usize::MAX))
        }));
        // Install the method's injected faults (chaos harness).
        self.solver.unknown_after = None;
        self.fault_exhaust = None;
        self.fault_panic_at_state = None;
        let faults: Vec<FaultKind> = self.config.faults.for_method(name).collect();
        for kind in faults {
            match kind {
                FaultKind::SolverUnknownAfter(n) => {
                    self.solver.unknown_after = Some(self.solver.queries + n);
                }
                FaultKind::ExhaustBudget(axis) => self.fault_exhaust = Some(axis),
                FaultKind::PanicAtState(n) => self.fault_panic_at_state = Some(n),
            }
        }
        // Reset the per-method diagnostics.
        self.failure_ctx = None;
        self.query_log.clear();
        let span = self.collector.span_start(&format!("exec:{}", name));
        let outcome = self.verify_method_body(name, started);
        self.emit_budget_gauges();
        self.collector.span_end(span);
        let exhausted = self.exhausted.take();
        (outcome, exhausted)
    }

    /// Emits one gauge per consumed budget axis (and the configured
    /// limits) at method exit. No-op when tracing is disabled.
    fn emit_budget_gauges(&mut self) {
        if !self.collector.is_enabled() {
            return;
        }
        let states_used = (self.stats.states - self.method_states_base) as u64;
        self.collector.gauge("budget.states_used", states_used);
        self.collector
            .gauge("budget.terms_interned", self.arena.len() as u64);
        if let Some(limit) = self.config.budget.limit(BudgetAxis::SolverFuel) {
            let remaining = self.solver.fuel.unwrap_or(0);
            self.collector
                .gauge("budget.fuel_used", limit.saturating_sub(remaining));
        }
        for axis in BudgetAxis::ALL {
            if let Some(limit) = self.config.budget.limit(axis) {
                self.collector
                    .gauge(&format!("budget.limit.{}", axis), limit);
            }
        }
    }

    fn verify_method_body(
        &mut self,
        name: &str,
        started: Instant,
    ) -> Result<VerifyStats, VerifyError> {
        let Some(method) = self.program.method(name).cloned() else {
            let failure =
                self.oblige_failure(None, format!("cannot verify unknown method {}", name));
            return Err(VerifyError {
                failures: vec![failure],
            });
        };
        let Some(body) = method.body.clone() else {
            let failure = self.oblige_failure(
                None,
                format!(
                    "method {} is abstract (no body) and cannot be verified",
                    name
                ),
            );
            return Err(VerifyError {
                failures: vec![failure],
            });
        };

        let before_queries = self.solver.queries;
        let before_branches = self.solver.branches;
        let before_conflicts = self.solver.conflicts;
        let before_restarts = self.solver.restarts;
        let before_propagations = self.solver.propagations;
        let before_theory_props = self.solver.theory_props;
        let before_hits = self.solver.cache_hits;
        let before_misses = self.solver.cache_misses;
        let before_learned = self.solver.learned_clauses;
        let before_terms = self.arena.len();
        let before_symbols = self.supply.minted();
        let before_obligations = self.obligations.len();
        let stats_base = self.stats.clone();

        // Static stability analysis of the method's spec assertions
        // (pre, post, loop invariants), run before execution so the
        // verdicts can be traced and can gate `deny_unstable`.
        let spec_verdicts = stability::analyze_method(&method);
        if self.collector.is_enabled() {
            for v in &spec_verdicts {
                let mut fields = vec![
                    ("site".to_string(), Value::Str(v.site.to_string())),
                    ("class".to_string(), Value::Str(v.class.to_string())),
                    ("findings".to_string(), Value::UInt(v.findings.len() as u64)),
                ];
                if self.config.explain_stability {
                    let detail = v
                        .findings
                        .iter()
                        .map(|f| f.to_string())
                        .collect::<Vec<_>>()
                        .join("; ");
                    fields.push(("detail".to_string(), Value::Str(detail)));
                }
                self.collector.event("stability.classify", fields);
            }
        }
        if self.config.deny_unstable {
            let failures: Vec<Obligation> = spec_verdicts
                .iter()
                .filter(|v| v.class == StabilityClass::Unstable)
                .map(|v| {
                    self.oblige_failure(None, format!("unstable assertion denied: {}", v.lint()))
                })
                .collect();
            if !failures.is_empty() {
                return Err(VerifyError { failures });
            }
        }

        // Fresh symbols for parameters and returns.
        let mut state = State {
            store: BTreeMap::new(),
            var_types: BTreeMap::new(),
            pc: Vec::new(),
            chunks: Rc::new(Vec::new()),
            old: Rc::new(Vec::new()),
            witnesses: Vec::new(),
        };
        for (x, ty) in method.params.iter().chain(method.returns.iter()) {
            let s = self.fresh(*ty);
            let v = self.arena.sym(s);
            state.store.insert(x.clone(), v);
            state.var_types.insert(x.clone(), *ty);
        }

        // Inhale the precondition, snapshot for old().
        let pre_span = self.collector.span_start("pre");
        let mut states = self.produce_spec(state, &method.requires);
        for s in &mut states {
            s.old = Rc::clone(&s.chunks);
        }
        self.collector.span_end(pre_span);

        // Execute the body.
        let body_span = self.collector.span_start("body");
        let mut finals = Vec::new();
        for s in states {
            finals.extend(self.exec_block(s, &body));
        }
        self.collector.span_end(body_span);

        // Exhale the postcondition on every path.
        let post_span = self.collector.span_start("post");
        for s in finals {
            let _ = self.consume_spec(s, &method.ensures, "postcondition");
        }
        self.collector.span_end(post_span);

        // Fold any budget exhaustion into the obligation trail *before*
        // collecting failures: a truncated run prunes states, so an
        // empty failure list must not read as success.
        self.budget_ok();
        if let Some((axis, detail)) = self.exhausted.clone() {
            self.obligations.push(Obligation {
                description: format!("budget exhausted ({}) verifying {}: {}", axis, name, detail),
                outcome: Answer::Unknown,
            });
        }

        let failed: Vec<Obligation> = self.obligations[before_obligations..]
            .iter()
            .filter(|o| o.outcome != Answer::Valid)
            .cloned()
            .collect();

        let mut stats = VerifyStats {
            obligations: self.obligations.len() - before_obligations,
            solver_queries: self.solver.queries - before_queries,
            solver_branches: self.solver.branches - before_branches,
            solver_conflicts: self.solver.conflicts - before_conflicts,
            solver_restarts: self.solver.restarts - before_restarts,
            solver_propagations: self.solver.propagations - before_propagations,
            theory_props: self.solver.theory_props - before_theory_props,
            cache_hits: self.solver.cache_hits - before_hits,
            cache_misses: self.solver.cache_misses - before_misses,
            learned_clauses: self.solver.learned_clauses - before_learned,
            interned_terms: self.arena.len() - before_terms,
            symbols: self.supply.minted() - before_symbols,
            witnesses: self.stats.witnesses - stats_base.witnesses,
            rebinds: self.stats.rebinds - stats_base.rebinds,
            stability_skips: self.stats.stability_skips - stats_base.stability_skips,
            states: self.stats.states - stats_base.states,
            budget_exhausted: 0,
            wall_nanos: 0,
            threads: 1,
        };
        stats.states += 1;
        stats.wall_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        if self.collector.is_enabled() {
            self.collector.counter("verify.methods", 1);
            self.collector
                .counter("solver.queries", stats.solver_queries as u64);
            self.collector
                .counter("solver.cache_hits", stats.cache_hits as u64);
            self.collector
                .counter("solver.cache_misses", stats.cache_misses as u64);
            self.collector
                .counter("solver.branches", stats.solver_branches as u64);
            self.collector
                .counter("solver.conflict", stats.solver_conflicts as u64);
            self.collector
                .counter("solver.restart", stats.solver_restarts as u64);
            self.collector
                .counter("theory.propagate", stats.theory_props as u64);
            self.collector
                .counter("solver.learned_clauses", stats.learned_clauses as u64);
            self.collector.counter("exec.states", stats.states as u64);
            self.collector
                .counter("stability.skips", stats.stability_skips as u64);
            self.collector
                .counter("exec.obligations", stats.obligations as u64);
            self.collector
                .counter("exec.interned_terms", stats.interned_terms as u64);
        }

        if failed.is_empty() {
            Ok(stats)
        } else {
            Err(VerifyError { failures: failed })
        }
    }

    /// All obligations recorded so far.
    pub fn obligations(&self) -> &[Obligation] {
        &self.obligations
    }

    /// Cooperative budget check, consulted at the symbolic-execution
    /// loop sites. Returns `false` — recording the reason once — when
    /// any axis of the configured [`Budget`] (or an injected
    /// `ExhaustBudget` fault) has tripped; execution then prunes to the
    /// empty state set and the method's verdict degrades to a
    /// deterministic [`Verdict::Unknown`]. Under the default unlimited
    /// budget every check is a no-op.
    fn budget_ok(&mut self) -> bool {
        if self.exhausted.is_some() {
            return false;
        }
        if let Some(axis) = self.fault_exhaust.take() {
            self.exhausted = Some((axis, "injected fault".to_string()));
            return false;
        }
        if self.solver.fuel_exhausted {
            let limit = self.config.budget.solver_fuel.unwrap_or(0);
            let unit = match self.config.solver {
                SolverCore::Cdcl => "conflict+propagation",
                SolverCore::Dpll => "DPLL branch",
            };
            self.exhausted = Some((
                BudgetAxis::SolverFuel,
                format!("{} fuel of {} ran out", unit, limit),
            ));
            return false;
        }
        if self.solver.deadline_exhausted {
            let ms = self.config.budget.deadline_ms.unwrap_or(0);
            self.exhausted = Some((
                BudgetAxis::Deadline,
                format!("deadline of {} ms elapsed mid-query", ms),
            ));
            return false;
        }
        if let Some(max) = self.config.budget.max_states {
            let used = (self.stats.states - self.method_states_base) as u64;
            if used > max {
                self.exhausted =
                    Some((BudgetAxis::States, format!("state cap of {} exceeded", max)));
                return false;
            }
        }
        if self.arena.over_limit() {
            let limit = self.config.budget.max_terms.unwrap_or(0);
            self.exhausted = Some((
                BudgetAxis::Terms,
                format!("interned-term cap of {} exceeded", limit),
            ));
            return false;
        }
        if let Some(ms) = self.config.budget.deadline_ms {
            if self.method_started.elapsed() >= Duration::from_millis(ms) {
                self.exhausted = Some((
                    BudgetAxis::Deadline,
                    format!("deadline of {} ms elapsed", ms),
                ));
                return false;
            }
        }
        true
    }

    fn fresh(&mut self, ty: Type) -> Sym {
        let s = self.supply.fresh();
        let sort = match ty {
            Type::Int => Sort::Int,
            Type::Bool => Sort::Bool,
            Type::Ref => Sort::Ref,
        };
        self.solver.declare(s, sort);
        s
    }

    /// The single entailment gateway: every solver query goes through
    /// here so the flight recorder sees it (site, answer, cache
    /// hit/miss, fuel burned, normalized-path-condition hash) and the
    /// hot-query log can keep the most expensive ones for the
    /// [`FailureReport`]. With tracing off and the log full of hotter
    /// entries, the extra cost is two counter snapshots.
    fn query(&mut self, pc: &[TermId], goal: TermId, site: &str) -> Answer {
        let hits_before = self.solver.cache_hits;
        let branches_before = self.solver.branches;
        let conflicts_before = self.solver.conflicts;
        let propagations_before = self.solver.propagations;
        let learned_before = self.solver.learned_clauses;
        let answer = self.solver.entails(&mut self.arena, pc, goal);
        // Per-query fuel mirrors the budget's unit: conflicts +
        // propagations under CDCL, search-node entries under the
        // legacy DPLL core.
        let fuel = match self.config.solver {
            SolverCore::Cdcl => {
                (self.solver.conflicts - conflicts_before) as u64
                    + (self.solver.propagations - propagations_before) as u64
            }
            SolverCore::Dpll => (self.solver.branches - branches_before) as u64,
        };
        let learned = (self.solver.learned_clauses - learned_before) as u64;
        let traced = self.collector.is_enabled();
        if traced || self.query_log.accepts(fuel) {
            let cache_hit = self.solver.cache_hits > hits_before;
            let hash = diag::pc_hash(pc, goal);
            if self.query_log.accepts(fuel) {
                self.query_log.offer(QueryCost {
                    description: site.to_string(),
                    fuel,
                    cache_hit,
                    learned,
                    pc_hash: hash,
                    answer,
                });
            }
            if traced {
                self.collector.event(
                    "solver.query",
                    vec![
                        ("site".to_string(), Value::Str(site.to_string())),
                        ("answer".to_string(), Value::Str(format!("{:?}", answer))),
                        ("cache_hit".to_string(), Value::Bool(cache_hit)),
                        ("fuel".to_string(), Value::UInt(fuel)),
                        ("learned".to_string(), Value::UInt(learned)),
                        ("pc_hash".to_string(), Value::UInt(hash)),
                    ],
                );
                self.collector.histogram("solver.query_fuel", fuel);
            }
        }
        answer
    }

    /// Branch-feasibility check (`pc ⊭ false`, Unknown kept as
    /// feasible) — the traced equivalent of [`Solver::consistent`].
    fn feasible(&mut self, pc: &[TermId]) -> bool {
        let falsum = self.arena.bool(false);
        self.query(pc, falsum, "branch feasibility") != Answer::Valid
    }

    fn oblige(&mut self, state: &State, goal: TermId, description: String) {
        let outcome = self.query(&state.pc, goal, &description);
        if outcome != Answer::Valid {
            self.note_failure_context(Some(state));
        }
        self.obligations.push(Obligation {
            description,
            outcome,
        });
    }

    fn oblige_failure(&mut self, state: Option<&State>, description: String) -> Obligation {
        self.note_failure_context(state);
        let o = Obligation {
            description,
            outcome: Answer::Invalid,
        };
        self.obligations.push(o.clone());
        o
    }

    /// Snapshots the symbolic context (heap chunks, path condition) at
    /// the method's *first* failure; later failures keep the original
    /// snapshot. A stateless failure site still marks the context as
    /// captured so the report points at the true first failure.
    fn note_failure_context(&mut self, state: Option<&State>) {
        if self.failure_ctx.is_some() {
            return;
        }
        let ctx = match state {
            Some(s) => FailureCtx {
                chunks: s
                    .chunks
                    .iter()
                    .map(|c| {
                        format!(
                            "acc({}.{}, {}) ↦ {}",
                            self.arena.to_expr(c.recv),
                            c.field,
                            c.perm,
                            self.arena.to_expr(c.value)
                        )
                    })
                    .collect(),
                path_condition: s
                    .pc
                    .iter()
                    .map(|&id| self.arena.to_expr(id).to_string())
                    .collect(),
            },
            None => FailureCtx::default(),
        };
        self.failure_ctx = Some(ctx);
    }

    // ---- chunk management ----

    /// Finds a chunk for `recv.field`, by syntactic match first (an id
    /// comparison, thanks to hash-consing), then by provable equality.
    fn find_chunk(&mut self, state: &State, recv: TermId, field: &str) -> Option<usize> {
        if let Some(i) = state
            .chunks
            .iter()
            .position(|c| c.field == field && c.recv == recv)
        {
            return Some(i);
        }
        for i in 0..state.chunks.len() {
            if state.chunks[i].field != field {
                continue;
            }
            let goal = self.arena.eq(state.chunks[i].recv, recv);
            if self.query(&state.pc, goal, "chunk lookup: receiver equality") == Answer::Valid {
                return Some(i);
            }
        }
        None
    }

    /// Permission currently held for `recv.field`.
    fn perm_of(&mut self, state: &State, recv: TermId, field: &str) -> Q {
        match self.find_chunk(state, recv, field) {
            Some(i) => state.chunks[i].perm,
            None => Q::ZERO,
        }
    }

    // ---- expression evaluation ----

    /// Evaluates an expression. Field reads consult the heap; under the
    /// stable baseline each *spec-level* read additionally mints a
    /// witness.
    fn eval(&mut self, state: &mut State, e: &Expr, in_spec: bool) -> TermId {
        match e {
            Expr::Int(n) => self.arena.int(*n),
            Expr::Bool(b) => self.arena.bool(*b),
            Expr::Null => self.arena.null(),
            Expr::Var(x) => match state.store.get(x) {
                Some(v) => *v,
                None => {
                    self.oblige_failure(Some(&*state), format!("use of undeclared variable {}", x));
                    self.arena.bool(false)
                }
            },
            Expr::Field(recv, f, _) => {
                let r = self.eval(state, recv, in_spec);
                match self.find_chunk(state, r, f) {
                    Some(i) => {
                        let value = state.chunks[i].value;
                        if in_spec && self.backend == Backend::StableBaseline {
                            // The stable encoding cannot state `e.f`
                            // directly: mint a witness and bind it.
                            let w = self.fresh(self.field_ty(f));
                            let ws = self.arena.sym(w);
                            let bind = self.arena.eq(ws, value);
                            state.pc.push(bind);
                            state.witnesses.push(Witness {
                                recv: r,
                                field: f.clone(),
                                sym: w,
                                scan_exempt: self.spec_scan_exempt,
                            });
                            self.stats.witnesses += 1;
                            // Deriving the binding is an obligation of
                            // its own in the stable encoding.
                            self.obligations.push(Obligation {
                                description: format!("bind witness for {}", e),
                                outcome: Answer::Valid,
                            });
                            ws
                        } else {
                            value
                        }
                    }
                    None => {
                        self.oblige_failure(
                            Some(&*state),
                            format!("read of {} without permission", e),
                        );
                        self.arena.bool(false)
                    }
                }
            }
            Expr::Old(inner, _) => {
                // Evaluate against the snapshot (an Rc swap, not a copy).
                let saved = std::mem::replace(&mut state.chunks, Rc::clone(&state.old));
                let v = self.eval(state, inner, in_spec);
                state.chunks = saved;
                v
            }
            Expr::Perm(recv, f, _) => {
                // Permission amounts are resolved statically by the
                // verifier; encode as an exact integer pair via scaling
                // — the surrounding comparison handles it (see
                // eval_perm_comparison). Standalone perm() evaluates to
                // an opaque symbol.
                let r = self.eval(state, recv, in_spec);
                let q = self.perm_of(state, r, f);
                // Scale to a fixed denominator grid to stay linear.
                self.arena.int(perm_to_grid(q))
            }
            Expr::Bin(op, a, b) => {
                // perm comparisons get special, exact treatment.
                if let Some(res) = self.eval_perm_comparison(state, *op, a, b, in_spec) {
                    return res;
                }
                let va = self.eval(state, a, in_spec);
                let vb = self.eval(state, b, in_spec);
                match op {
                    Op::Add => self.arena.add(va, vb),
                    Op::Sub => self.arena.sub(va, vb),
                    Op::Mul => self.arena.mul(va, vb),
                    Op::Div => {
                        // Constant fold only; symbolic division is out of
                        // fragment.
                        match (self.arena.node(va), self.arena.node(vb)) {
                            (Term::Int(x), Term::Int(y)) if y != 0 => self.arena.int(x / y),
                            _ => {
                                let s = self.fresh(Type::Int);
                                self.arena.sym(s)
                            }
                        }
                    }
                    Op::Eq => self.arena.eq(va, vb),
                    Op::Ne => {
                        let eq = self.arena.eq(va, vb);
                        self.arena.not(eq)
                    }
                    Op::Lt => self.arena.lt(va, vb),
                    Op::Le => self.arena.le(va, vb),
                    Op::Gt => self.arena.lt(vb, va),
                    Op::Ge => self.arena.le(vb, va),
                    Op::And => self.arena.and(va, vb),
                    Op::Or => self.arena.or(va, vb),
                }
            }
            Expr::Not(a) => {
                let v = self.eval(state, a, in_spec);
                self.arena.not(v)
            }
            Expr::Neg(a) => {
                let v = self.eval(state, a, in_spec);
                let zero = self.arena.int(0);
                self.arena.sub(zero, v)
            }
            Expr::Cond(c, t, el) => {
                let vc = self.eval(state, c, in_spec);
                let vt = self.eval(state, t, in_spec);
                let ve = self.eval(state, el, in_spec);
                self.arena.ite(vc, vt, ve)
            }
        }
    }

    /// `perm(e.f) ⋈ q` with a literal fraction: decided exactly against
    /// the chunk store.
    fn eval_perm_comparison(
        &mut self,
        state: &mut State,
        op: Op,
        a: &Expr,
        b: &Expr,
        in_spec: bool,
    ) -> Option<TermId> {
        let (perm_side, lit_side, flipped) = match (a, b) {
            (Expr::Perm(r, f, _), rhs) => ((r, f), rhs, false),
            (lhs, Expr::Perm(r, f, _)) => ((r, f), lhs, true),
            _ => return None,
        };
        let q_lit = fraction_literal(lit_side)?;
        let r = self.eval(state, perm_side.0, in_spec);
        let held = self.perm_of(state, r, perm_side.1);
        let (lhs, rhs) = if flipped {
            (q_lit, held)
        } else {
            (held, q_lit)
        };
        let truth = match op {
            Op::Eq => lhs == rhs,
            Op::Ne => lhs != rhs,
            Op::Lt => lhs < rhs,
            Op::Le => lhs <= rhs,
            Op::Gt => lhs > rhs,
            Op::Ge => lhs >= rhs,
            _ => return None,
        };
        Some(self.arena.bool(truth))
    }

    fn field_ty(&self, f: &str) -> Type {
        self.program.field_type(f).unwrap_or(Type::Int)
    }

    // ---- produce (inhale) / consume (exhale, assert) ----

    /// Marks the start of a *top-level* spec assertion (contract
    /// conjunct, invariant, inhale/exhale/assert operand): witnesses
    /// minted while it is produced or consumed are exempt from
    /// FieldWrite invalidation scans iff the static analyzer classifies
    /// the whole assertion stable. Classification is a pure AST walk,
    /// so the flag — and with it every skip decision — is deterministic
    /// at any thread count.
    fn enter_spec(&mut self, a: &Assertion) {
        self.spec_scan_exempt = self.backend == Backend::StableBaseline
            && stability::classify(a).class != StabilityClass::Unstable;
    }

    /// [`Verifier::produce`] at a top-level spec boundary.
    fn produce_spec(&mut self, state: State, a: &Assertion) -> Vec<State> {
        self.enter_spec(a);
        self.produce(state, a)
    }

    /// [`Verifier::consume`] at a top-level spec boundary.
    fn consume_spec(&mut self, state: State, a: &Assertion, ctx: &str) -> Vec<State> {
        self.enter_spec(a);
        self.consume(state, a, ctx)
    }

    fn produce(&mut self, mut state: State, a: &Assertion) -> Vec<State> {
        if !self.budget_ok() {
            return Vec::new();
        }
        match a {
            Assertion::Expr(e) => {
                let v = self.eval(&mut state, e, true);
                state.pc.push(v);
                vec![state]
            }
            Assertion::Acc(recv, field, q) => {
                let r = self.eval(&mut state, recv, true);
                // Non-null receiver comes with the permission.
                let null = self.arena.null();
                let eq_null = self.arena.eq(r, null);
                let non_null = self.arena.not(eq_null);
                state.pc.push(non_null);
                match self.find_chunk(&state, r, field) {
                    Some(i) => {
                        let c = &mut Rc::make_mut(&mut state.chunks)[i];
                        c.perm = c.perm + *q;
                    }
                    None => {
                        let w = self.fresh(self.field_ty(field));
                        let value = self.arena.sym(w);
                        Rc::make_mut(&mut state.chunks).push(Chunk {
                            recv: r,
                            field: field.clone(),
                            perm: *q,
                            value,
                        });
                    }
                }
                vec![state]
            }
            Assertion::And(p, q) => {
                let mut out = Vec::new();
                for s in self.produce(state, p) {
                    out.extend(self.produce(s, q));
                }
                out
            }
            Assertion::Implies(cond, body) => {
                let v = self.eval(&mut state, cond, true);
                // Branch on the condition.
                let mut then_state = state.clone();
                then_state.pc.push(v);
                let mut out = Vec::new();
                if self.feasible(&then_state.pc) {
                    out.extend(self.produce(then_state, body));
                }
                let mut else_state = state;
                let nv = self.arena.not(v);
                else_state.pc.push(nv);
                if self.feasible(&else_state.pc) {
                    out.push(else_state);
                }
                out
            }
        }
    }

    /// Consumes an assertion. Per IDF exhale semantics, *pure*
    /// expressions (and `acc` receivers) are evaluated against the heap
    /// as it was when the exhale started, while permissions are
    /// subtracted from the running state. The snapshot is an `Rc`
    /// clone: O(1), no chunk copying.
    fn consume(&mut self, state: State, a: &Assertion, ctx: &str) -> Vec<State> {
        let snapshot = Rc::clone(&state.chunks);
        self.consume_with(state, &snapshot, a, ctx)
    }

    /// Evaluates `e` in `state` with the chunk store temporarily
    /// replaced by the exhale-entry snapshot.
    fn eval_snap(&mut self, state: &mut State, snap: &Rc<Vec<Chunk>>, e: &Expr) -> TermId {
        let saved = std::mem::replace(&mut state.chunks, Rc::clone(snap));
        let v = self.eval(state, e, true);
        state.chunks = saved;
        v
    }

    fn consume_with(
        &mut self,
        mut state: State,
        snap: &Rc<Vec<Chunk>>,
        a: &Assertion,
        ctx: &str,
    ) -> Vec<State> {
        if !self.budget_ok() {
            return Vec::new();
        }
        match a {
            Assertion::Expr(e) => {
                if self.backend == Backend::StableBaseline && e.reads_heap() {
                    // The stable encoding re-derives every witness at
                    // each spec boundary.
                    self.stats.rebinds += e.field_reads();
                }
                let v = self.eval_snap(&mut state, snap, e);
                self.oblige(&state, v, format!("{}: {}", ctx, e));
                vec![state]
            }
            Assertion::Acc(recv, field, q) => {
                let r = self.eval_snap(&mut state, snap, recv);
                match self.find_chunk(&state, r, field) {
                    Some(i) if state.chunks[i].perm >= *q => {
                        self.obligations.push(Obligation {
                            description: format!("{}: exhale acc({}.{}, {})", ctx, recv, field, q),
                            outcome: Answer::Valid,
                        });
                        let chunks = Rc::make_mut(&mut state.chunks);
                        let c = &mut chunks[i];
                        c.perm = c.perm - *q;
                        if !c.perm.is_positive() {
                            chunks.remove(i);
                        }
                    }
                    _ => {
                        self.oblige_failure(
                            Some(&state),
                            format!(
                                "{}: insufficient permission for acc({}.{}, {})",
                                ctx, recv, field, q
                            ),
                        );
                    }
                }
                vec![state]
            }
            Assertion::And(p, q) => {
                let mut out = Vec::new();
                for s in self.consume_with(state, snap, p, ctx) {
                    out.extend(self.consume_with(s, snap, q, ctx));
                }
                out
            }
            Assertion::Implies(cond, body) => {
                let v = self.eval_snap(&mut state, snap, cond);
                let mut then_state = state.clone();
                then_state.pc.push(v);
                let mut out = Vec::new();
                if self.feasible(&then_state.pc) {
                    out.extend(self.consume_with(then_state, snap, body, ctx));
                }
                let mut else_state = state;
                let nv = self.arena.not(v);
                else_state.pc.push(nv);
                if self.feasible(&else_state.pc) {
                    out.push(else_state);
                }
                out
            }
        }
    }

    // ---- statement execution ----

    fn exec_block(&mut self, state: State, stmts: &[Stmt]) -> Vec<State> {
        let mut states = vec![state];
        for s in stmts {
            if self.exhausted.is_some() {
                return Vec::new();
            }
            let mut next = Vec::new();
            for st in states {
                next.extend(self.exec_stmt(st, s));
            }
            states = next;
        }
        states
    }

    fn exec_stmt(&mut self, mut state: State, s: &Stmt) -> Vec<State> {
        self.stats.states += 1;
        if let Some(n) = self.fault_panic_at_state {
            if self.stats.states - self.method_states_base == n {
                panic!("injected fault: panic at execution state {}", n);
            }
        }
        if !self.budget_ok() {
            return Vec::new();
        }
        match s {
            Stmt::VarDecl(x, ty, e) => {
                let v = self.eval(&mut state, e, false);
                state.store.insert(x.clone(), v);
                state.var_types.insert(x.clone(), *ty);
                vec![state]
            }
            Stmt::Assign(x, e) => {
                let v = self.eval(&mut state, e, false);
                state.store.insert(x.clone(), v);
                vec![state]
            }
            Stmt::FieldWrite(recv, field, rhs) => {
                let r = self.eval(&mut state, recv, false);
                let v = self.eval(&mut state, rhs, false);
                match self.find_chunk(&state, r, field) {
                    Some(i) if state.chunks[i].perm >= Q::ONE => {
                        self.obligations.push(Obligation {
                            description: format!("write permission for {}.{}", recv, field),
                            outcome: Answer::Valid,
                        });
                        Rc::make_mut(&mut state.chunks)[i].value = v;
                    }
                    _ => {
                        self.oblige_failure(
                            Some(&state),
                            format!("write to {}.{} without full permission", recv, field),
                        );
                    }
                }
                // The stable baseline scans live witnesses for
                // invalidation on every write. The scan's answer is
                // discarded either way, so for witnesses minted by an
                // assertion the static analyzer proved stable the
                // solver query is skipped outright (counted as a
                // stability skip; the rebind still happened).
                if self.backend == Backend::StableBaseline {
                    let scan: Vec<(TermId, bool)> = state
                        .witnesses
                        .iter()
                        .filter(|w| w.field == *field)
                        .map(|w| (w.recv, w.scan_exempt))
                        .collect();
                    for (wrecv, exempt) in scan {
                        if exempt {
                            self.stats.stability_skips += 1;
                        } else {
                            let goal = self.arena.eq(wrecv, r);
                            let _ = self.query(&state.pc, goal, "witness invalidation scan");
                        }
                        self.stats.rebinds += 1;
                    }
                }
                vec![state]
            }
            Stmt::New(x, fields) => {
                let r = self.fresh(Type::Ref);
                let re = self.arena.sym(r);
                let null = self.arena.null();
                let eq_null = self.arena.eq(re, null);
                let non_null = self.arena.not(eq_null);
                state.pc.push(non_null);
                // Fresh from every existing chunk receiver.
                let existing: Vec<TermId> = state.chunks.iter().map(|c| c.recv).collect();
                for other in existing {
                    let eq_other = self.arena.eq(re, other);
                    let fresh = self.arena.not(eq_other);
                    state.pc.push(fresh);
                }
                for (f, e) in fields {
                    let v = self.eval(&mut state, e, false);
                    Rc::make_mut(&mut state.chunks).push(Chunk {
                        recv: re,
                        field: f.clone(),
                        perm: Q::ONE,
                        value: v,
                    });
                }
                state.store.insert(x.clone(), re);
                state.var_types.insert(x.clone(), Type::Ref);
                vec![state]
            }
            Stmt::Inhale(a) => self.produce_spec(state, a),
            Stmt::Exhale(a) => self.consume_spec(state, a, "exhale"),
            Stmt::Assert(a) => {
                // Assert consumes nothing: check on a copy, keep going
                // with the original chunks.
                let kept = state.clone();
                let _ = self.consume_spec(state, a, "assert");
                vec![kept]
            }
            Stmt::If(c, then_b, else_b) => {
                let v = self.eval(&mut state, c, false);
                let mut out = Vec::new();
                let mut then_state = state.clone();
                then_state.pc.push(v);
                if self.feasible(&then_state.pc) {
                    let span = self.collector.span_start("branch:then");
                    out.extend(self.exec_block(then_state, then_b));
                    self.collector.span_end(span);
                }
                let mut else_state = state;
                let nv = self.arena.not(v);
                else_state.pc.push(nv);
                if self.feasible(&else_state.pc) {
                    let span = self.collector.span_start("branch:else");
                    out.extend(self.exec_block(else_state, else_b));
                    self.collector.span_end(span);
                }
                if self.collector.is_enabled() {
                    self.collector.event(
                        "fork.join",
                        vec![
                            ("stmt".to_string(), Value::Str("if".to_string())),
                            ("states".to_string(), Value::UInt(out.len() as u64)),
                        ],
                    );
                }
                out
            }
            Stmt::While(c, inv, body) => {
                // `old(…)` always refers to the *method* pre-state, as
                // in Viper — including inside loop invariants.
                let entry_old = Rc::clone(&state.old);
                // 1. Exhale the invariant on entry.
                let after_entry = self.consume_spec(state, inv, "loop invariant (entry)");
                // 2. Check the body preserves it: fresh state with inv
                //    and the condition, execute, exhale inv.
                {
                    let span = self.collector.span_start("loop:body");
                    let mut body_state = State {
                        store: after_entry
                            .first()
                            .map(|s| s.store.clone())
                            .unwrap_or_default(),
                        var_types: after_entry
                            .first()
                            .map(|s| s.var_types.clone())
                            .unwrap_or_default(),
                        pc: Vec::new(),
                        chunks: Rc::new(Vec::new()),
                        old: entry_old,
                        witnesses: Vec::new(),
                    };
                    // Havoc assigned locals at their declared types.
                    for x in assigned_vars(body) {
                        let ty = body_state.var_types.get(&x).copied().unwrap_or(Type::Int);
                        let s = self.fresh(ty);
                        let v = self.arena.sym(s);
                        body_state.store.insert(x, v);
                    }
                    let mut produced = self.produce_spec(body_state, inv);
                    for st in &mut produced {
                        let v = self.eval(st, c, false);
                        st.pc.push(v);
                    }
                    let mut after_body = Vec::new();
                    for st in produced {
                        if self.feasible(&st.pc) {
                            after_body.extend(self.exec_block(st, body));
                        }
                    }
                    for st in after_body {
                        let _ = self.consume_spec(st, inv, "loop invariant (preservation)");
                    }
                    self.collector.span_end(span);
                }
                // 3. Continue after the loop: havoc, inhale inv ∧ ¬c.
                let after_span = self.collector.span_start("loop:after");
                let mut out = Vec::new();
                for mut cont in after_entry {
                    for x in assigned_vars(body) {
                        let ty = cont.var_types.get(&x).copied().unwrap_or(Type::Int);
                        let s = self.fresh(ty);
                        let v = self.arena.sym(s);
                        cont.store.insert(x, v);
                    }
                    for mut st in self.produce_spec(cont, inv) {
                        let v = self.eval(&mut st, c, false);
                        let nv = self.arena.not(v);
                        st.pc.push(nv);
                        if self.feasible(&st.pc) {
                            out.push(st);
                        }
                    }
                }
                self.collector.span_end(after_span);
                if self.collector.is_enabled() {
                    self.collector.event(
                        "fork.join",
                        vec![
                            ("stmt".to_string(), Value::Str("while".to_string())),
                            ("states".to_string(), Value::UInt(out.len() as u64)),
                        ],
                    );
                }
                out
            }
            Stmt::Call(targets, mname, args) => {
                let callee = match self.program.method(mname) {
                    Some(m) => m.clone(),
                    None => {
                        self.oblige_failure(
                            Some(&state),
                            format!("call to unknown method {}", mname),
                        );
                        return vec![state];
                    }
                };
                if callee.params.len() != args.len() || callee.returns.len() != targets.len() {
                    self.oblige_failure(Some(&state), format!("arity mismatch calling {}", mname));
                    return vec![state];
                }
                // Bind formals.
                let mut bound: BTreeMap<String, TermId> = BTreeMap::new();
                for ((p, _), a) in callee.params.iter().zip(args.iter()) {
                    let v = self.eval(&mut state, a, false);
                    bound.insert(p.clone(), v);
                }
                // Exhale the precondition with formals substituted via a
                // temporary store.
                let caller_store = state.store.clone();
                let call_snapshot = Rc::clone(&state.chunks);
                state.store = bound.clone();
                let mut after_pre = self.consume_spec(
                    state,
                    &callee.requires,
                    &format!("precondition of {}", mname),
                );
                // Havoc targets, inhale the postcondition.
                let mut out = Vec::new();
                for mut st in after_pre.drain(..) {
                    st.store = bound.clone();
                    for ((r, ty), _) in callee.returns.iter().zip(targets.iter()) {
                        let s = self.fresh(*ty);
                        let v = self.arena.sym(s);
                        st.store.insert(r.clone(), v);
                    }
                    // old() in the callee post refers to the call point.
                    let saved_old = std::mem::replace(&mut st.old, Rc::clone(&call_snapshot));
                    for mut done in self.produce_spec(st, &callee.ensures) {
                        // Restore the caller view.
                        let mut store = caller_store.clone();
                        for ((r, _), t) in callee.returns.iter().zip(targets.iter()) {
                            let v = *done.store.get(r).expect("return bound");
                            store.insert(t.clone(), v);
                        }
                        done.store = store;
                        done.old = Rc::clone(&saved_old);
                        out.push(done);
                    }
                }
                out
            }
        }
    }
}

/// Verifies one method in a verifier of its own — fresh arena, solver,
/// and symbol supply — so outcomes and statistics do not depend on
/// which worker (or how many) ran it.
///
/// The whole unit runs behind `catch_unwind`: a panic (an internal
/// verifier error, injected or real) degrades *this* method to
/// [`Verdict::CrashedInternal`] and cannot take down the sibling
/// methods or the fan-out. A budget-exhausted `Unknown` is retried
/// once with an escalated ([`Budget::escalated`]) budget when
/// [`VerifierConfig::retry_unknown`] is set.
fn run_isolated(
    program: &Program,
    backend: Backend,
    config: &VerifierConfig,
    name: &str,
) -> MethodOutcome {
    let attempt = |cfg: VerifierConfig| -> MethodOutcome {
        match catch_unwind(AssertUnwindSafe(|| {
            let mut v = Verifier::with_config(program, backend, cfg);
            let verdict = v.verify_method_verdict(name);
            let (events, metrics) = v.collector.take();
            (verdict, v.obligations, events, metrics)
        })) {
            Ok((verdict, obligations, events, metrics)) => MethodOutcome {
                verdict,
                obligations,
                events,
                metrics,
            },
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                let obligations = vec![crash_obligation(name, &message)];
                // A crashed method contributes no events: the partial
                // buffer died with its verifier, which keeps the merged
                // stream deterministic (a panic mid-method would
                // otherwise expose scheduling-dependent progress).
                MethodOutcome {
                    verdict: Verdict::CrashedInternal { message },
                    obligations,
                    events: Vec::new(),
                    metrics: MetricsRegistry::new(),
                }
            }
        }
    };

    let first = attempt(config.clone());
    let retry = config.retry_unknown
        && !config.budget.is_unlimited()
        && first.verdict.is_budget_exhausted();
    if !retry {
        return first;
    }
    let mut escalated = config.clone();
    escalated.budget = escalated.budget.escalated();
    let mut second = attempt(escalated);
    if let Verdict::Verified(stats) = &mut second.verdict {
        stats.budget_exhausted += 1;
    }
    second
}

/// Classifies a method run — the classical result plus the
/// budget-exhaustion reason — into a [`Verdict`]. Exhaustion dominates
/// (a truncated run proves nothing either way); then a definitely
/// violated obligation means `Failed`; then any `Unknown` obligation
/// means the goal left the solver's fragment.
fn classify(
    result: Result<VerifyStats, VerifyError>,
    exhausted: Option<(BudgetAxis, String)>,
    report: FailureReport,
) -> Verdict {
    if let Some((axis, detail)) = exhausted {
        let failures = result.err().map(|e| e.failures).unwrap_or_default();
        return Verdict::Unknown {
            reason: UnknownReason::BudgetExhausted { axis, detail },
            failures,
            report,
        };
    }
    match result {
        Ok(stats) => Verdict::Verified(stats),
        Err(e) => {
            if e.failures.iter().any(|o| o.outcome == Answer::Invalid) {
                Verdict::Failed {
                    failures: e.failures,
                    report,
                }
            } else {
                let detail = format!(
                    "{} obligation(s) outside the solver fragment",
                    e.failures.len()
                );
                Verdict::Unknown {
                    reason: UnknownReason::OutOfFragment { detail },
                    failures: e.failures,
                    report,
                }
            }
        }
    }
}

/// The obligation recorded (and reported through [`VerifyError`]) for
/// a method whose verifier panicked.
fn crash_obligation(name: &str, message: &str) -> Obligation {
    Obligation {
        description: format!("internal error verifying {}: {}", name, message),
        outcome: Answer::Invalid,
    }
}

/// Best-effort rendering of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Variables assigned anywhere in a statement list (for loop havoc).
fn assigned_vars(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn go(s: &Stmt, out: &mut Vec<String>) {
        match s {
            Stmt::VarDecl(x, ..) | Stmt::Assign(x, _) | Stmt::New(x, _) if !out.contains(x) => {
                out.push(x.clone());
            }
            Stmt::Call(targets, ..) => {
                for t in targets {
                    if !out.contains(t) {
                        out.push(t.clone());
                    }
                }
            }
            Stmt::If(_, a, b) => {
                for s in a.iter().chain(b.iter()) {
                    go(s, out);
                }
            }
            Stmt::While(_, _, b) => {
                for s in b {
                    go(s, out);
                }
            }
            _ => {}
        }
    }
    for s in stmts {
        go(s, &mut out);
    }
    out
}

/// Converts a permission to the fixed denominator grid used when `perm`
/// escapes a comparison (grid of 1/1024ths).
fn perm_to_grid(q: Q) -> i64 {
    ((q * Q::new(1024, 1)).numer() / (q * Q::new(1024, 1)).denom()) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn verify(src: &str, backend: Backend) -> Result<BTreeMap<String, VerifyStats>, VerifyError> {
        let p = parse_program(src).unwrap();
        let mut v = Verifier::new(&p, backend);
        v.verify_all()
    }

    const INC: &str = r#"
        field val: Int
        method inc(c: Ref)
          requires acc(c.val)
          ensures acc(c.val) && c.val == old(c.val) + 1
        {
          c.val := c.val + 1
        }
    "#;

    #[test]
    fn increments_verify_on_both_backends() {
        assert!(verify(INC, Backend::Destabilized).is_ok());
        assert!(verify(INC, Backend::StableBaseline).is_ok());
    }

    #[test]
    fn baseline_pays_witnesses() {
        let d = verify(INC, Backend::Destabilized).unwrap();
        let b = verify(INC, Backend::StableBaseline).unwrap();
        let ds = &d["inc"];
        let bs = &b["inc"];
        assert_eq!(ds.witnesses, 0);
        assert!(bs.witnesses > 0, "baseline should mint witnesses");
        assert!(bs.obligations > ds.obligations);
    }

    /// The stable spec `requires acc(c.val) && c.val >= 0` mints a
    /// witness whose invalidation scan at the body's field write is
    /// skipped (the static analyzer classified the precondition
    /// framed-stable), while an uncovered read in a statement-level
    /// spec keeps paying the scan query.
    #[test]
    fn stable_specs_skip_invalidation_scans() {
        let stable = r#"
            field val: Int
            method bump(c: Ref)
              requires acc(c.val) && c.val >= 0
              ensures acc(c.val) && c.val == old(c.val) + 1
            {
              c.val := c.val + 1
            }
        "#;
        let b = verify(stable, Backend::StableBaseline).unwrap();
        let bs = &b["bump"];
        assert!(bs.stability_skips > 0, "framed-stable spec should skip");
        assert!(
            bs.rebinds >= bs.stability_skips,
            "skips still count as rebinds"
        );
        // The destabilized backend never scans, hence never skips.
        let d = verify(stable, Backend::Destabilized).unwrap();
        assert_eq!(d["bump"].stability_skips, 0);
        // `inhale c.val >= 0` has no covering acc *within the
        // assertion*: its witness is not exempt and the scan query is
        // still posed.
        let unstable = r#"
            field val: Int
            method bump(c: Ref)
              requires acc(c.val)
              ensures acc(c.val) && c.val == old(c.val) + 1
            {
              inhale c.val >= 0;
              c.val := c.val + 1
            }
        "#;
        let u = verify(unstable, Backend::StableBaseline).unwrap();
        assert_eq!(u["bump"].stability_skips, 0);
        assert!(u["bump"].rebinds > 0);
    }

    #[test]
    fn deny_unstable_gates_unstable_contracts_only() {
        let p = parse_program(
            "field val: Int
             method ok(c: Ref)
               requires acc(c.val) && c.val >= 0
               ensures acc(c.val)
             { c.val := 0 }
             method shaky(c: Ref)
               requires c.val >= 0
               ensures true
             { }",
        )
        .unwrap();
        let config = VerifierConfig {
            deny_unstable: true,
            ..VerifierConfig::default()
        };
        let mut v = Verifier::with_config(&p, Backend::Destabilized, config);
        let verdicts = v.verify_all_verdicts();
        assert!(verdicts["ok"].is_verified());
        match &verdicts["shaky"] {
            Verdict::Failed { failures, .. } => {
                assert!(
                    failures[0]
                        .description
                        .contains("unstable assertion denied"),
                    "{}",
                    failures[0].description
                );
                assert!(
                    failures[0].description.contains("precondition"),
                    "{}",
                    failures[0].description
                );
            }
            other => panic!("expected Failed, got {}", other),
        }
    }

    #[test]
    fn missing_permission_fails() {
        let src = r#"
            field val: Int
            method bad(c: Ref)
              ensures true
            {
              c.val := 1
            }
        "#;
        let e = verify(src, Backend::Destabilized).unwrap_err();
        assert!(e.failures[0]
            .description
            .contains("without full permission"));
    }

    #[test]
    fn wrong_postcondition_fails() {
        let src = r#"
            field val: Int
            method wrong(c: Ref)
              requires acc(c.val)
              ensures acc(c.val) && c.val == old(c.val) + 2
            {
              c.val := c.val + 1
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_err());
        assert!(verify(src, Backend::StableBaseline).is_err());
    }

    #[test]
    fn fractional_read_sharing() {
        let src = r#"
            field val: Int
            method read_twice(c: Ref) returns (r: Int)
              requires acc(c.val, 1/2)
              ensures acc(c.val, 1/2) && r == c.val + c.val
            {
              r := c.val + c.val
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
        assert!(verify(src, Backend::StableBaseline).is_ok());
    }

    #[test]
    fn half_permission_cannot_write() {
        let src = r#"
            field val: Int
            method sneaky(c: Ref)
              requires acc(c.val, 1/2)
              ensures acc(c.val, 1/2)
            {
              c.val := 0
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_err());
    }

    #[test]
    fn permission_introspection() {
        let src = r#"
            field val: Int
            method intro(c: Ref)
              requires acc(c.val, 1/2)
              ensures acc(c.val, 1/2)
            {
              assert perm(c.val) >= 1/2;
              assert perm(c.val) < 1
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
    }

    #[test]
    fn branches_and_conditionals() {
        let src = r#"
            field val: Int
            method absval(c: Ref)
              requires acc(c.val)
              ensures acc(c.val) && c.val >= 0
            {
              if (c.val < 0) { c.val := 0 - c.val } else { }
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
        assert!(verify(src, Backend::StableBaseline).is_ok());
    }

    #[test]
    fn loops_with_invariants() {
        let src = r#"
            field val: Int
            method count_to(n: Int) returns (i: Int)
              requires n >= 0
              ensures i == n
            {
              i := 0;
              while (i < n)
                invariant i <= n && 0 <= i
              { i := i + 1 }
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
    }

    #[test]
    fn bool_loop_variables_havoc_at_their_type() {
        // Regression: loop-modified Bool variables must be havocked as
        // Bool symbols, or the condition becomes ill-sorted and the
        // solver degrades to Unknown.
        let src = r#"
            field v: Int
            method drain(n: Int) returns (r: Int)
              requires n >= 0
              ensures r == 0
            {
              var go: Bool := n > 0;
              r := n;
              while (go)
                invariant r >= 0 && (go ==> r > 0) && (!go ==> r == 0)
              {
                r := r - 1;
                go := r > 0
              }
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
    }

    #[test]
    fn old_in_invariant_refers_to_method_entry() {
        // Regression: old() inside a loop invariant is the *method*
        // pre-state (Viper semantics), not the loop entry.
        let src = r#"
            field v: Int
            method drain_cell(c: Ref)
              requires acc(c.v) && c.v >= 0
              ensures acc(c.v) && c.v == 0
            {
              while (c.v > 0)
                invariant acc(c.v) && c.v >= 0 && c.v <= old(c.v)
              {
                c.v := c.v - 1
              }
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
        assert!(verify(src, Backend::StableBaseline).is_ok());
    }

    #[test]
    fn method_calls_use_contracts() {
        let src = r#"
            field val: Int
            method add(c: Ref, n: Int)
              requires acc(c.val)
              ensures acc(c.val) && c.val == old(c.val) + n
            {
              c.val := c.val + n
            }
            method twice(c: Ref)
              requires acc(c.val)
              ensures acc(c.val) && c.val == old(c.val) + 4
            {
              call add(c, 2);
              call add(c, 2)
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
        assert!(verify(src, Backend::StableBaseline).is_ok());
    }

    #[test]
    fn new_allocates_fresh_objects() {
        let src = r#"
            field val: Int
            method fresh_cell() returns (x: Ref)
              ensures acc(x.val) && x.val == 7
            {
              x := new(val: 7)
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
    }

    #[test]
    fn inhale_exhale_roundtrip() {
        let src = r#"
            field val: Int
            method ghostly(c: Ref)
              requires acc(c.val, 1/2)
              ensures acc(c.val, 1/2)
            {
              inhale acc(c.val, 1/2);
              assert perm(c.val) == 1;
              c.val := 3;
              exhale acc(c.val, 1/2);
              assert perm(c.val) == 1/2
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
    }

    #[test]
    fn abstract_method_reports_instead_of_panicking() {
        let src = r#"
            field val: Int
            method spec_only(c: Ref)
              requires acc(c.val)
              ensures acc(c.val)
        "#;
        let p = parse_program(src).unwrap();
        let mut v = Verifier::new(&p, Backend::Destabilized);
        // verify_all skips bodyless methods entirely…
        assert!(v.verify_all().unwrap().is_empty());
        // …and targeting one directly is a structural failure, not a
        // panic.
        let err = v.verify_method("spec_only").unwrap_err();
        assert!(err.failures[0].description.contains("abstract"));
        let err = v.verify_method("no_such_method").unwrap_err();
        assert!(err.failures[0].description.contains("unknown method"));
    }

    #[test]
    fn verify_all_is_thread_count_invariant() {
        let src = r#"
            field val: Int
            method a(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == old(c.val) + 1
            { c.val := c.val + 1 }
            method b(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 0
            { c.val := 0 }
            method c(n: Int) returns (i: Int) requires n >= 0 ensures i == n
            { i := 0; while (i < n) invariant i <= n && 0 <= i { i := i + 1 } }
        "#;
        let p = parse_program(src).unwrap();
        let run = |threads: usize| {
            let mut v = Verifier::with_config(
                &p,
                Backend::Destabilized,
                VerifierConfig {
                    threads,
                    ..VerifierConfig::default()
                },
            );
            let stats = v.verify_all().unwrap();
            let obligations = v.obligations().to_vec();
            let normalized: BTreeMap<String, VerifyStats> = stats
                .into_iter()
                .map(|(k, s)| (k, s.normalized()))
                .collect();
            (normalized, obligations)
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn failing_method_gets_a_failed_verdict() {
        let src = r#"
            field val: Int
            method bad(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1
            { c.val := 2 }
        "#;
        let p = parse_program(src).unwrap();
        let mut v = Verifier::new(&p, Backend::Destabilized);
        match v.verify_method_verdict("bad") {
            Verdict::Failed { failures, report } => {
                assert!(!failures.is_empty());
                assert!(!report.is_empty(), "Failed verdicts carry diagnostics");
                assert_eq!(report.method, "bad");
                assert!(report.first_failure.contains("postcondition"));
                // The acc conjunct is consumed before the pure
                // conjunct fails, so no chunk is in scope — but the
                // path condition (the non-null receiver) is.
                assert!(report.chunks.is_empty());
                assert!(
                    !report.path_condition.is_empty(),
                    "the failing obligation had a path condition"
                );
                assert!(
                    report.hot_queries.iter().any(|q| q.fuel > 0),
                    "at least one logged query did real work"
                );
            }
            other => panic!("expected Failed, got {}", other),
        }
    }

    #[test]
    fn budget_exhaustion_dominates_a_would_be_failure() {
        // Under an exhausted budget the pipeline prunes states, so a
        // failing method must report Unknown (inconclusive), never a
        // possibly-spurious Failed or Verified.
        let src = r#"
            field val: Int
            method bad(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1
            { c.val := 2 }
        "#;
        let p = parse_program(src).unwrap();
        // A zero-state budget trips on the first statement, before the
        // failing postcondition is ever consumed.
        let config = VerifierConfig {
            budget: Budget::unlimited().with_max_states(0),
            retry_unknown: false,
            ..VerifierConfig::default()
        };
        let mut v = Verifier::with_config(&p, Backend::Destabilized, config);
        match v.verify_method_verdict("bad") {
            Verdict::Unknown {
                reason: UnknownReason::BudgetExhausted { axis, .. },
                ..
            } => assert_eq!(axis, crate::budget::BudgetAxis::States),
            other => panic!("expected budget Unknown, got {}", other),
        }
    }

    #[test]
    fn verdicts_render_for_humans() {
        let verified = Verdict::Verified(VerifyStats::default());
        assert_eq!(verified.to_string(), "verified");
        let failed = Verdict::Failed {
            failures: vec![],
            report: FailureReport::default(),
        };
        assert!(failed.to_string().starts_with("failed"));
        let unknown = Verdict::Unknown {
            reason: UnknownReason::OutOfFragment {
                detail: "1 obligation".to_string(),
            },
            failures: vec![],
            report: FailureReport::default(),
        };
        assert!(unknown.to_string().contains("out of fragment"));
        let crash = Verdict::CrashedInternal {
            message: "boom".to_string(),
        };
        assert!(crash.to_string().contains("boom"));
    }

    #[test]
    fn budgets_do_not_leak_across_methods() {
        // The fuel spent by one method must not starve the next: the
        // budget is per-method, reinstalled at each entry.
        let src = r#"
            field val: Int
            method a(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1
            { c.val := 1 }
            method b(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 2
            { c.val := 2 }
        "#;
        let p = parse_program(src).unwrap();
        let need = {
            let mut v = Verifier::new(&p, Backend::Destabilized);
            match v.verify_method_verdict("a") {
                // Fuel units: conflicts+propagations under the
                // (default) CDCL core.
                Verdict::Verified(s) => (s.solver_conflicts + s.solver_propagations) as u64,
                other => panic!("expected Verified, got {}", other),
            }
        };
        // Enough fuel for one method but not for two, were it shared.
        let config = VerifierConfig {
            budget: Budget::unlimited().with_solver_fuel(need + need / 2),
            retry_unknown: false,
            ..VerifierConfig::default()
        };
        let mut v = Verifier::with_config(&p, Backend::Destabilized, config);
        let verdicts = v.verify_all_verdicts();
        assert!(verdicts["a"].is_verified());
        assert!(
            verdicts["b"].is_verified(),
            "b was starved: {}",
            verdicts["b"]
        );
    }
}
