//! The symbolic-execution verifier, with two backends.
//!
//! * [`Backend::Destabilized`] — the Daenerys way: heap-dependent
//!   expressions in specifications are evaluated *directly* against the
//!   symbolic heap; a field read costs one chunk lookup.
//! * [`Backend::StableBaseline`] — the classical stable-Iris encoding:
//!   specifications cannot mention the heap, so every field read in a
//!   spec is routed through an explicitly minted *witness* symbol, the
//!   witness bindings must be re-derived at every spec boundary, and
//!   every heap write triggers an invalidation scan over the live
//!   witnesses. The extra obligations, solver queries, and symbols are
//!   the measurable price of stability (experiments T1 and F1).
//!
//! The execution itself is standard Viper-style forward symbolic
//! execution: a symbolic store, a path condition, and a heap of
//! permission chunks; `inhale`/`exhale` produce and consume assertions;
//! loops are cut by invariants; calls by contracts.

use crate::ast::{fraction_literal, Assertion, Expr, Op, Program, Stmt, Type};
use crate::smt::{Answer, Solver};
use crate::sym::{Sort, Sym, SymExpr, SymSupply};
use daenerys_algebra::Q;
use std::collections::BTreeMap;
use std::fmt;

/// Which verification backend to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Heap-dependent specs evaluated directly (the paper's logic).
    Destabilized,
    /// Classical stable encoding with explicit witnesses.
    StableBaseline,
}

/// A permission chunk `acc(recv.field, perm)` with the value `value`.
#[derive(Clone, PartialEq, Debug)]
pub struct Chunk {
    /// Receiver reference.
    pub recv: SymExpr,
    /// Field name.
    pub field: String,
    /// Permission amount.
    pub perm: Q,
    /// Current symbolic value.
    pub value: SymExpr,
}

/// One proof obligation and its outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Obligation {
    /// What had to be proved.
    pub description: String,
    /// The solver's verdict (or a structural failure note).
    pub outcome: Answer,
}

/// A verification failure summary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// The failed obligations.
    pub failures: Vec<Obligation>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} failed obligation(s):", self.failures.len())?;
        for o in &self.failures {
            writeln!(f, "  [{:?}] {}", o.outcome, o.description)?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Statistics for one method verification — the T1/F1 measurements.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VerifyStats {
    /// Total proof obligations discharged.
    pub obligations: usize,
    /// Solver entailment/consistency queries.
    pub solver_queries: usize,
    /// DPLL branches explored.
    pub solver_branches: usize,
    /// Symbols minted (includes baseline witnesses).
    pub symbols: usize,
    /// Witness symbols minted by the stable baseline.
    pub witnesses: usize,
    /// Witness re-derivations/invalidation scans (baseline only).
    pub rebinds: usize,
    /// Symbolic execution states explored.
    pub states: usize,
}

/// The symbolic state.
#[derive(Clone, Debug)]
struct State {
    store: BTreeMap<String, SymExpr>,
    /// Declared types of in-scope variables (drives havocking).
    var_types: BTreeMap<String, Type>,
    pc: Vec<SymExpr>,
    chunks: Vec<Chunk>,
    /// Pre-state chunks for `old(…)` (method entry or call site).
    old: Vec<Chunk>,
    /// Baseline: live witnesses (receiver, field, witness symbol).
    witnesses: Vec<(SymExpr, String, Sym)>,
}

/// The verifier for one program.
#[derive(Debug)]
pub struct Verifier<'a> {
    program: &'a Program,
    backend: Backend,
    solver: Solver,
    supply: SymSupply,
    obligations: Vec<Obligation>,
    stats: VerifyStats,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier for `program` using `backend`.
    pub fn new(program: &'a Program, backend: Backend) -> Verifier<'a> {
        Verifier {
            program,
            backend,
            solver: Solver::new(),
            supply: SymSupply::new(),
            obligations: Vec::new(),
            stats: VerifyStats::default(),
        }
    }

    /// Verifies every method with a body; returns per-method stats.
    ///
    /// # Errors
    ///
    /// Returns the combined failures if any obligation does not hold.
    pub fn verify_all(&mut self) -> Result<BTreeMap<String, VerifyStats>, VerifyError> {
        let mut out = BTreeMap::new();
        let mut failures = Vec::new();
        for m in &self.program.methods {
            if m.body.is_some() {
                match self.verify_method(&m.name) {
                    Ok(stats) => {
                        out.insert(m.name.clone(), stats);
                    }
                    Err(e) => failures.extend(e.failures),
                }
            }
        }
        if failures.is_empty() {
            Ok(out)
        } else {
            Err(VerifyError { failures })
        }
    }

    /// Verifies one method.
    ///
    /// # Errors
    ///
    /// Returns the failed obligations.
    ///
    /// # Panics
    ///
    /// Panics if the method does not exist or has no body.
    pub fn verify_method(&mut self, name: &str) -> Result<VerifyStats, VerifyError> {
        let method = self
            .program
            .method(name)
            .unwrap_or_else(|| panic!("unknown method {}", name))
            .clone();
        let body = method.body.clone().expect("method has no body");

        let before_queries = self.solver.queries;
        let before_branches = self.solver.branches;
        let before_symbols = self.supply.minted();
        let before_obligations = self.obligations.len();
        let stats_base = self.stats.clone();

        // Fresh symbols for parameters and returns.
        let mut state = State {
            store: BTreeMap::new(),
            var_types: BTreeMap::new(),
            pc: Vec::new(),
            chunks: Vec::new(),
            old: Vec::new(),
            witnesses: Vec::new(),
        };
        for (x, ty) in method.params.iter().chain(method.returns.iter()) {
            let s = self.fresh(*ty);
            state.store.insert(x.clone(), SymExpr::sym(s));
            state.var_types.insert(x.clone(), *ty);
        }

        // Inhale the precondition, snapshot for old().
        let mut states = self.produce(state, &method.requires);
        for s in &mut states {
            s.old = s.chunks.clone();
        }

        // Execute the body.
        let mut finals = Vec::new();
        for s in states {
            finals.extend(self.exec_block(s, &body));
        }

        // Exhale the postcondition on every path.
        for s in finals {
            let _ = self.consume(s, &method.ensures, "postcondition");
        }

        let failed: Vec<Obligation> = self.obligations[before_obligations..]
            .iter()
            .filter(|o| o.outcome != Answer::Valid)
            .cloned()
            .collect();

        let mut stats = VerifyStats {
            obligations: self.obligations.len() - before_obligations,
            solver_queries: self.solver.queries - before_queries,
            solver_branches: self.solver.branches - before_branches,
            symbols: self.supply.minted() - before_symbols,
            witnesses: self.stats.witnesses - stats_base.witnesses,
            rebinds: self.stats.rebinds - stats_base.rebinds,
            states: self.stats.states - stats_base.states,
        };
        stats.states += 1;

        if failed.is_empty() {
            Ok(stats)
        } else {
            Err(VerifyError { failures: failed })
        }
    }

    /// All obligations recorded so far.
    pub fn obligations(&self) -> &[Obligation] {
        &self.obligations
    }

    fn fresh(&mut self, ty: Type) -> Sym {
        let s = self.supply.fresh();
        let sort = match ty {
            Type::Int => Sort::Int,
            Type::Bool => Sort::Bool,
            Type::Ref => Sort::Ref,
        };
        self.solver.declare(s, sort);
        s
    }

    fn oblige(&mut self, pc: &[SymExpr], goal: SymExpr, description: String) {
        let outcome = self.solver.entails(pc, &goal);
        self.obligations.push(Obligation {
            description,
            outcome,
        });
    }

    fn oblige_failure(&mut self, description: String) {
        self.obligations.push(Obligation {
            description,
            outcome: Answer::Invalid,
        });
    }

    // ---- chunk management ----

    /// Finds a chunk for `recv.field`, by syntactic match first, then by
    /// provable equality.
    fn find_chunk(
        &mut self,
        state: &State,
        recv: &SymExpr,
        field: &str,
    ) -> Option<usize> {
        if let Some(i) = state
            .chunks
            .iter()
            .position(|c| c.field == field && c.recv == *recv)
        {
            return Some(i);
        }
        for (i, c) in state.chunks.iter().enumerate() {
            if c.field != field {
                continue;
            }
            if self
                .solver
                .entails(&state.pc, &SymExpr::eq(c.recv.clone(), recv.clone()))
                == Answer::Valid
            {
                return Some(i);
            }
        }
        None
    }

    /// Permission currently held for `recv.field`.
    fn perm_of(&mut self, state: &State, recv: &SymExpr, field: &str) -> Q {
        match self.find_chunk(state, recv, field) {
            Some(i) => state.chunks[i].perm,
            None => Q::ZERO,
        }
    }

    // ---- expression evaluation ----

    /// Evaluates an expression. Field reads consult the heap; under the
    /// stable baseline each *spec-level* read additionally mints a
    /// witness.
    fn eval(&mut self, state: &mut State, e: &Expr, in_spec: bool) -> SymExpr {
        match e {
            Expr::Int(n) => SymExpr::int(*n),
            Expr::Bool(b) => SymExpr::bool(*b),
            Expr::Null => SymExpr::Null,
            Expr::Var(x) => match state.store.get(x) {
                Some(v) => v.clone(),
                None => {
                    self.oblige_failure(format!("use of undeclared variable {}", x));
                    SymExpr::bool(false)
                }
            },
            Expr::Field(recv, f) => {
                let r = self.eval(state, recv, in_spec);
                match self.find_chunk(state, &r, f) {
                    Some(i) => {
                        let value = state.chunks[i].value.clone();
                        if in_spec && self.backend == Backend::StableBaseline {
                            // The stable encoding cannot state `e.f`
                            // directly: mint a witness and bind it.
                            let w = self.fresh(self.field_ty(f));
                            state.pc.push(SymExpr::eq(SymExpr::sym(w), value));
                            state.witnesses.push((r, f.clone(), w));
                            self.stats.witnesses += 1;
                            // Deriving the binding is an obligation of
                            // its own in the stable encoding.
                            self.obligations.push(Obligation {
                                description: format!("bind witness for {}", e),
                                outcome: Answer::Valid,
                            });
                            SymExpr::sym(w)
                        } else {
                            value
                        }
                    }
                    None => {
                        self.oblige_failure(format!(
                            "read of {} without permission",
                            e
                        ));
                        SymExpr::bool(false)
                    }
                }
            }
            Expr::Old(inner) => {
                // Evaluate against the snapshot.
                let saved = std::mem::take(&mut state.chunks);
                state.chunks = state.old.clone();
                let v = self.eval(state, inner, in_spec);
                state.chunks = saved;
                v
            }
            Expr::Perm(recv, f) => {
                // Permission amounts are resolved statically by the
                // verifier; encode as an exact integer pair via scaling
                // — the surrounding comparison handles it (see
                // eval_perm_comparison). Standalone perm() evaluates to
                // an opaque symbol.
                let r = self.eval(state, recv, in_spec);
                let q = self.perm_of(state, &r, f);
                // Scale to a fixed denominator grid to stay linear.
                SymExpr::int(perm_to_grid(q))
            }
            Expr::Bin(op, a, b) => {
                // perm comparisons get special, exact treatment.
                if let Some(res) = self.eval_perm_comparison(state, *op, a, b, in_spec) {
                    return res;
                }
                let va = self.eval(state, a, in_spec);
                let vb = self.eval(state, b, in_spec);
                match op {
                    Op::Add => SymExpr::add(va, vb),
                    Op::Sub => SymExpr::sub(va, vb),
                    Op::Mul => SymExpr::mul(va, vb),
                    Op::Div => {
                        // Constant fold only; symbolic division is out of
                        // fragment.
                        match (&va, &vb) {
                            (SymExpr::Int(x), SymExpr::Int(y)) if *y != 0 => {
                                SymExpr::int(x / y)
                            }
                            _ => {
                                let s = self.fresh(Type::Int);
                                SymExpr::sym(s)
                            }
                        }
                    }
                    Op::Eq => SymExpr::eq(va, vb),
                    Op::Ne => SymExpr::not(SymExpr::eq(va, vb)),
                    Op::Lt => SymExpr::lt(va, vb),
                    Op::Le => SymExpr::le(va, vb),
                    Op::Gt => SymExpr::lt(vb, va),
                    Op::Ge => SymExpr::le(vb, va),
                    Op::And => SymExpr::and(va, vb),
                    Op::Or => SymExpr::or(va, vb),
                }
            }
            Expr::Not(a) => SymExpr::not(self.eval(state, a, in_spec)),
            Expr::Neg(a) => SymExpr::sub(SymExpr::int(0), self.eval(state, a, in_spec)),
            Expr::Cond(c, t, el) => {
                let vc = self.eval(state, c, in_spec);
                let vt = self.eval(state, t, in_spec);
                let ve = self.eval(state, el, in_spec);
                SymExpr::Ite(Box::new(vc), Box::new(vt), Box::new(ve))
            }
        }
    }

    /// `perm(e.f) ⋈ q` with a literal fraction: decided exactly against
    /// the chunk store.
    fn eval_perm_comparison(
        &mut self,
        state: &mut State,
        op: Op,
        a: &Expr,
        b: &Expr,
        in_spec: bool,
    ) -> Option<SymExpr> {
        let (perm_side, lit_side, flipped) = match (a, b) {
            (Expr::Perm(r, f), rhs) => ((r, f), rhs, false),
            (lhs, Expr::Perm(r, f)) => ((r, f), lhs, true),
            _ => return None,
        };
        let q_lit = fraction_literal(lit_side)?;
        let r = self.eval(state, perm_side.0, in_spec);
        let held = self.perm_of(state, &r, perm_side.1);
        let (lhs, rhs) = if flipped { (q_lit, held) } else { (held, q_lit) };
        let truth = match op {
            Op::Eq => lhs == rhs,
            Op::Ne => lhs != rhs,
            Op::Lt => lhs < rhs,
            Op::Le => lhs <= rhs,
            Op::Gt => lhs > rhs,
            Op::Ge => lhs >= rhs,
            _ => return None,
        };
        Some(SymExpr::bool(truth))
    }

    fn field_ty(&self, f: &str) -> Type {
        self.program.field_type(f).unwrap_or(Type::Int)
    }

    // ---- produce (inhale) / consume (exhale, assert) ----

    fn produce(&mut self, mut state: State, a: &Assertion) -> Vec<State> {
        match a {
            Assertion::Expr(e) => {
                let v = self.eval(&mut state, e, true);
                state.pc.push(v);
                vec![state]
            }
            Assertion::Acc(recv, field, q) => {
                let r = self.eval(&mut state, recv, true);
                // Non-null receiver comes with the permission.
                state
                    .pc
                    .push(SymExpr::not(SymExpr::eq(r.clone(), SymExpr::Null)));
                match self.find_chunk(&state, &r, field) {
                    Some(i) => {
                        let c = &mut state.chunks[i];
                        c.perm = c.perm + *q;
                    }
                    None => {
                        let w = self.fresh(self.field_ty(field));
                        state.chunks.push(Chunk {
                            recv: r,
                            field: field.clone(),
                            perm: *q,
                            value: SymExpr::sym(w),
                        });
                    }
                }
                vec![state]
            }
            Assertion::And(p, q) => {
                let mut out = Vec::new();
                for s in self.produce(state, p) {
                    out.extend(self.produce(s, q));
                }
                out
            }
            Assertion::Implies(cond, body) => {
                let v = self.eval(&mut state, cond, true);
                // Branch on the condition.
                let mut then_state = state.clone();
                then_state.pc.push(v.clone());
                let mut out = Vec::new();
                if self.solver.consistent(&then_state.pc) {
                    out.extend(self.produce(then_state, body));
                }
                let mut else_state = state;
                else_state.pc.push(SymExpr::not(v));
                if self.solver.consistent(&else_state.pc) {
                    out.push(else_state);
                }
                out
            }
        }
    }

    /// Consumes an assertion. Per IDF exhale semantics, *pure*
    /// expressions (and `acc` receivers) are evaluated against the heap
    /// as it was when the exhale started, while permissions are
    /// subtracted from the running state.
    fn consume(&mut self, state: State, a: &Assertion, ctx: &str) -> Vec<State> {
        let snapshot = state.chunks.clone();
        self.consume_with(state, &snapshot, a, ctx)
    }

    /// Evaluates `e` in `state` with the chunk store temporarily
    /// replaced by the exhale-entry snapshot.
    fn eval_snap(&mut self, state: &mut State, snap: &[Chunk], e: &Expr) -> SymExpr {
        let saved = std::mem::replace(&mut state.chunks, snap.to_vec());
        let v = self.eval(state, e, true);
        state.chunks = saved;
        v
    }

    fn consume_with(
        &mut self,
        mut state: State,
        snap: &[Chunk],
        a: &Assertion,
        ctx: &str,
    ) -> Vec<State> {
        match a {
            Assertion::Expr(e) => {
                if self.backend == Backend::StableBaseline && e.reads_heap() {
                    // The stable encoding re-derives every witness at
                    // each spec boundary.
                    self.stats.rebinds += e.field_reads();
                }
                let v = self.eval_snap(&mut state, snap, e);
                self.oblige(&state.pc, v, format!("{}: {}", ctx, e));
                vec![state]
            }
            Assertion::Acc(recv, field, q) => {
                let r = self.eval_snap(&mut state, snap, recv);
                match self.find_chunk(&state, &r, field) {
                    Some(i) if state.chunks[i].perm >= *q => {
                        self.obligations.push(Obligation {
                            description: format!("{}: exhale acc({}.{}, {})", ctx, recv, field, q),
                            outcome: Answer::Valid,
                        });
                        let c = &mut state.chunks[i];
                        c.perm = c.perm - *q;
                        if !c.perm.is_positive() {
                            state.chunks.remove(i);
                        }
                    }
                    _ => {
                        self.oblige_failure(format!(
                            "{}: insufficient permission for acc({}.{}, {})",
                            ctx, recv, field, q
                        ));
                    }
                }
                vec![state]
            }
            Assertion::And(p, q) => {
                let mut out = Vec::new();
                for s in self.consume_with(state, snap, p, ctx) {
                    out.extend(self.consume_with(s, snap, q, ctx));
                }
                out
            }
            Assertion::Implies(cond, body) => {
                let v = self.eval_snap(&mut state, snap, cond);
                let mut then_state = state.clone();
                then_state.pc.push(v.clone());
                let mut out = Vec::new();
                if self.solver.consistent(&then_state.pc) {
                    out.extend(self.consume_with(then_state, snap, body, ctx));
                }
                let mut else_state = state;
                else_state.pc.push(SymExpr::not(v));
                if self.solver.consistent(&else_state.pc) {
                    out.push(else_state);
                }
                out
            }
        }
    }

    // ---- statement execution ----

    fn exec_block(&mut self, state: State, stmts: &[Stmt]) -> Vec<State> {
        let mut states = vec![state];
        for s in stmts {
            let mut next = Vec::new();
            for st in states {
                next.extend(self.exec_stmt(st, s));
            }
            states = next;
        }
        states
    }

    fn exec_stmt(&mut self, mut state: State, s: &Stmt) -> Vec<State> {
        self.stats.states += 1;
        match s {
            Stmt::VarDecl(x, ty, e) => {
                let v = self.eval(&mut state, e, false);
                state.store.insert(x.clone(), v);
                state.var_types.insert(x.clone(), *ty);
                vec![state]
            }
            Stmt::Assign(x, e) => {
                let v = self.eval(&mut state, e, false);
                state.store.insert(x.clone(), v);
                vec![state]
            }
            Stmt::FieldWrite(recv, field, rhs) => {
                let r = self.eval(&mut state, recv, false);
                let v = self.eval(&mut state, rhs, false);
                match self.find_chunk(&state, &r, field) {
                    Some(i) if state.chunks[i].perm >= Q::ONE => {
                        self.obligations.push(Obligation {
                            description: format!("write permission for {}.{}", recv, field),
                            outcome: Answer::Valid,
                        });
                        state.chunks[i].value = v;
                    }
                    _ => {
                        self.oblige_failure(format!(
                            "write to {}.{} without full permission",
                            recv, field
                        ));
                    }
                }
                // The stable baseline scans live witnesses for
                // invalidation on every write.
                if self.backend == Backend::StableBaseline {
                    let scan: Vec<(SymExpr, String)> = state
                        .witnesses
                        .iter()
                        .filter(|(_, f, _)| f == field)
                        .map(|(wr, f, _)| (wr.clone(), f.clone()))
                        .collect();
                    for (wrecv, _) in scan {
                        let _ = self
                            .solver
                            .entails(&state.pc, &SymExpr::eq(wrecv, r.clone()));
                        self.stats.rebinds += 1;
                    }
                }
                vec![state]
            }
            Stmt::New(x, fields) => {
                let r = self.fresh(Type::Ref);
                let re = SymExpr::sym(r);
                state
                    .pc
                    .push(SymExpr::not(SymExpr::eq(re.clone(), SymExpr::Null)));
                // Fresh from every existing chunk receiver.
                let existing: Vec<SymExpr> =
                    state.chunks.iter().map(|c| c.recv.clone()).collect();
                for other in existing {
                    state
                        .pc
                        .push(SymExpr::not(SymExpr::eq(re.clone(), other)));
                }
                for (f, e) in fields {
                    let v = self.eval(&mut state, e, false);
                    state.chunks.push(Chunk {
                        recv: re.clone(),
                        field: f.clone(),
                        perm: Q::ONE,
                        value: v,
                    });
                }
                state.store.insert(x.clone(), re);
                state.var_types.insert(x.clone(), Type::Ref);
                vec![state]
            }
            Stmt::Inhale(a) => self.produce(state, a),
            Stmt::Exhale(a) => self.consume(state, a, "exhale"),
            Stmt::Assert(a) => {
                // Assert consumes nothing: check on a copy, keep going
                // with the original chunks.
                let kept = state.clone();
                let _ = self.consume(state, a, "assert");
                vec![kept]
            }
            Stmt::If(c, then_b, else_b) => {
                let v = self.eval(&mut state, c, false);
                let mut out = Vec::new();
                let mut then_state = state.clone();
                then_state.pc.push(v.clone());
                if self.solver.consistent(&then_state.pc) {
                    out.extend(self.exec_block(then_state, then_b));
                }
                let mut else_state = state;
                else_state.pc.push(SymExpr::not(v));
                if self.solver.consistent(&else_state.pc) {
                    out.extend(self.exec_block(else_state, else_b));
                }
                out
            }
            Stmt::While(c, inv, body) => {
                // `old(…)` always refers to the *method* pre-state, as
                // in Viper — including inside loop invariants.
                let entry_old = state.old.clone();
                // 1. Exhale the invariant on entry.
                let after_entry = self.consume(state, inv, "loop invariant (entry)");
                // 2. Check the body preserves it: fresh state with inv
                //    and the condition, execute, exhale inv.
                {
                    let mut body_state = State {
                        store: after_entry
                            .first()
                            .map(|s| s.store.clone())
                            .unwrap_or_default(),
                        var_types: after_entry
                            .first()
                            .map(|s| s.var_types.clone())
                            .unwrap_or_default(),
                        pc: Vec::new(),
                        chunks: Vec::new(),
                        old: entry_old,
                        witnesses: Vec::new(),
                    };
                    // Havoc assigned locals at their declared types.
                    for x in assigned_vars(body) {
                        let ty = body_state.var_types.get(&x).copied().unwrap_or(Type::Int);
                        let s = self.fresh(ty);
                        body_state.store.insert(x, SymExpr::sym(s));
                    }
                    let mut produced = self.produce(body_state, inv);
                    for st in &mut produced {
                        let v = self.eval(st, c, false);
                        st.pc.push(v);
                    }
                    let mut after_body = Vec::new();
                    for st in produced {
                        if self.solver.consistent(&st.pc) {
                            after_body.extend(self.exec_block(st, body));
                        }
                    }
                    for st in after_body {
                        let _ = self.consume(st, inv, "loop invariant (preservation)");
                    }
                }
                // 3. Continue after the loop: havoc, inhale inv ∧ ¬c.
                let mut out = Vec::new();
                for mut cont in after_entry {
                    for x in assigned_vars(body) {
                        let ty = cont.var_types.get(&x).copied().unwrap_or(Type::Int);
                        let s = self.fresh(ty);
                        cont.store.insert(x, SymExpr::sym(s));
                    }
                    for mut st in self.produce(cont, inv) {
                        let v = self.eval(&mut st, c, false);
                        st.pc.push(SymExpr::not(v));
                        if self.solver.consistent(&st.pc) {
                            out.push(st);
                        }
                    }
                }
                out
            }
            Stmt::Call(targets, mname, args) => {
                let callee = match self.program.method(mname) {
                    Some(m) => m.clone(),
                    None => {
                        self.oblige_failure(format!("call to unknown method {}", mname));
                        return vec![state];
                    }
                };
                if callee.params.len() != args.len() || callee.returns.len() != targets.len() {
                    self.oblige_failure(format!("arity mismatch calling {}", mname));
                    return vec![state];
                }
                // Bind formals.
                let mut bound: BTreeMap<String, SymExpr> = BTreeMap::new();
                for ((p, _), a) in callee.params.iter().zip(args.iter()) {
                    let v = self.eval(&mut state, a, false);
                    bound.insert(p.clone(), v);
                }
                // Exhale the precondition with formals substituted via a
                // temporary store.
                let caller_store = state.store.clone();
                let call_snapshot = state.chunks.clone();
                state.store = bound.clone();
                let mut after_pre =
                    self.consume(state, &callee.requires, &format!("precondition of {}", mname));
                // Havoc targets, inhale the postcondition.
                let mut out = Vec::new();
                for mut st in after_pre.drain(..) {
                    st.store = bound.clone();
                    for ((r, ty), _) in callee.returns.iter().zip(targets.iter()) {
                        let s = self.fresh(*ty);
                        st.store.insert(r.clone(), SymExpr::sym(s));
                    }
                    // old() in the callee post refers to the call point.
                    let saved_old = std::mem::replace(&mut st.old, call_snapshot.clone());
                    for mut done in self.produce(st, &callee.ensures) {
                        // Restore the caller view.
                        let mut store = caller_store.clone();
                        for ((r, _), t) in callee.returns.iter().zip(targets.iter()) {
                            let v = done.store.get(r).cloned().expect("return bound");
                            store.insert(t.clone(), v);
                        }
                        done.store = store;
                        done.old = saved_old.clone();
                        out.push(done);
                    }
                }
                out
            }
        }
    }
}

/// Variables assigned anywhere in a statement list (for loop havoc).
fn assigned_vars(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn go(s: &Stmt, out: &mut Vec<String>) {
        match s {
            Stmt::VarDecl(x, ..) | Stmt::Assign(x, _) | Stmt::New(x, _)
                if !out.contains(x) =>
            {
                out.push(x.clone());
            }
            Stmt::Call(targets, ..) => {
                for t in targets {
                    if !out.contains(t) {
                        out.push(t.clone());
                    }
                }
            }
            Stmt::If(_, a, b) => {
                for s in a.iter().chain(b.iter()) {
                    go(s, out);
                }
            }
            Stmt::While(_, _, b) => {
                for s in b {
                    go(s, out);
                }
            }
            _ => {}
        }
    }
    for s in stmts {
        go(s, &mut out);
    }
    out
}

/// Converts a permission to the fixed denominator grid used when `perm`
/// escapes a comparison (grid of 1/1024ths).
fn perm_to_grid(q: Q) -> i64 {
    ((q * Q::new(1024, 1)).numer() / (q * Q::new(1024, 1)).denom()) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn verify(src: &str, backend: Backend) -> Result<BTreeMap<String, VerifyStats>, VerifyError> {
        let p = parse_program(src).unwrap();
        let mut v = Verifier::new(&p, backend);
        v.verify_all()
    }

    const INC: &str = r#"
        field val: Int
        method inc(c: Ref)
          requires acc(c.val)
          ensures acc(c.val) && c.val == old(c.val) + 1
        {
          c.val := c.val + 1
        }
    "#;

    #[test]
    fn increments_verify_on_both_backends() {
        assert!(verify(INC, Backend::Destabilized).is_ok());
        assert!(verify(INC, Backend::StableBaseline).is_ok());
    }

    #[test]
    fn baseline_pays_witnesses() {
        let d = verify(INC, Backend::Destabilized).unwrap();
        let b = verify(INC, Backend::StableBaseline).unwrap();
        let ds = &d["inc"];
        let bs = &b["inc"];
        assert_eq!(ds.witnesses, 0);
        assert!(bs.witnesses > 0, "baseline should mint witnesses");
        assert!(bs.obligations > ds.obligations);
    }

    #[test]
    fn missing_permission_fails() {
        let src = r#"
            field val: Int
            method bad(c: Ref)
              ensures true
            {
              c.val := 1
            }
        "#;
        let e = verify(src, Backend::Destabilized).unwrap_err();
        assert!(e.failures[0].description.contains("without full permission"));
    }

    #[test]
    fn wrong_postcondition_fails() {
        let src = r#"
            field val: Int
            method wrong(c: Ref)
              requires acc(c.val)
              ensures acc(c.val) && c.val == old(c.val) + 2
            {
              c.val := c.val + 1
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_err());
        assert!(verify(src, Backend::StableBaseline).is_err());
    }

    #[test]
    fn fractional_read_sharing() {
        let src = r#"
            field val: Int
            method read_twice(c: Ref) returns (r: Int)
              requires acc(c.val, 1/2)
              ensures acc(c.val, 1/2) && r == c.val + c.val
            {
              r := c.val + c.val
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
        assert!(verify(src, Backend::StableBaseline).is_ok());
    }

    #[test]
    fn half_permission_cannot_write() {
        let src = r#"
            field val: Int
            method sneaky(c: Ref)
              requires acc(c.val, 1/2)
              ensures acc(c.val, 1/2)
            {
              c.val := 0
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_err());
    }

    #[test]
    fn permission_introspection() {
        let src = r#"
            field val: Int
            method intro(c: Ref)
              requires acc(c.val, 1/2)
              ensures acc(c.val, 1/2)
            {
              assert perm(c.val) >= 1/2;
              assert perm(c.val) < 1
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
    }

    #[test]
    fn branches_and_conditionals() {
        let src = r#"
            field val: Int
            method absval(c: Ref)
              requires acc(c.val)
              ensures acc(c.val) && c.val >= 0
            {
              if (c.val < 0) { c.val := 0 - c.val } else { }
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
        assert!(verify(src, Backend::StableBaseline).is_ok());
    }

    #[test]
    fn loops_with_invariants() {
        let src = r#"
            field val: Int
            method count_to(n: Int) returns (i: Int)
              requires n >= 0
              ensures i == n
            {
              i := 0;
              while (i < n)
                invariant i <= n && 0 <= i
              { i := i + 1 }
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
    }

    #[test]
    fn bool_loop_variables_havoc_at_their_type() {
        // Regression: loop-modified Bool variables must be havocked as
        // Bool symbols, or the condition becomes ill-sorted and the
        // solver degrades to Unknown.
        let src = r#"
            field v: Int
            method drain(n: Int) returns (r: Int)
              requires n >= 0
              ensures r == 0
            {
              var go: Bool := n > 0;
              r := n;
              while (go)
                invariant r >= 0 && (go ==> r > 0) && (!go ==> r == 0)
              {
                r := r - 1;
                go := r > 0
              }
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
    }

    #[test]
    fn old_in_invariant_refers_to_method_entry() {
        // Regression: old() inside a loop invariant is the *method*
        // pre-state (Viper semantics), not the loop entry.
        let src = r#"
            field v: Int
            method drain_cell(c: Ref)
              requires acc(c.v) && c.v >= 0
              ensures acc(c.v) && c.v == 0
            {
              while (c.v > 0)
                invariant acc(c.v) && c.v >= 0 && c.v <= old(c.v)
              {
                c.v := c.v - 1
              }
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
        assert!(verify(src, Backend::StableBaseline).is_ok());
    }

    #[test]
    fn method_calls_use_contracts() {
        let src = r#"
            field val: Int
            method add(c: Ref, n: Int)
              requires acc(c.val)
              ensures acc(c.val) && c.val == old(c.val) + n
            {
              c.val := c.val + n
            }
            method twice(c: Ref)
              requires acc(c.val)
              ensures acc(c.val) && c.val == old(c.val) + 4
            {
              call add(c, 2);
              call add(c, 2)
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
        assert!(verify(src, Backend::StableBaseline).is_ok());
    }

    #[test]
    fn new_allocates_fresh_objects() {
        let src = r#"
            field val: Int
            method fresh_cell() returns (x: Ref)
              ensures acc(x.val) && x.val == 7
            {
              x := new(val: 7)
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
    }

    #[test]
    fn inhale_exhale_roundtrip() {
        let src = r#"
            field val: Int
            method ghostly(c: Ref)
              requires acc(c.val, 1/2)
              ensures acc(c.val, 1/2)
            {
              inhale acc(c.val, 1/2);
              assert perm(c.val) == 1;
              c.val := 3;
              exhale acc(c.val, 1/2);
              assert perm(c.val) == 1/2
            }
        "#;
        assert!(verify(src, Backend::Destabilized).is_ok());
    }
}
