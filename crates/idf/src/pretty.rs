//! Pretty-printing for IDF programs.
//!
//! `program.to_string()` emits source the parser maps back to the same
//! AST; the round-trip is property-tested in `tests/idf_prop_tests.rs`.

use crate::ast::{Assertion, Expr, Method, Op, Program, Stmt};
use daenerys_algebra::Q;
use std::fmt;

fn op_str(op: Op) -> &'static str {
    match op {
        Op::Add => "+",
        Op::Sub => "-",
        Op::Mul => "*",
        Op::Div => "/",
        Op::Eq => "==",
        Op::Ne => "!=",
        Op::Lt => "<",
        Op::Le => "<=",
        Op::Gt => ">",
        Op::Ge => ">=",
        Op::And => "&&",
        Op::Or => "||",
    }
}

/// Precedence levels mirroring the parser (higher binds tighter).
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Cond(..) => 0,
        Expr::Bin(Op::Or, ..) => 1,
        Expr::Bin(Op::And, ..) => 2,
        Expr::Bin(Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge, ..) => 3,
        Expr::Bin(Op::Add | Op::Sub, ..) => 4,
        Expr::Bin(Op::Mul | Op::Div, ..) => 5,
        Expr::Not(_) | Expr::Neg(_) => 6,
        _ => 7,
    }
}

/// `spec` marks the assertion-conjunct grammar, where a bare `&&` would
/// be captured by the assertion level: expression conjunctions are then
/// emitted inside explicit parentheses (which re-enter the full
/// expression grammar when reparsed).
fn write_expr(e: &Expr, min: u8, spec: bool, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if spec {
        match e {
            // A bare `&&` would be captured by the assertion level.
            Expr::Bin(Op::And, ..) => {
                write!(f, "(")?;
                write_expr(e, 0, false, f)?;
                return write!(f, ")");
            }
            // A bare conditional's branches (parsed with the full
            // grammar) would swallow a following assertion `&&`; its
            // *condition* stays in spec mode so a conjunction there
            // cannot be re-read as an assertion `&&` by the
            // parenthesized-assertion backtracking.
            Expr::Cond(c, t, el) => {
                write!(f, "(")?;
                write_expr(c, 1, true, f)?;
                write!(f, " ? ")?;
                write_expr(t, 0, false, f)?;
                write!(f, " : ")?;
                write_expr(el, 0, false, f)?;
                return write!(f, ")");
            }
            _ => {}
        }
    }
    let p = prec(e);
    if p < min {
        // Parentheses re-enter the full expression grammar (they are
        // parsed as expression atoms), except when they would *start*
        // a conjunct — the parser's `ends_assertion` check resolves
        // that case in favour of the expression reading.
        write!(f, "(")?;
        write_expr(e, 0, false, f)?;
        return write!(f, ")");
    }
    match e {
        Expr::Int(n) => {
            if *n < 0 {
                write!(f, "({})", n)?;
            } else {
                write!(f, "{}", n)?;
            }
        }
        Expr::Bool(b) => write!(f, "{}", b)?,
        Expr::Null => write!(f, "null")?,
        Expr::Var(x) => write!(f, "{}", x)?,
        Expr::Field(r, fld, _) => {
            write_expr(r, 7, spec, f)?;
            write!(f, ".{}", fld)?;
        }
        Expr::Old(inner, _) => {
            // Parenthesized contents re-enter the full expression
            // grammar, so spec mode is dropped.
            write!(f, "old(")?;
            write_expr(inner, 0, false, f)?;
            write!(f, ")")?;
        }
        Expr::Perm(r, fld, _) => {
            write!(f, "perm(")?;
            write_expr(r, 7, false, f)?;
            write!(f, ".{})", fld)?;
        }
        Expr::Bin(op, a, b) => {
            let (la, ra) = match op {
                // Comparisons are non-associative in the grammar.
                Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => (p + 1, p + 1),
                _ => (p, p + 1),
            };
            write_expr(a, la, spec, f)?;
            write!(f, " {} ", op_str(*op))?;
            write_expr(b, ra, spec, f)?;
        }
        Expr::Not(a) => {
            write!(f, "!")?;
            write_expr(a, 6, spec, f)?;
        }
        Expr::Neg(a) => {
            // Always parenthesize the operand so `-7` stays the
            // application of negation rather than folding into a
            // negative literal on reparse.
            write!(f, "-(")?;
            write_expr(a, 0, false, f)?;
            write!(f, ")")?;
        }
        Expr::Cond(c, t, el) => {
            write_expr(c, 1, spec, f)?;
            // Branches are parsed with the full expression grammar.
            write!(f, " ? ")?;
            write_expr(t, 0, false, f)?;
            write!(f, " : ")?;
            write_expr(el, 0, false, f)?;
        }
    }
    Ok(())
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(self, 0, false, f)
    }
}

/// Wrapper displaying an expression in assertion-conjunct position.
struct SpecExpr<'a>(&'a Expr);

impl fmt::Display for SpecExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(self.0, 0, true, f)
    }
}

fn frac_str(q: Q) -> String {
    if q == Q::ONE {
        String::new()
    } else if q.denom() == 1 {
        format!(", {}", q.numer())
    } else {
        format!(", {}/{}", q.numer(), q.denom())
    }
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Note: an `Assertion::Expr` whose top level is `&&` is not
            // canonical (the parser always splits top-level conjunction
            // at the assertion level); `Assertion::normalize` produces
            // the canonical form this printer round-trips.
            Assertion::Expr(e) => write!(f, "{}", SpecExpr(e)),
            Assertion::Acc(r, fld, q) => write!(f, "acc({}.{}{})", r, fld, frac_str(*q)),
            Assertion::And(a, b) => write!(f, "{} && {}", a, b),
            Assertion::Implies(c, a) => {
                // The implication body binds tighter than `&&`, so an
                // `And` body needs explicit grouping.
                write!(f, "({} ==> ", SpecExpr(c))?;
                match &**a {
                    Assertion::And(..) => write!(f, "({})", a)?,
                    _ => write!(f, "{}", a)?,
                }
                write!(f, ")")
            }
        }
    }
}

fn write_block(stmts: &[Stmt], indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let pad = "  ".repeat(indent);
    writeln!(f, "{{")?;
    for (i, s) in stmts.iter().enumerate() {
        write!(f, "{}  ", pad)?;
        write_stmt(s, indent + 1, f)?;
        if i + 1 < stmts.len() {
            writeln!(f, ";")?;
        } else {
            writeln!(f)?;
        }
    }
    write!(f, "{}}}", pad)
}

fn write_stmt(s: &Stmt, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match s {
        Stmt::VarDecl(x, ty, e) => write!(f, "var {}: {} := {}", x, ty, e),
        Stmt::Assign(x, e) => write!(f, "{} := {}", x, e),
        Stmt::FieldWrite(r, fld, e) => write!(f, "{}.{} := {}", r, fld, e),
        Stmt::New(x, fields) => {
            write!(f, "{} := new(", x)?;
            for (i, (fld, e)) in fields.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}: {}", fld, e)?;
            }
            write!(f, ")")
        }
        Stmt::Inhale(a) => write!(f, "inhale {}", a),
        Stmt::Exhale(a) => write!(f, "exhale {}", a),
        Stmt::Assert(a) => write!(f, "assert {}", a),
        Stmt::If(c, t, e) => {
            write!(f, "if ({}) ", c)?;
            write_block(t, indent, f)?;
            if !e.is_empty() {
                write!(f, " else ")?;
                write_block(e, indent, f)?;
            }
            Ok(())
        }
        Stmt::While(c, inv, body) => {
            write!(f, "while ({})", c)?;
            write!(f, " invariant {} ", inv)?;
            write_block(body, indent, f)
        }
        Stmt::Call(targets, m, args) => {
            write!(f, "call ")?;
            if !targets.is_empty() {
                write!(f, "{} := ", targets.join(", "))?;
            }
            write!(f, "{}(", m)?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", a)?;
            }
            write!(f, ")")
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method {}(", self.name)?;
        for (i, (x, t)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", x, t)?;
        }
        write!(f, ")")?;
        if !self.returns.is_empty() {
            write!(f, " returns (")?;
            for (i, (x, t)) in self.returns.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}: {}", x, t)?;
            }
            write!(f, ")")?;
        }
        writeln!(f)?;
        writeln!(f, "  requires {}", self.requires)?;
        writeln!(f, "  ensures {}", self.ensures)?;
        match &self.body {
            None => Ok(()),
            Some(b) => write_block(b, 0, f),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, ty) in &self.fields {
            writeln!(f, "field {}: {}", name, ty)?;
        }
        for m in &self.methods {
            writeln!(f)?;
            writeln!(f, "{}", m)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_program;

    #[test]
    fn program_roundtrips() {
        let src = r#"
            field val: Int
            field next: Ref
            method m(a: Ref, n: Int) returns (r: Int)
              requires acc(a.val, 1/2) && n >= 0 && (n > 0 ==> acc(a.next))
              ensures acc(a.val, 1/2) && r == old(a.val) + n
            {
              var t: Int := a.val;
              if (t > 0) { t := t - 1 } else { t := 0 - t };
              while (t < n) invariant t <= n { t := t + 1 };
              inhale acc(a.val, 1/2);
              a.val := t;
              exhale acc(a.val, 1/2);
              assert perm(a.val) == 1/2;
              r := t ? 1 : 0;
              call m2(a);
              call r := m3(a, t)
            }
            method m2(x: Ref)
            method m3(x: Ref, k: Int) returns (out: Int)
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {}\n---\n{}", e, printed));
        assert_eq!(p1, p2, "\n--- printed ---\n{}", printed);
    }

    #[test]
    fn negative_literals_roundtrip() {
        let src = "field v: Int method m() { var x: Int := (-3) + 1 }";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&p1.to_string()).unwrap();
        assert_eq!(p1, p2);
    }
}
