//! A small decision procedure for the verifier's entailment queries.
//!
//! Viper delegates these queries to Z3; building the full substrate
//! ourselves, we implement the fragment the IDF case studies need:
//!
//! * boolean structure by DPLL-style case splitting;
//! * linear integer arithmetic by Fourier–Motzkin elimination with
//!   integer tightening (`a < b` ⇒ `a ≤ b − 1`);
//! * reference equalities by union-find with disequality checking.
//!
//! The procedure is **sound for verification**: `Valid` is only
//! answered when `pc → goal` holds. Nonlinear or otherwise unsupported
//! atoms degrade the answer to `Unknown`, never to a wrong `Valid`.
//!
//! Queries are posed over hash-consed [`TermId`]s, and two memo layers
//! exploit the O(1) equality that interning buys:
//!
//! * a **query cache** keyed on the *normalized* path condition (sorted,
//!   deduplicated ids) plus the goal id — symbolic execution re-poses
//!   the same consistency/entailment queries constantly (branch joins,
//!   repeated spec boundaries), and a repeat is answered without any
//!   solving;
//! * a **theory cache** keyed on the set of theory literals of a full
//!   DPLL assignment — union-find construction, Gaussian substitution,
//!   and Fourier–Motzkin elimination are all functions of that set
//!   alone, so queries whose path conditions share a prefix reuse the
//!   ground-theory work of their common branches instead of repeating
//!   it.
//!
//! Both caches are exact (keys are complete inputs of the computation
//! they index), so answers are bit-identical with caching on or off;
//! `cache_enabled` exists to measure the difference, not to change it.

use crate::sym::{Sort, Sym, SymExpr, Term, TermArena, TermId};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

/// Largest theory-conflict core the solver will try to minimize.
/// Minimization costs one (memoized) theory check per literal, so huge
/// leaf assignments are learned from only when they are worth the scan.
const MINIMIZE_LIMIT: usize = 64;

/// Widest clause retained after minimization. Wide clauses almost never
/// propagate (every literal must be falsified first) but are scanned on
/// every propagation round, so they cost more than they prune.
const MAX_LEARN_WIDTH: usize = 8;

/// Cap on retained learned clauses (a runaway backstop; the per-method
/// clearing keeps real runs far below it).
const MAX_LEARNED_CLAUSES: usize = 512;

/// Per-method budget of theory checks spent on conflict analysis
/// (core re-verification + minimization trials). Structured corpora
/// learn their few useful lemmas within it; pathological corpora whose
/// every leaf conflicts on a *distinct* core (e.g. the diverging
/// sweep) exhaust it quickly and fall back to plain search instead of
/// paying a Fourier–Motzkin run per literal per conflict. Refilled by
/// [`Solver::clear_learned`] at method boundaries, so it is
/// deterministic per method and thread-count independent.
const LEARN_FUEL_PER_METHOD: u64 = 256;

/// Search-loop iterations between wall-clock deadline polls (a power of
/// two; the check is a masked counter increment on the off iterations).
/// The first iteration of every search polls immediately, so an
/// already-expired deadline aborts before any work; thereafter at most
/// 64 conflicts/branches run between polls, which bounds how far a hard
/// query can overshoot its deadline.
const DEADLINE_POLL_MASK: u32 = 63;

/// Which search core answers satisfiability queries.
///
/// Both cores decide the same fragment and return identical answers on
/// every query (the differential proptests pin this); they differ only
/// in cost. The selector is answer-affecting *in principle* (a future
/// core could change Unknown frontiers), so it is part of the verdict
/// fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum SolverCore {
    /// The legacy recursive case-splitting DPLL, with the optional
    /// clause-learning extension ([`Solver::learn_enabled`]).
    Dpll,
    /// Conflict-driven clause learning: two-watched-literal
    /// propagation, first-UIP analysis with clause minimization,
    /// deterministic VSIDS ordering, LBD-based clause deletion on a
    /// fixed cadence, Luby restarts, and a theory-propagation layer
    /// (congruence closure + difference bounds).
    #[default]
    Cdcl,
}

impl SolverCore {
    /// Parses the `--solver` flag value.
    pub fn parse(s: &str) -> Option<SolverCore> {
        match s {
            "dpll" => Some(SolverCore::Dpll),
            "cdcl" => Some(SolverCore::Cdcl),
            _ => None,
        }
    }

    /// The flag spelling (`dpll`/`cdcl`).
    pub fn name(self) -> &'static str {
        match self {
            SolverCore::Dpll => "dpll",
            SolverCore::Cdcl => "cdcl",
        }
    }
}

/// The answer to an entailment query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Answer {
    /// The entailment holds.
    Valid,
    /// A countermodel exists within the supported theory.
    Invalid,
    /// Out of fragment (nonlinear, blown budget, …).
    Unknown,
}

/// Internal satisfiability verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SatAnswer {
    Sat,
    Unsat,
    Unknown,
}

/// A linear term `Σ cᵢ·xᵢ + k` over integer symbols.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
struct LinTerm {
    coeffs: BTreeMap<Sym, i128>,
    konst: i128,
}

impl LinTerm {
    fn constant(k: i128) -> LinTerm {
        LinTerm {
            coeffs: BTreeMap::new(),
            konst: k,
        }
    }

    fn var(s: Sym) -> LinTerm {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(s, 1);
        LinTerm { coeffs, konst: 0 }
    }

    fn scale(&self, k: i128) -> LinTerm {
        LinTerm {
            coeffs: self.coeffs.iter().map(|(s, c)| (*s, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    fn add(&self, other: &LinTerm) -> LinTerm {
        let mut coeffs = self.coeffs.clone();
        for (s, c) in &other.coeffs {
            let e = coeffs.entry(*s).or_insert(0);
            *e += c;
            if *e == 0 {
                coeffs.remove(s);
            }
        }
        LinTerm {
            coeffs,
            konst: self.konst + other.konst,
        }
    }

    fn sub(&self, other: &LinTerm) -> LinTerm {
        self.add(&other.scale(-1))
    }

    fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }
}

/// A reference-sorted ground term.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum RefTerm {
    Null,
    Sym(Sym),
}

/// An abstracted atom (negations are handled by the literal polarity).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Atom {
    /// `lin ≤ 0`.
    LinLe(LinTerm),
    /// A boolean symbol.
    BoolSym(Sym),
    /// Equality of two reference terms.
    RefEq(RefTerm, RefTerm),
    /// Unsupported structure (nonlinear multiplication, …).
    Opaque(TermId),
}

/// Interned atoms of one `sat` call: index lookup is a hash probe, not
/// a linear scan over previously seen atoms.
#[derive(Default)]
struct AtomTable {
    list: Vec<Atom>,
    index: HashMap<Atom, usize>,
}

impl AtomTable {
    fn intern(&mut self, a: Atom) -> usize {
        if let Some(&i) = self.index.get(&a) {
            return i;
        }
        let i = self.list.len();
        self.list.push(a.clone());
        self.index.insert(a, i);
        i
    }
}

/// A propositional skeleton over atom indices.
#[derive(Clone, Debug)]
enum BForm {
    True,
    False,
    Lit(usize, bool),
    And(Box<BForm>, Box<BForm>),
    Or(Box<BForm>, Box<BForm>),
}

/// The integer-comparison shapes shared by the ite-splitting helpers.
#[derive(Clone, Copy)]
enum Cmp {
    Lt,
    Le,
    Eq,
}

/// The decision procedure, with query statistics (reported by the
/// evaluation harness).
#[derive(Clone, Debug)]
pub struct Solver {
    /// Sorts of the symbols in play.
    pub sorts: BTreeMap<Sym, Sort>,
    /// Number of entailment queries answered.
    pub queries: usize,
    /// Number of DPLL branches explored across all queries.
    pub branches: usize,
    /// Whether the memo layers are consulted (answers are identical
    /// either way; off = measure the uncached cost).
    pub cache_enabled: bool,
    /// Query-cache hits (whole entailments answered from memory).
    pub cache_hits: usize,
    /// Query-cache misses (entailments actually solved). With the
    /// cache disabled every query counts as a miss, so
    /// `hits + misses == queries` holds in either mode.
    pub cache_misses: usize,
    /// Theory-cache hits (ground-theory checks reused across branches
    /// and across queries sharing a path-condition prefix).
    pub theory_hits: usize,
    /// Theory-cache misses.
    pub theory_misses: usize,
    /// Remaining solver fuel; `None` means unlimited. Under the CDCL
    /// core one unit is charged per conflict and per propagated
    /// literal; under the legacy DPLL core each search-node entry
    /// consumes one unit. At zero the solver answers `Unknown` instead
    /// of searching further (cooperative budget exhaustion).
    pub fuel: Option<u64>,
    /// Sticky flag: set once any query was truncated by fuel
    /// exhaustion. Truncated answers are never cached (the caches must
    /// change cost, never answers).
    pub fuel_exhausted: bool,
    /// Wall-clock deadline for the current method's queries; `None`
    /// means unlimited. Unlike the per-method deadline check at
    /// statement boundaries, this one is polled *inside* the search
    /// loops (every `DEADLINE_POLL_MASK + 1` conflicts/branches), so a
    /// single pathologically hard query still returns `Unknown` within
    /// a small multiple of its deadline instead of running to
    /// completion.
    pub deadline: Option<Instant>,
    /// Sticky flag: set once any query was truncated by the deadline.
    /// Like fuel truncation, a deadline-truncated answer reflects the
    /// budget, not the formula, and is never cached.
    pub deadline_exhausted: bool,
    /// Poll counter for the deadline check in the non-CDCL search loops.
    deadline_poll: u32,
    /// Fault injection: degrade every answer to `Answer::Unknown` once
    /// `queries` exceeds this count. Injected answers bypass the caches
    /// entirely.
    pub unknown_after: Option<usize>,
    /// Whether the clause-learning search core runs: unit propagation,
    /// pure-literal elimination on boolean symbols, and conflict-driven
    /// clause learning with lemmas retained across queries (cleared at
    /// method boundaries by the verifier). Learned clauses are valid
    /// theory lemmas, so they change cost, never answers; off
    /// reproduces the plain case-splitting DPLL for measurement.
    pub learn_enabled: bool,
    /// Total theory-conflict clauses learned across all queries
    /// (monotone; clearing retained clauses does not reset it).
    pub learned_clauses: usize,
    /// Which search core answers queries (CDCL by default; the legacy
    /// DPLL stays selectable via `--solver=dpll`).
    pub core: SolverCore,
    /// CDCL conflicts across all queries (0 under the legacy core).
    pub conflicts: usize,
    /// CDCL restarts across all queries (Luby schedule).
    pub restarts: usize,
    /// Literals assigned by unit propagation across all queries.
    pub propagations: usize,
    /// Literals assigned by theory propagation (congruence closure and
    /// difference-bound strengthening) across all queries.
    pub theory_props: usize,
    query_cache: HashMap<(Vec<TermId>, TermId), Answer>,
    theory_cache: HashMap<Vec<(Atom, bool)>, SatAnswer>,
    learned: Vec<Vec<(Atom, bool)>>,
    learned_index: HashSet<Vec<(Atom, bool)>>,
    learn_fuel: u64,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver {
            sorts: BTreeMap::new(),
            queries: 0,
            branches: 0,
            cache_enabled: true,
            cache_hits: 0,
            cache_misses: 0,
            theory_hits: 0,
            theory_misses: 0,
            fuel: None,
            fuel_exhausted: false,
            deadline: None,
            deadline_exhausted: false,
            deadline_poll: 0,
            unknown_after: None,
            learn_enabled: true,
            learned_clauses: 0,
            core: SolverCore::default(),
            conflicts: 0,
            restarts: 0,
            propagations: 0,
            theory_props: 0,
            query_cache: HashMap::new(),
            theory_cache: HashMap::new(),
            learned: Vec::new(),
            learned_index: HashSet::new(),
            learn_fuel: LEARN_FUEL_PER_METHOD,
        }
    }
}

impl Solver {
    /// A fresh solver (caching on).
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Declares a symbol's sort.
    pub fn declare(&mut self, s: Sym, sort: Sort) {
        self.sorts.insert(s, sort);
    }

    /// Checks `pc ⊨ goal` (validity of the implication).
    ///
    /// The path condition is normalized (sorted, deduplicated) before
    /// solving — conjunction is commutative and idempotent — so queries
    /// that differ only in condition order share one cache entry and
    /// one canonical answer.
    pub fn entails(&mut self, arena: &mut TermArena, pc: &[TermId], goal: TermId) -> Answer {
        self.queries += 1;
        // Fault injection: past the threshold, every answer degrades to
        // Unknown without consulting or filling the caches.
        if self.unknown_after.is_some_and(|n| self.queries > n) {
            return Answer::Unknown;
        }
        let mut key: Vec<TermId> = pc.to_vec();
        key.sort_unstable();
        key.dedup();
        if self.cache_enabled {
            if let Some(&cached) = self.query_cache.get(&(key.clone(), goal)) {
                self.cache_hits += 1;
                return cached;
            }
        }
        // With the cache disabled every query is a miss by definition —
        // counting it keeps reported hit rates honest (misses == queries
        // instead of a misleading 0/0).
        self.cache_misses += 1;
        let mut formula = arena.not(goal);
        for &c in &key {
            formula = arena.and(formula, c);
        }
        let answer = match self.sat(arena, formula) {
            SatAnswer::Unsat => Answer::Valid,
            SatAnswer::Sat => Answer::Invalid,
            SatAnswer::Unknown => Answer::Unknown,
        };
        // A fuel- or deadline-truncated answer reflects the budget, not
        // the formula; caching it would let a later (differently
        // budgeted) run read it back as the formula's answer. Once
        // either axis is exhausted every subsequent answer is suspect,
        // so caching stops entirely.
        if self.cache_enabled && !self.fuel_exhausted && !self.deadline_exhausted {
            self.query_cache.insert((key, goal), answer);
        }
        answer
    }

    /// Polls the wall-clock deadline (every [`DEADLINE_POLL_MASK`]+1
    /// calls; the first call always checks). Returns `true` — setting
    /// the sticky `deadline_exhausted` flag — once the deadline has
    /// passed; the search loops then abandon the query with
    /// `SatAnswer::Unknown`.
    fn deadline_tripped(&mut self) -> bool {
        if self.deadline_exhausted {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        self.deadline_poll = self.deadline_poll.wrapping_add(1);
        if self.deadline_poll & DEADLINE_POLL_MASK != 1 {
            return false;
        }
        if Instant::now() >= deadline {
            self.deadline_exhausted = true;
            true
        } else {
            false
        }
    }

    /// Checks whether the path condition is consistent (used to prune
    /// infeasible branches). `consistent(pc)` is `pc ⊭ false` with
    /// Unknown treated as consistent (conservative: keep exploring), so
    /// it shares the entailment query cache.
    pub fn consistent(&mut self, arena: &mut TermArena, pc: &[TermId]) -> bool {
        let falsum = arena.bool(false);
        self.entails(arena, pc, falsum) != Answer::Valid
    }

    /// Tree-facade variant of [`Solver::entails`] for callers holding
    /// owned [`SymExpr`]s (tests, one-off queries).
    pub fn entails_exprs(
        &mut self,
        arena: &mut TermArena,
        pc: &[SymExpr],
        goal: &SymExpr,
    ) -> Answer {
        let pc_ids: Vec<TermId> = pc.iter().map(|e| arena.intern_expr(e)).collect();
        let g = arena.intern_expr(goal);
        self.entails(arena, &pc_ids, g)
    }

    /// Forgets the learned clauses and refills the conflict-analysis
    /// fuel. The verifier calls this at every method boundary: each
    /// method's lemma set is then a function of that method's own query
    /// sequence, which is what keeps verdicts, stats, and traces
    /// bit-identical at any worker count.
    pub fn clear_learned(&mut self) {
        self.learned.clear();
        self.learned_index.clear();
        self.learn_fuel = LEARN_FUEL_PER_METHOD;
    }

    fn sat(&mut self, arena: &mut TermArena, f: TermId) -> SatAnswer {
        let mut atoms = AtomTable::default();
        let skeleton = self.abstract_bool(arena, f, true, &mut atoms);
        if self.core == SolverCore::Cdcl {
            return self.cdcl_sat(&skeleton, &atoms);
        }
        let mut assignment: Vec<Option<bool>> = vec![None; atoms.list.len()];
        if !self.learn_enabled {
            return self.dpll(&skeleton, &atoms.list, &mut assignment);
        }
        // Instantiate retained lemmas over this query's atom table. A
        // clause applies only when every one of its atoms occurs in the
        // formula — so propagation never assigns atoms the formula does
        // not mention, and the leaf theory keys stay comparable to the
        // naive search's.
        let clauses: Vec<Vec<(usize, bool)>> = self
            .learned
            .iter()
            .filter_map(|clause| {
                clause
                    .iter()
                    .map(|(a, pol)| atoms.index.get(a).map(|&i| (i, *pol)))
                    .collect()
            })
            .collect();
        self.cdpll(&skeleton, &atoms.list, &clauses, &mut assignment)
    }

    /// Answers one satisfiability query with the CDCL core.
    ///
    /// The skeleton is Tseitin-encoded to CNF (atom indices become the
    /// first variables, auxiliary definition variables follow), the
    /// retained cross-query lemmas are instantiated as initial clauses,
    /// and the engine runs to a verdict. Afterwards the engine's
    /// untainted conflict lemmas over pure atom variables are exported
    /// back into the cross-query store, exactly like the legacy
    /// clause-learning core, and the engine's counters and remaining
    /// fuel fold into the solver's.
    fn cdcl_sat(&mut self, skeleton: &BForm, atoms: &AtomTable) -> SatAnswer {
        let mut eng = CdclEngine::new(
            atoms.list.clone(),
            self.learn_enabled,
            self.fuel,
            self.deadline,
        );
        if !eng.encode(skeleton) {
            // Propositionally false at the root: no search, no fuel.
            return SatAnswer::Unsat;
        }
        if self.learn_enabled {
            // Instantiate retained lemmas whose atoms all occur in this
            // query (same applicability rule as the legacy core).
            let instantiated: Vec<Vec<(usize, bool)>> = self
                .learned
                .iter()
                .filter_map(|clause| {
                    clause
                        .iter()
                        .map(|(a, pol)| atoms.index.get(a).map(|&i| (i, *pol)))
                        .collect()
                })
                .collect();
            for c in instantiated {
                eng.add_lemma(&c);
            }
        }
        let verdict = eng.solve(self);
        self.fuel = eng.fuel;
        self.fuel_exhausted |= eng.fuel_exhausted;
        self.deadline_exhausted |= eng.deadline_exhausted;
        self.branches += eng.decisions as usize;
        self.conflicts += eng.conflicts as usize;
        self.restarts += eng.restarts as usize;
        self.propagations += eng.propagations as usize;
        self.theory_props += eng.theory_props as usize;
        self.learned_clauses += eng.learned_total as usize;
        if self.learn_enabled {
            for clause in eng.exported() {
                if self.learned.len() >= MAX_LEARNED_CLAUSES {
                    break;
                }
                let mut lemma: Vec<(Atom, bool)> = clause
                    .iter()
                    .map(|&(i, pol)| (atoms.list[i].clone(), pol))
                    .collect();
                lemma.sort_unstable();
                lemma.dedup();
                if self.learned_index.insert(lemma.clone()) {
                    self.learned.push(lemma);
                }
            }
        }
        verdict
    }

    /// Converts a boolean term to a skeleton, interning atoms.
    /// `positive` tracks NNF polarity.
    fn abstract_bool(
        &mut self,
        arena: &mut TermArena,
        id: TermId,
        positive: bool,
        atoms: &mut AtomTable,
    ) -> BForm {
        match arena.node(id) {
            Term::Bool(b) => {
                if b == positive {
                    BForm::True
                } else {
                    BForm::False
                }
            }
            Term::Not(inner) => self.abstract_bool(arena, inner, !positive, atoms),
            Term::And(a, b) => {
                let fa = self.abstract_bool(arena, a, positive, atoms);
                let fb = self.abstract_bool(arena, b, positive, atoms);
                if positive {
                    BForm::And(Box::new(fa), Box::new(fb))
                } else {
                    BForm::Or(Box::new(fa), Box::new(fb))
                }
            }
            Term::Or(a, b) => {
                let fa = self.abstract_bool(arena, a, positive, atoms);
                let fb = self.abstract_bool(arena, b, positive, atoms);
                if positive {
                    BForm::Or(Box::new(fa), Box::new(fb))
                } else {
                    BForm::And(Box::new(fa), Box::new(fb))
                }
            }
            Term::Sym(s) => BForm::Lit(atoms.intern(Atom::BoolSym(s)), positive),
            Term::Lt(a, b) => {
                if let Some(ex) = split_cmp_ite(arena, a, b, Cmp::Lt) {
                    return self.abstract_bool(arena, ex, positive, atoms);
                }
                // a < b  ⇔  a - b + 1 ≤ 0 (integers).
                match (self.linearize(arena, a), self.linearize(arena, b)) {
                    (Some(la), Some(lb)) => {
                        let lin = if positive {
                            la.sub(&lb).add(&LinTerm::constant(1))
                        } else {
                            // ¬(a < b) ⇔ b ≤ a ⇔ b - a ≤ 0.
                            lb.sub(&la)
                        };
                        lin_lit(atoms, lin)
                    }
                    _ => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
                }
            }
            Term::Le(a, b) => {
                if let Some(ex) = split_cmp_ite(arena, a, b, Cmp::Le) {
                    return self.abstract_bool(arena, ex, positive, atoms);
                }
                match (self.linearize(arena, a), self.linearize(arena, b)) {
                    (Some(la), Some(lb)) => {
                        let lin = if positive {
                            la.sub(&lb)
                        } else {
                            // ¬(a ≤ b) ⇔ b + 1 ≤ a ⇔ b - a + 1 ≤ 0.
                            lb.sub(&la).add(&LinTerm::constant(1))
                        };
                        lin_lit(atoms, lin)
                    }
                    _ => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
                }
            }
            Term::Eq(a, b) => match self.sort_of(arena, a).or_else(|| self.sort_of(arena, b)) {
                Some(Sort::Int) => {
                    if let Some(ex) = split_cmp_ite(arena, a, b, Cmp::Eq) {
                        return self.abstract_bool(arena, ex, positive, atoms);
                    }
                    match (self.linearize(arena, a), self.linearize(arena, b)) {
                        (Some(la), Some(lb)) => {
                            let d = la.sub(&lb);
                            if positive {
                                // d = 0 ⇔ d ≤ 0 ∧ -d ≤ 0.
                                BForm::And(
                                    Box::new(lin_lit(atoms, d.clone())),
                                    Box::new(lin_lit(atoms, d.scale(-1))),
                                )
                            } else {
                                // d ≠ 0 ⇔ d ≤ -1 ∨ -d ≤ -1.
                                BForm::Or(
                                    Box::new(lin_lit(atoms, d.add(&LinTerm::constant(1)))),
                                    Box::new(lin_lit(
                                        atoms,
                                        d.scale(-1).add(&LinTerm::constant(1)),
                                    )),
                                )
                            }
                        }
                        _ => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
                    }
                }
                Some(Sort::Ref) => match (ref_term(arena, a), ref_term(arena, b)) {
                    (Some(ra), Some(rb)) => BForm::Lit(atoms.intern(Atom::RefEq(ra, rb)), positive),
                    _ => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
                },
                Some(Sort::Bool) => {
                    // a ↔ b.
                    let both = arena.and(a, b);
                    let na = arena.not(a);
                    let nb = arena.not(b);
                    let neither = arena.and(na, nb);
                    let expanded = arena.or(both, neither);
                    self.abstract_bool(arena, expanded, positive, atoms)
                }
                None => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
            },
            Term::Ite(c, t, el) => {
                // Boolean ite: (c ∧ t) ∨ (¬c ∧ e).
                let then_arm = arena.and(c, t);
                let nc = arena.not(c);
                let else_arm = arena.and(nc, el);
                let expanded = arena.or(then_arm, else_arm);
                self.abstract_bool(arena, expanded, positive, atoms)
            }
            _ => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
        }
    }

    fn sort_of(&self, arena: &TermArena, id: TermId) -> Option<Sort> {
        match arena.node(id) {
            Term::Int(_) | Term::Add(..) | Term::Sub(..) | Term::Mul(..) => Some(Sort::Int),
            Term::Bool(_)
            | Term::Not(_)
            | Term::And(..)
            | Term::Or(..)
            | Term::Eq(..)
            | Term::Lt(..)
            | Term::Le(..) => Some(Sort::Bool),
            Term::Null => Some(Sort::Ref),
            Term::Sym(s) => self.sorts.get(&s).copied(),
            Term::Ite(_, t, e2) => self.sort_of(arena, t).or_else(|| self.sort_of(arena, e2)),
        }
    }

    fn linearize(&self, arena: &TermArena, id: TermId) -> Option<LinTerm> {
        match arena.node(id) {
            Term::Int(n) => Some(LinTerm::constant(n as i128)),
            Term::Sym(s) => match self.sorts.get(&s) {
                Some(Sort::Int) | None => Some(LinTerm::var(s)),
                _ => None,
            },
            Term::Add(a, b) => Some(self.linearize(arena, a)?.add(&self.linearize(arena, b)?)),
            Term::Sub(a, b) => Some(self.linearize(arena, a)?.sub(&self.linearize(arena, b)?)),
            Term::Mul(a, b) => {
                let la = self.linearize(arena, a)?;
                let lb = self.linearize(arena, b)?;
                if la.is_constant() {
                    Some(lb.scale(la.konst))
                } else if lb.is_constant() {
                    Some(la.scale(lb.konst))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn dpll(
        &mut self,
        skeleton: &BForm,
        atoms: &[Atom],
        assignment: &mut Vec<Option<bool>>,
    ) -> SatAnswer {
        match self.fuel {
            Some(0) => {
                self.fuel_exhausted = true;
                return SatAnswer::Unknown;
            }
            Some(f) => self.fuel = Some(f - 1),
            None => {}
        }
        if self.deadline_tripped() {
            return SatAnswer::Unknown;
        }
        self.branches += 1;
        match simplify(skeleton, assignment) {
            BForm::False => SatAnswer::Unsat,
            BForm::True => self.theory_check(atoms, assignment),
            reduced => {
                let pick = first_lit(&reduced).expect("non-constant form has a literal");
                assignment[pick] = Some(true);
                let r1 = self.dpll(&reduced, atoms, assignment);
                if r1 == SatAnswer::Sat {
                    assignment[pick] = None;
                    return SatAnswer::Sat;
                }
                assignment[pick] = Some(false);
                let r2 = self.dpll(&reduced, atoms, assignment);
                assignment[pick] = None;
                match (r1, r2) {
                    (_, SatAnswer::Sat) => SatAnswer::Sat,
                    (SatAnswer::Unsat, SatAnswer::Unsat) => SatAnswer::Unsat,
                    _ => SatAnswer::Unknown,
                }
            }
        }
    }

    /// The clause-learning search: [`Solver::dpll`] extended with unit
    /// propagation (formula conjuncts and learned-clause units),
    /// pure-literal elimination on boolean symbols, and pruning by the
    /// retained lemmas. Fuel and branch accounting are identical to the
    /// naive search — one unit of each per entry — so budgets compare
    /// the two cores on equal terms.
    fn cdpll(
        &mut self,
        skeleton: &BForm,
        atoms: &[Atom],
        clauses: &[Vec<(usize, bool)>],
        assignment: &mut Vec<Option<bool>>,
    ) -> SatAnswer {
        match self.fuel {
            Some(0) => {
                self.fuel_exhausted = true;
                return SatAnswer::Unknown;
            }
            Some(f) => self.fuel = Some(f - 1),
            None => {}
        }
        if self.deadline_tripped() {
            return SatAnswer::Unknown;
        }
        self.branches += 1;
        // Only boolean symbols are ever purified, so the whole
        // pure-literal pass (a formula walk plus a polarity map per
        // propagation round) is skipped on the many queries that are
        // pure arithmetic.
        let has_bool_syms = atoms.iter().any(|a| matches!(a, Atom::BoolSym(_)));
        // Literals assigned by propagation in this frame, unwound on
        // every exit path.
        let mut trail: Vec<usize> = Vec::new();
        let verdict = 'search: loop {
            let current = simplify(skeleton, assignment);
            if matches!(current, BForm::False) {
                break 'search SatAnswer::Unsat;
            }
            // A falsified lemma refutes the branch before any theory
            // work: the clause is valid in every theory model.
            let mut unit: Option<(usize, bool)> = None;
            for clause in clauses {
                let mut satisfied = false;
                let mut open = None;
                let mut open_count = 0;
                for &(i, pol) in clause {
                    match assignment[i] {
                        Some(v) if v == pol => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            open_count += 1;
                            open = Some((i, pol));
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                if open_count == 0 {
                    break 'search SatAnswer::Unsat;
                }
                if open_count == 1 && unit.is_none() {
                    unit = open;
                }
            }
            if matches!(current, BForm::True) {
                break 'search self.decide_leaf(atoms, assignment);
            }
            if let Some((i, pol)) = unit {
                assignment[i] = Some(pol);
                trail.push(i);
                continue;
            }
            // Unit propagation from the formula: bare literals on the
            // reduced conjunction spine are forced.
            let mut units: Vec<(usize, bool)> = Vec::new();
            collect_units(&current, &mut units);
            let mut forced = false;
            for (i, pol) in units {
                match assignment[i] {
                    None => {
                        assignment[i] = Some(pol);
                        trail.push(i);
                        forced = true;
                    }
                    Some(v) if v != pol => break 'search SatAnswer::Unsat,
                    Some(_) => {}
                }
            }
            if forced {
                continue;
            }
            // Pure-literal elimination, boolean symbols only. A
            // BoolSym atom has no theory meaning, so committing its
            // unique polarity preserves satisfiability exactly. Theory
            // atoms are NOT safe to purify: assigning a pure `x ≤ 0`
            // true strengthens the constraint set a leaf hands the
            // theories and could flip a satisfiable leaf to conflict.
            if has_bool_syms {
                let mut polarity: BTreeMap<usize, (bool, bool)> = BTreeMap::new();
                collect_polarities(&current, &mut polarity);
                for clause in clauses {
                    if clause.iter().any(|&(i, pol)| assignment[i] == Some(pol)) {
                        continue;
                    }
                    for &(i, pol) in clause {
                        if assignment[i].is_none() {
                            let e = polarity.entry(i).or_insert((false, false));
                            if pol {
                                e.0 = true;
                            } else {
                                e.1 = true;
                            }
                        }
                    }
                }
                let mut purified = false;
                for (i, (pos, neg)) in &polarity {
                    if pos != neg
                        && assignment[*i].is_none()
                        && matches!(atoms[*i], Atom::BoolSym(_))
                    {
                        assignment[*i] = Some(*pos);
                        trail.push(*i);
                        purified = true;
                    }
                }
                if purified {
                    continue;
                }
            }
            // Branch, deterministically, on the first open literal.
            let pick = first_lit(&current).expect("non-constant form has a literal");
            assignment[pick] = Some(true);
            let r1 = self.cdpll(&current, atoms, clauses, assignment);
            if r1 == SatAnswer::Sat {
                assignment[pick] = None;
                break 'search SatAnswer::Sat;
            }
            assignment[pick] = Some(false);
            let r2 = self.cdpll(&current, atoms, clauses, assignment);
            assignment[pick] = None;
            break 'search match (r1, r2) {
                (_, SatAnswer::Sat) => SatAnswer::Sat,
                (SatAnswer::Unsat, SatAnswer::Unsat) => SatAnswer::Unsat,
                _ => SatAnswer::Unknown,
            };
        };
        for i in trail {
            assignment[i] = None;
        }
        verdict
    }

    /// Theory-checks a leaf of the clause-learning search and, on
    /// conflict, learns a minimized refutation clause.
    fn decide_leaf(&mut self, atoms: &[Atom], assignment: &[Option<bool>]) -> SatAnswer {
        let key = theory_key(atoms, assignment);
        let verdict = self.theory_decide(key.clone());
        if verdict == SatAnswer::Unsat {
            self.learn_conflict(&key);
        }
        verdict
    }

    /// Learns the negation of a minimized theory-conflict core as a
    /// clause. Cores are LinLe/RefEq literals only — boolean symbols
    /// never feed the theories, and `Opaque` atoms can only degrade a
    /// verdict toward `Unknown`, so a conflict never depends on either.
    fn learn_conflict(&mut self, key: &[(Atom, bool)]) {
        if self.learned.len() >= MAX_LEARNED_CLAUSES {
            return;
        }
        let mut core: Vec<(Atom, bool)> = key
            .iter()
            .filter(|(a, _)| matches!(a, Atom::LinLe(_) | Atom::RefEq(..)))
            .cloned()
            .collect();
        if core.is_empty() || core.len() > MINIMIZE_LIMIT {
            return;
        }
        // Conflict analysis costs one theory check to re-verify the
        // filtered core plus up to one minimization trial per literal.
        // Charge the worst case against the per-method fuel up front:
        // once it runs dry, conflicts stop being analyzed and search
        // proceeds at plain-DPLL cost (answers are unaffected — lemmas
        // only ever prune).
        let needed = 1 + core.len() as u64;
        if self.learn_fuel < needed {
            return;
        }
        self.learn_fuel -= needed;
        if self.theory_decide(core.clone()) != SatAnswer::Unsat {
            return;
        }
        // Greedy single-pass minimization: drop every literal whose
        // removal keeps the core in conflict (each trial is a memoized
        // theory check). Literals whose removal degrades the verdict to
        // Unknown are kept — a lemma must be certain.
        let mut i = 0;
        while i < core.len() && core.len() > 1 {
            let mut trial = core.clone();
            trial.remove(i);
            if self.theory_decide(trial) == SatAnswer::Unsat {
                core.remove(i);
            } else {
                i += 1;
            }
        }
        if core.len() > MAX_LEARN_WIDTH {
            return;
        }
        let clause: Vec<(Atom, bool)> = core.into_iter().map(|(a, pol)| (a, !pol)).collect();
        if self.learned_index.insert(clause.clone()) {
            self.learned.push(clause);
            self.learned_clauses += 1;
        }
    }

    /// Checks a full propositional assignment against the theories.
    ///
    /// The verdict is a function of the *set* of assigned theory
    /// literals alone (union-find connectivity and Fourier–Motzkin are
    /// order-independent), so it is memoized on the sorted literal set:
    /// DPLL leaves within one query, and across queries whose path
    /// conditions share a prefix, reuse each other's ground work.
    fn theory_check(&mut self, atoms: &[Atom], assignment: &[Option<bool>]) -> SatAnswer {
        let key = theory_key(atoms, assignment);
        self.theory_decide(key)
    }

    /// Decides a sorted, deduplicated theory-literal set (the memoized
    /// core of [`Solver::theory_check`], also driven directly by
    /// conflict-core minimization).
    fn theory_decide(&mut self, key: Vec<(Atom, bool)>) -> SatAnswer {
        if self.cache_enabled {
            if let Some(&cached) = self.theory_cache.get(&key) {
                self.theory_hits += 1;
                return cached;
            }
            self.theory_misses += 1;
        }

        // Opaque atoms poison certainty of Sat.
        let mut unknown = false;
        // --- References: union-find with disequalities.
        let mut uf = UnionFind::new();
        let mut disequalities: Vec<(RefTerm, RefTerm)> = Vec::new();
        // --- Integers: Fourier–Motzkin.
        let mut constraints: Vec<LinTerm> = Vec::new();

        for (atom, polarity) in &key {
            match atom {
                Atom::LinLe(lin) => {
                    if *polarity {
                        constraints.push(lin.clone());
                    } else {
                        // ¬(lin ≤ 0) ⇔ -lin + 1 ≤ 0.
                        constraints.push(lin.scale(-1).add(&LinTerm::constant(1)));
                    }
                }
                Atom::BoolSym(_) => {}
                Atom::RefEq(a, b) => {
                    if *polarity {
                        uf.union(*a, *b);
                    } else {
                        disequalities.push((*a, *b));
                    }
                }
                Atom::Opaque(_) => unknown = true,
            }
        }

        let mut result = SatAnswer::Sat;
        for (a, b) in &disequalities {
            if uf.find(*a) == uf.find(*b) {
                result = SatAnswer::Unsat;
            }
        }

        if result != SatAnswer::Unsat {
            match fourier_motzkin(constraints) {
                Some(false) => result = SatAnswer::Unsat,
                Some(true) => {}
                None => unknown = true,
            }
        }

        if result != SatAnswer::Unsat && unknown {
            result = SatAnswer::Unknown;
        }

        if self.cache_enabled {
            self.theory_cache.insert(key, result);
        }
        result
    }
}

// ===================== CDCL core =====================

/// Conflicts before the first Luby restart; later intervals are this
/// times the Luby sequence (1, 1, 2, 1, 1, 2, 4, …).
const LUBY_UNIT: u64 = 64;

/// Conflicts between learned-clause reductions — the fixed deletion
/// cadence (deterministic: a function of the conflict count alone).
const REDUCE_CADENCE: u64 = 2000;

/// VSIDS decay: the bump increment grows by `1/VSIDS_DECAY` per
/// conflict, which is equivalent to decaying every variable's activity.
const VSIDS_DECAY: f64 = 0.95;

/// Activity magnitude that triggers a rescale of all activities.
const VSIDS_RESCALE: f64 = 1e100;

#[inline]
fn mk_lit(var: usize, pol: bool) -> usize {
    var * 2 + usize::from(!pol)
}

#[inline]
fn lit_var(l: usize) -> usize {
    l >> 1
}

#[inline]
fn lit_pol(l: usize) -> bool {
    l & 1 == 0
}

#[inline]
fn lit_neg(l: usize) -> usize {
    l ^ 1
}

/// An exact rational variable bound `num/den` (`den > 0`), tagged with
/// the literal that imposed it. Bounds stay rational — never rounded to
/// integers — so the propagation layer proves exactly what the legacy
/// core's (rational) Fourier–Motzkin leaf check proves, keeping the two
/// cores answer-identical.
type RatBound = (i128, i128, usize);

/// The result of a Tseitin encoding step.
enum TLit {
    True,
    False,
    Lit(usize),
}

/// One CNF clause of the CDCL engine.
#[derive(Debug)]
struct CClause {
    lits: Vec<usize>,
    /// Deletable by the LBD policy (conflict-learned clauses).
    learned: bool,
    /// Never deleted: theory-explanation and blocking clauses, whose
    /// indices live in caches or must keep cubes blocked.
    protect: bool,
    /// Derived (transitively) from a blocking clause — sound for
    /// in-query pruning under the taint flag, but never exported as a
    /// theory lemma.
    tainted: bool,
    /// A conflict-learned theory lemma over pure atom variables —
    /// eligible for cross-query retention.
    export: bool,
    lbd: u32,
    deleted: bool,
}

/// The outcome of one theory-propagation pass.
enum TheoryResult {
    /// Nothing new.
    Quiet,
    /// Propagated at least one literal; run BCP again.
    Progress,
    /// Theory conflict. Carries the conflict clause index when clause
    /// learning is on; `None` under the chronological (no-learn) search.
    Conflict(Option<usize>),
}

/// The outcome of checking a total assignment against the theories.
enum LeafOutcome {
    /// Theory-consistent: the query is satisfiable.
    Sat,
    /// Search space exhausted (conflict or blocking at the root).
    Done,
    /// Conflict or blocking handled; resume the search loop.
    Continue,
}

/// The Luby sequence (1, 1, 2, 1, 1, 2, 4, …) at index `x ≥ 0`.
fn luby(x: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// One query's CDCL search state. Variables `0..natoms` are the atom
/// indices of the query's [`AtomTable`]; Tseitin auxiliary variables
/// follow. Everything is indexed `Vec`s and fixed iteration orders, so
/// a query's search — decisions, conflicts, learned clauses, restarts —
/// is a pure function of the query and the retained lemma set, which is
/// what keeps verdicts and stats bit-identical at any thread count.
struct CdclEngine {
    atoms: Vec<Atom>,
    natoms: usize,
    nvars: usize,
    clauses: Vec<CClause>,
    /// `watches[lit]` — clauses currently watching `lit`.
    watches: Vec<Vec<usize>>,
    /// Canonical-lits → clause index for theory-explanation clauses, so
    /// the recomputing theory pass reuses rather than re-adds them.
    expl_index: HashMap<Vec<usize>, usize>,
    assign: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<usize>,
    trail_lim: Vec<usize>,
    /// Per-level "second phase tried" flags for the chronological
    /// (no-learn) search.
    flipped: Vec<bool>,
    qhead: usize,
    /// Variables occurring in the problem clauses — the only ones the
    /// search decides, so unconstrained atoms stay unassigned exactly
    /// as in the legacy core (their theory meaning is existential).
    decidable: Vec<bool>,
    activity: Vec<f64>,
    act_inc: f64,
    seen: Vec<bool>,
    learn: bool,
    fuel: Option<u64>,
    fuel_exhausted: bool,
    deadline: Option<Instant>,
    deadline_exhausted: bool,
    deadline_poll: u32,
    /// Set when a theory-Unknown leaf was blocked; a final Unsat then
    /// degrades to Unknown (the blocked cube might have been a model).
    taint: bool,
    decisions: u64,
    conflicts: u64,
    restarts: u64,
    propagations: u64,
    theory_props: u64,
    learned_total: u64,
    conflicts_since_restart: u64,
    conflicts_since_reduce: u64,
    root_unsat: bool,
}

impl CdclEngine {
    fn new(
        atoms: Vec<Atom>,
        learn: bool,
        fuel: Option<u64>,
        deadline: Option<Instant>,
    ) -> CdclEngine {
        let natoms = atoms.len();
        CdclEngine {
            atoms,
            natoms,
            nvars: natoms,
            clauses: Vec::new(),
            watches: vec![Vec::new(); natoms * 2],
            expl_index: HashMap::new(),
            assign: vec![None; natoms],
            level: vec![0; natoms],
            reason: vec![None; natoms],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            flipped: Vec::new(),
            qhead: 0,
            decidable: vec![false; natoms],
            activity: vec![0.0; natoms],
            act_inc: 1.0,
            seen: vec![false; natoms],
            learn,
            fuel,
            fuel_exhausted: false,
            deadline,
            deadline_exhausted: false,
            deadline_poll: 0,
            taint: false,
            decisions: 0,
            conflicts: 0,
            restarts: 0,
            propagations: 0,
            theory_props: 0,
            learned_total: 0,
            conflicts_since_restart: 0,
            conflicts_since_reduce: 0,
            root_unsat: false,
        }
    }

    fn new_var(&mut self) -> usize {
        let v = self.nvars;
        self.nvars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.decidable.push(false);
        self.activity.push(0.0);
        self.seen.push(false);
        v
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn value(&self, l: usize) -> Option<bool> {
        self.assign[lit_var(l)].map(|v| v == lit_pol(l))
    }

    fn charge_fuel(&mut self, n: u64) {
        if let Some(f) = self.fuel {
            if f < n {
                self.fuel = Some(0);
                self.fuel_exhausted = true;
            } else {
                self.fuel = Some(f - n);
            }
        }
    }

    /// Engine-side twin of [`Solver::deadline_tripped`]: polls the
    /// wall-clock deadline once per conflict/decision iteration of the
    /// CDCL main loop (masked to one `Instant::now()` every
    /// [`DEADLINE_POLL_MASK`]+1 iterations, with the first iteration
    /// always checked).
    fn deadline_tripped(&mut self) -> bool {
        if self.deadline_exhausted {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        self.deadline_poll = self.deadline_poll.wrapping_add(1);
        if self.deadline_poll & DEADLINE_POLL_MASK != 1 {
            return false;
        }
        if Instant::now() >= deadline {
            self.deadline_exhausted = true;
            true
        } else {
            false
        }
    }

    /// Assigns a literal. `counted` distinguishes propagations (which
    /// are fuel-charged) from decisions. Returns false on a conflicting
    /// existing assignment.
    fn assign_lit(&mut self, l: usize, why: Option<usize>, counted: bool) -> bool {
        let v = lit_var(l);
        match self.assign[v] {
            Some(val) => val == lit_pol(l),
            None => {
                self.assign[v] = Some(lit_pol(l));
                self.level[v] = self.current_level();
                self.reason[v] = why;
                self.trail.push(l);
                if counted {
                    self.propagations += 1;
                    self.charge_fuel(1);
                }
                true
            }
        }
    }

    /// Tseitin-encodes the skeleton; returns false when the root is
    /// propositionally false (no search needed).
    fn encode(&mut self, f: &BForm) -> bool {
        match self.tseitin(f) {
            TLit::True => true,
            TLit::False => false,
            TLit::Lit(l) => {
                self.add_problem_clause(vec![l]);
                !self.root_unsat
            }
        }
    }

    fn tseitin(&mut self, f: &BForm) -> TLit {
        match f {
            BForm::True => TLit::True,
            BForm::False => TLit::False,
            BForm::Lit(i, pol) => TLit::Lit(mk_lit(*i, *pol)),
            BForm::And(a, b) | BForm::Or(a, b) => {
                let conj = matches!(f, BForm::And(..));
                let la = self.tseitin(a);
                let lb = self.tseitin(b);
                let (x, y) = match (la, lb) {
                    (TLit::True, o) | (o, TLit::True) => {
                        return if conj { o } else { TLit::True };
                    }
                    (TLit::False, o) | (o, TLit::False) => {
                        return if conj { TLit::False } else { o };
                    }
                    (TLit::Lit(x), TLit::Lit(y)) => (x, y),
                };
                if x == y {
                    return TLit::Lit(x);
                }
                if x == lit_neg(y) {
                    return if conj { TLit::False } else { TLit::True };
                }
                let v = self.new_var();
                let vl = mk_lit(v, true);
                if conj {
                    // v ↔ x ∧ y.
                    self.add_problem_clause(vec![lit_neg(vl), x]);
                    self.add_problem_clause(vec![lit_neg(vl), y]);
                    self.add_problem_clause(vec![vl, lit_neg(x), lit_neg(y)]);
                } else {
                    // v ↔ x ∨ y.
                    self.add_problem_clause(vec![vl, lit_neg(x)]);
                    self.add_problem_clause(vec![vl, lit_neg(y)]);
                    self.add_problem_clause(vec![lit_neg(vl), x, y]);
                }
                TLit::Lit(vl)
            }
        }
    }

    /// Adds a problem clause (Tseitin definition or root assertion),
    /// marking its variables decidable.
    fn add_problem_clause(&mut self, mut lits: Vec<usize>) {
        lits.sort_unstable();
        lits.dedup();
        if lits.windows(2).any(|w| w[1] == lit_neg(w[0])) {
            return; // tautology
        }
        for &l in &lits {
            self.decidable[lit_var(l)] = true;
        }
        match lits.len() {
            0 => self.root_unsat = true,
            1 => {
                if !self.assign_lit(lits[0], None, true) {
                    self.root_unsat = true;
                }
            }
            _ => {
                let ci = self.push_clause(lits, false, false, false, false, 0);
                self.attach_watches(ci);
            }
        }
    }

    /// Instantiates one retained cross-query lemma as an initial
    /// (protected, exportable-again) clause.
    fn add_lemma(&mut self, lemma: &[(usize, bool)]) {
        let lits: Vec<usize> = lemma.iter().map(|&(i, pol)| mk_lit(i, pol)).collect();
        self.add_problem_clause(lits);
    }

    fn push_clause(
        &mut self,
        lits: Vec<usize>,
        learned: bool,
        protect: bool,
        tainted: bool,
        export: bool,
        lbd: u32,
    ) -> usize {
        let ci = self.clauses.len();
        self.clauses.push(CClause {
            lits,
            learned,
            protect,
            tainted,
            export,
            lbd,
            deleted: false,
        });
        ci
    }

    fn attach_watches(&mut self, ci: usize) {
        debug_assert!(self.clauses[ci].lits.len() >= 2);
        let l0 = self.clauses[ci].lits[0];
        let l1 = self.clauses[ci].lits[1];
        self.watches[l0].push(ci);
        self.watches[l1].push(ci);
    }

    /// Two-watched-literal boolean constraint propagation. Returns the
    /// conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let fl = lit_neg(p); // this literal just became false
            let mut ws = std::mem::take(&mut self.watches[fl]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                if self.clauses[ci].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                if self.clauses[ci].lits[0] == fl {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let len = self.clauses[ci].lits.len();
                let mut moved = false;
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.value(lk) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[lk].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                if self.value(first) == Some(false) {
                    // Conflict: restore the watch list and halt BCP.
                    self.watches[fl] = ws;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                // Unit: propagate `first` with this clause as reason.
                self.assign_lit(first, Some(ci), true);
                i += 1;
            }
            self.watches[fl] = ws;
        }
        None
    }

    fn backtrack(&mut self, lvl: u32) {
        while self.current_level() > lvl {
            let start = self.trail_lim.pop().expect("level exists");
            self.flipped.pop();
            while self.trail.len() > start {
                let l = self.trail.pop().expect("trail non-empty");
                let v = lit_var(l);
                self.assign[v] = None;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.act_inc;
        if self.activity[v] > VSIDS_RESCALE {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// The deterministic VSIDS pick: the unassigned decidable variable
    /// of maximal activity, ties broken toward the smallest index.
    fn pick_branch(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for v in 0..self.nvars {
            if !self.decidable[v] || self.assign[v].is_some() {
                continue;
            }
            match best {
                None => best = Some(v),
                Some(b) if self.activity[v] > self.activity[b] => best = Some(v),
                Some(_) => {}
            }
        }
        best
    }

    /// Gets (or creates) the theory-explanation clause asserting `lit`
    /// under the already-true `expl` literals: `lit ∨ ¬e₁ ∨ … ∨ ¬eₙ`.
    /// Explanation clauses are protected from deletion because the
    /// recomputing theory pass holds their indices in `expl_index`.
    fn explanation_clause(&mut self, lit: usize, expl: &[usize]) -> usize {
        let mut lits: Vec<usize> = Vec::with_capacity(expl.len() + 1);
        lits.push(lit);
        lits.extend(expl.iter().map(|&e| lit_neg(e)));
        lits.sort_unstable();
        lits.dedup();
        if let Some(&ci) = self.expl_index.get(&lits) {
            return ci;
        }
        let key = lits.clone();
        // Order for watching: the asserted literal first, then the
        // falsified explanation literals by descending level.
        let mut ordered = lits;
        ordered.sort_by_key(|&l| {
            if l == lit {
                (0, 0, l)
            } else {
                (1, u32::MAX - self.level[lit_var(l)], l)
            }
        });
        let ci = self.push_clause(ordered, true, true, false, false, 2);
        if self.clauses[ci].lits.len() >= 2 {
            self.attach_watches(ci);
        }
        self.expl_index.insert(key, ci);
        ci
    }

    /// Theory-propagates `lit` with the given explanation (a set of
    /// currently-true literals that imply it in the theory).
    fn theory_enqueue(&mut self, lit: usize, expl: &[usize]) {
        self.theory_props += 1;
        let why = if self.learn {
            Some(self.explanation_clause(lit, expl))
        } else {
            None
        };
        self.assign_lit(lit, why, true);
    }

    /// Builds a theory-conflict clause from a set of currently-true
    /// literals that are jointly theory-inconsistent.
    fn theory_conflict(&mut self, expl: Vec<usize>) -> TheoryResult {
        if !self.learn {
            return TheoryResult::Conflict(None);
        }
        let mut lits: Vec<usize> = expl.iter().map(|&e| lit_neg(e)).collect();
        lits.sort_unstable();
        lits.dedup();
        if let Some(&ci) = self.expl_index.get(&lits) {
            return TheoryResult::Conflict(Some(ci));
        }
        let key = lits.clone();
        let mut ordered = lits;
        ordered.sort_by_key(|&l| (u32::MAX - self.level[lit_var(l)], l));
        let ci = self.push_clause(ordered, true, true, false, false, 2);
        if self.clauses[ci].lits.len() >= 2 {
            self.attach_watches(ci);
        }
        self.expl_index.insert(key, ci);
        TheoryResult::Conflict(Some(ci))
    }

    /// One theory-propagation pass, recomputed from the assigned atom
    /// literals: congruence closure over reference equalities, and
    /// difference-bound reasoning (per-variable bounds from single-
    /// variable atoms, bound strengthening of unassigned atoms, and
    /// bounds-conflict detection for multi-variable atoms).
    fn theory_pass(&mut self) -> TheoryResult {
        let mut uf = UnionFind::new();
        let mut eq_lits: Vec<usize> = Vec::new();
        let mut diseqs: Vec<(RefTerm, RefTerm, usize)> = Vec::new();
        let mut lower: BTreeMap<Sym, RatBound> = BTreeMap::new();
        let mut upper: BTreeMap<Sym, RatBound> = BTreeMap::new();
        let mut multi: Vec<(LinTerm, usize)> = Vec::new();

        // Trail order keeps the tightest-bound tie-breaks deterministic.
        for t in 0..self.trail.len() {
            let l = self.trail[t];
            let v = lit_var(l);
            if v >= self.natoms {
                continue;
            }
            match &self.atoms[v] {
                Atom::RefEq(a, b) => {
                    if lit_pol(l) {
                        uf.union(*a, *b);
                        eq_lits.push(l);
                    } else {
                        diseqs.push((*a, *b, l));
                    }
                }
                Atom::LinLe(lin) => {
                    // The effective constraint `c·x + k ≤ 0` this
                    // literal imposes.
                    let eff = if lit_pol(l) {
                        lin.clone()
                    } else {
                        lin.scale(-1).add(&LinTerm::constant(1))
                    };
                    if eff.coeffs.len() == 1 {
                        let (&x, &c) = eff.coeffs.iter().next().expect("one var");
                        if c > 0 {
                            // x ≤ -k/c, kept exact.
                            let (n, d) = (-eff.konst, c);
                            match upper.get(&x) {
                                Some(&(un, ud, _)) if un * d <= n * ud => {}
                                _ => {
                                    upper.insert(x, (n, d, l));
                                }
                            }
                        } else {
                            // x ≥ -k/c = k/(-c), kept exact.
                            let (n, d) = (eff.konst, -c);
                            match lower.get(&x) {
                                Some(&(ln2, ld, _)) if ln2 * d >= n * ld => {}
                                _ => {
                                    lower.insert(x, (n, d, l));
                                }
                            }
                        }
                    } else if !eff.coeffs.is_empty() {
                        multi.push((eff, l));
                    }
                }
                _ => {}
            }
        }

        // Conflicts first: crossed bounds on one variable, …
        for (x, &(ln2, ld, ll)) in &lower {
            if let Some(&(un, ud, ul)) = upper.get(x) {
                if ln2 * ud > un * ld {
                    return self.theory_conflict(vec![ll, ul]);
                }
            }
        }
        // … a disequality inside one congruence class, …
        for &(a, b, l) in &diseqs {
            if uf.find(a) == uf.find(b) {
                let mut expl = eq_lits.clone();
                expl.push(l);
                return self.theory_conflict(expl);
            }
        }
        // … or a multi-variable constraint whose minimum under the
        // current bounds is already positive.
        for (eff, l) in &multi {
            if let Some((min, used)) = bound_sum(eff, &lower, &upper, true) {
                if min > 0 {
                    let mut expl = used;
                    expl.push(*l);
                    return self.theory_conflict(expl);
                }
            }
        }

        // Propagation of unassigned atoms, in atom-index order.
        let mut progress = false;
        for v in 0..self.natoms {
            if !self.decidable[v] || self.assign[v].is_some() {
                continue;
            }
            match self.atoms[v].clone() {
                Atom::RefEq(a, b) => {
                    let (ra, rb) = (uf.find(a), uf.find(b));
                    if ra == rb {
                        let expl = eq_lits.clone();
                        self.theory_enqueue(mk_lit(v, true), &expl);
                        progress = true;
                    } else {
                        let hit = diseqs.iter().find(|&&(c, d, _)| {
                            let (rc, rd) = (uf.find(c), uf.find(d));
                            (rc == ra && rd == rb) || (rc == rb && rd == ra)
                        });
                        if let Some(&(_, _, dl)) = hit {
                            let mut expl = eq_lits.clone();
                            expl.push(dl);
                            self.theory_enqueue(mk_lit(v, false), &expl);
                            progress = true;
                        }
                    }
                }
                Atom::LinLe(lin) => {
                    if lin.coeffs.len() == 1 {
                        let (&x, &c) = lin.coeffs.iter().next().expect("one var");
                        if c > 0 {
                            // Atom ⇔ x ≤ -k/c, compared exactly.
                            if let Some(&(un, ud, ul)) = upper.get(&x) {
                                if un * c <= -lin.konst * ud {
                                    self.theory_enqueue(mk_lit(v, true), &[ul]);
                                    progress = true;
                                    continue;
                                }
                            }
                            if let Some(&(ln2, ld, ll)) = lower.get(&x) {
                                if ln2 * c > -lin.konst * ld {
                                    self.theory_enqueue(mk_lit(v, false), &[ll]);
                                    progress = true;
                                }
                            }
                        } else {
                            // Atom ⇔ x ≥ k/(-c), compared exactly.
                            let m = -c;
                            if let Some(&(ln2, ld, ll)) = lower.get(&x) {
                                if ln2 * m >= lin.konst * ld {
                                    self.theory_enqueue(mk_lit(v, true), &[ll]);
                                    progress = true;
                                    continue;
                                }
                            }
                            if let Some(&(un, ud, ul)) = upper.get(&x) {
                                if un * m < lin.konst * ud {
                                    self.theory_enqueue(mk_lit(v, false), &[ul]);
                                    progress = true;
                                }
                            }
                        }
                    } else if !lin.coeffs.is_empty() {
                        if let Some((max, used)) = bound_sum(&lin, &lower, &upper, false) {
                            if max <= 0 {
                                self.theory_enqueue(mk_lit(v, true), &used);
                                progress = true;
                                continue;
                            }
                        }
                        if let Some((min, used)) = bound_sum(&lin, &lower, &upper, true) {
                            if min > 0 {
                                self.theory_enqueue(mk_lit(v, false), &used);
                                progress = true;
                            }
                        }
                    }
                }
                _ => {}
            }
            if self.fuel_exhausted {
                break;
            }
        }
        if progress {
            TheoryResult::Progress
        } else {
            TheoryResult::Quiet
        }
    }

    /// First-UIP conflict analysis with local clause minimization.
    /// Returns the learnt clause (asserting literal first) and whether
    /// it resolved through a tainted (blocking-derived) clause.
    fn analyze(&mut self, confl: usize) -> (Vec<usize>, bool) {
        let current = self.current_level();
        let mut learnt: Vec<usize> = vec![0];
        let mut tainted = false;
        let mut counter = 0usize;
        let mut idx = self.trail.len();
        let mut p: Option<usize> = None;
        let mut ci = confl;
        let mut touched: Vec<usize> = Vec::new();
        loop {
            tainted |= self.clauses[ci].tainted;
            let lits = self.clauses[ci].lits.clone();
            for q in lits {
                if p == Some(q) {
                    continue; // the literal this reason asserted
                }
                let v = lit_var(q);
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    touched.push(v);
                    self.bump(v);
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk back to the newest seen literal at the conflict level.
            loop {
                idx -= 1;
                let v = lit_var(self.trail[idx]);
                if self.seen[v] && self.level[v] == current {
                    break;
                }
            }
            let pl = self.trail[idx];
            let v = lit_var(pl);
            counter -= 1;
            self.seen[v] = false;
            if counter == 0 {
                learnt[0] = lit_neg(pl);
                break;
            }
            ci = self.reason[v].expect("non-UIP literal at the conflict level has a reason");
            p = Some(pl);
        }
        // Local minimization: a tail literal is redundant when its
        // reason's other literals are all seen or at level 0 (never
        // minimized through tainted reasons, which would taint the
        // clause).
        let uip_var = lit_var(learnt[0]);
        self.seen[uip_var] = true;
        touched.push(uip_var);
        let mut kept: Vec<usize> = vec![learnt[0]];
        for &q in &learnt[1..] {
            let v = lit_var(q);
            let redundant = match self.reason[v] {
                Some(rc) if !self.clauses[rc].tainted => self.clauses[rc].lits.iter().all(|&r| {
                    lit_var(r) == v || self.seen[lit_var(r)] || self.level[lit_var(r)] == 0
                }),
                _ => false,
            };
            if !redundant {
                kept.push(q);
            }
        }
        for v in touched {
            self.seen[v] = false;
        }
        (kept, tainted)
    }

    /// Handles one conflict under clause learning: re-anchor late
    /// theory conflicts, analyze to the first UIP, backjump, attach and
    /// assert the learnt clause, then apply the decay/reduction/restart
    /// cadences. Returns false when the conflict is terminal (root).
    fn resolve_conflict(&mut self, ci: usize) -> bool {
        let maxl = self.clauses[ci]
            .lits
            .iter()
            .map(|&l| self.level[lit_var(l)])
            .max()
            .unwrap_or(0);
        if maxl == 0 {
            return false;
        }
        if maxl < self.current_level() {
            // A theory conflict discovered only at the leaf can be
            // falsified entirely below the current level; re-anchor.
            self.backtrack(maxl);
        }
        let (learnt, tainted) = self.analyze(ci);
        let bj = learnt[1..]
            .iter()
            .map(|&l| self.level[lit_var(l)])
            .max()
            .unwrap_or(0);
        self.backtrack(bj);
        self.learned_total += 1;
        let export = !tainted && learnt.iter().all(|&l| lit_var(l) < self.natoms);
        if learnt.len() == 1 {
            let lc = self.push_clause(learnt.clone(), true, true, tainted, export, 1);
            if !self.assign_lit(learnt[0], Some(lc), true) {
                return false;
            }
        } else {
            // Distinct decision levels of the clause = its LBD.
            let mut levels: Vec<u32> = learnt.iter().map(|&l| self.level[lit_var(l)]).collect();
            levels.sort_unstable();
            levels.dedup();
            let lbd = levels.len() as u32;
            let mut lits = learnt;
            // lits[1] must sit at the backjump level for safe watching.
            let pos = lits[1..]
                .iter()
                .position(|&l| self.level[lit_var(l)] == bj)
                .expect("a literal at the backjump level")
                + 1;
            lits.swap(1, pos);
            let asserting = lits[0];
            let lc = self.push_clause(lits, true, false, tainted, export, lbd);
            self.attach_watches(lc);
            if !self.assign_lit(asserting, Some(lc), true) {
                return false;
            }
        }
        self.act_inc /= VSIDS_DECAY;
        self.conflicts_since_restart += 1;
        self.conflicts_since_reduce += 1;
        if self.conflicts_since_reduce >= REDUCE_CADENCE {
            self.reduce_db();
            self.conflicts_since_reduce = 0;
        }
        if self.conflicts_since_restart >= LUBY_UNIT * luby(self.restarts) {
            self.restarts += 1;
            self.conflicts_since_restart = 0;
            self.backtrack(0);
        }
        true
    }

    /// Chronological backtracking for the no-learn search: flip the
    /// deepest not-yet-flipped decision. Returns false when the tree is
    /// exhausted.
    fn chrono_backtrack(&mut self) -> bool {
        loop {
            if self.trail_lim.is_empty() {
                return false;
            }
            let lvl = self.trail_lim.len();
            let dlit = self.trail[self.trail_lim[lvl - 1]];
            let was_flipped = self.flipped[lvl - 1];
            self.backtrack(lvl as u32 - 1);
            if !was_flipped {
                self.trail_lim.push(self.trail.len());
                self.flipped.push(true);
                self.assign_lit(lit_neg(dlit), None, false);
                return true;
            }
        }
    }

    /// LBD-based clause deletion at the fixed cadence: among deletable
    /// learned clauses (LBD > 2, not protected, not currently a
    /// reason), the worse half — by (LBD, length, age) — is dropped.
    fn reduce_db(&mut self) {
        let mut cands: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learned && !c.deleted && !c.protect && c.lbd > 2 && !self.is_reason(i)
            })
            .collect();
        cands.sort_by_key(|&i| (self.clauses[i].lbd, self.clauses[i].lits.len(), i));
        let keep = cands.len() / 2;
        for &i in &cands[keep..] {
            self.clauses[i].deleted = true;
        }
    }

    fn is_reason(&self, ci: usize) -> bool {
        self.clauses[ci]
            .lits
            .iter()
            .any(|&l| self.reason[lit_var(l)] == Some(ci))
    }

    /// Checks a total assignment (over the constrained variables)
    /// against the full theory solver, handling Unsat as a conflict and
    /// Unknown by blocking the current decision cube under taint.
    fn leaf(&mut self, solver: &mut Solver) -> LeafOutcome {
        let mut key: Vec<(Atom, bool)> = (0..self.natoms)
            .filter_map(|v| self.assign[v].map(|pol| (self.atoms[v].clone(), pol)))
            .collect();
        key.sort_unstable();
        key.dedup();
        match solver.theory_decide(key) {
            SatAnswer::Sat => LeafOutcome::Sat,
            SatAnswer::Unsat => {
                self.conflicts += 1;
                self.charge_fuel(1);
                // The inconsistency lives in the theory literals alone
                // (boolean symbols have no theory meaning; opaque atoms
                // only ever degrade toward Unknown).
                let expl: Vec<usize> = self
                    .trail
                    .iter()
                    .copied()
                    .filter(|&l| {
                        let v = lit_var(l);
                        v < self.natoms && matches!(self.atoms[v], Atom::LinLe(_) | Atom::RefEq(..))
                    })
                    .collect();
                if expl.is_empty() || expl.iter().all(|&l| self.level[lit_var(l)] == 0) {
                    return LeafOutcome::Done;
                }
                if self.learn {
                    match self.theory_conflict(expl) {
                        TheoryResult::Conflict(Some(ci)) => {
                            if !self.resolve_conflict(ci) {
                                return LeafOutcome::Done;
                            }
                        }
                        _ => unreachable!("learning conflicts carry a clause"),
                    }
                } else if !self.chrono_backtrack() {
                    return LeafOutcome::Done;
                }
                LeafOutcome::Continue
            }
            SatAnswer::Unknown => {
                // This total assignment is out of fragment. Block the
                // decision cube (it has exactly one BCP-closed total
                // assignment — this one) and remember that a final
                // Unsat must degrade to Unknown.
                self.taint = true;
                if self.trail_lim.is_empty() {
                    return LeafOutcome::Done;
                }
                self.conflicts += 1;
                self.charge_fuel(1);
                if self.learn {
                    let dlits: Vec<usize> = self.trail_lim.iter().map(|&s| self.trail[s]).collect();
                    // Deepest decision first, so lits[0] is asserting
                    // after the backjump and lits[1] is the watch at
                    // the new level.
                    let lits: Vec<usize> = dlits.iter().rev().map(|&l| lit_neg(l)).collect();
                    let deepest = lits[0];
                    let lbd = lits.len() as u32;
                    let ci = self.push_clause(lits, true, true, true, false, lbd);
                    if self.clauses[ci].lits.len() >= 2 {
                        self.attach_watches(ci);
                    }
                    let bj = self.current_level() - 1;
                    self.backtrack(bj);
                    if !self.assign_lit(deepest, Some(ci), true) {
                        return LeafOutcome::Done;
                    }
                } else if !self.chrono_backtrack() {
                    return LeafOutcome::Done;
                }
                LeafOutcome::Continue
            }
        }
    }

    fn final_verdict(&self) -> SatAnswer {
        if self.taint {
            SatAnswer::Unknown
        } else {
            SatAnswer::Unsat
        }
    }

    /// The CDCL main loop: propagate (boolean then theory) to fixpoint,
    /// resolve conflicts, otherwise decide; a conflict-free total
    /// assignment is referred to the theory solver.
    fn solve(&mut self, solver: &mut Solver) -> SatAnswer {
        if self.root_unsat {
            return SatAnswer::Unsat;
        }
        if self.fuel == Some(0) {
            self.fuel_exhausted = true;
            return SatAnswer::Unknown;
        }
        loop {
            if self.fuel_exhausted {
                return SatAnswer::Unknown;
            }
            // Poll the wall-clock deadline inside the conflict loop:
            // one hard query must not run arbitrarily past its budget.
            if self.deadline_tripped() {
                return SatAnswer::Unknown;
            }
            let conflict: Option<Option<usize>> = loop {
                if let Some(ci) = self.propagate() {
                    break Some(Some(ci));
                }
                if self.fuel_exhausted {
                    return SatAnswer::Unknown;
                }
                match self.theory_pass() {
                    TheoryResult::Conflict(c) => break Some(c),
                    TheoryResult::Progress => continue,
                    TheoryResult::Quiet => break None,
                }
            };
            if self.fuel_exhausted {
                return SatAnswer::Unknown;
            }
            match conflict {
                Some(c) => {
                    self.conflicts += 1;
                    self.charge_fuel(1);
                    if self.fuel_exhausted {
                        return SatAnswer::Unknown;
                    }
                    if self.current_level() == 0 {
                        return self.final_verdict();
                    }
                    if self.learn {
                        let ci = c.expect("learning conflicts carry a clause");
                        if !self.resolve_conflict(ci) {
                            return self.final_verdict();
                        }
                    } else if !self.chrono_backtrack() {
                        return self.final_verdict();
                    }
                }
                None => match self.pick_branch() {
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.flipped.push(false);
                        self.assign_lit(mk_lit(v, true), None, false);
                    }
                    None => match self.leaf(solver) {
                        LeafOutcome::Sat => return SatAnswer::Sat,
                        LeafOutcome::Done => return self.final_verdict(),
                        LeafOutcome::Continue => {}
                    },
                },
            }
        }
    }

    /// The untainted conflict lemmas over pure atom variables, for
    /// cross-query retention (same width cap as the legacy core).
    fn exported(&self) -> Vec<Vec<(usize, bool)>> {
        self.clauses
            .iter()
            .filter(|c| {
                c.export
                    && !c.deleted
                    && c.lits.len() <= MAX_LEARN_WIDTH
                    && c.lits.iter().all(|&l| lit_var(l) < self.natoms)
            })
            .map(|c| c.lits.iter().map(|&l| (lit_var(l), lit_pol(l))).collect())
            .collect()
    }
}

/// The extremal value of a multi-variable linear term under the current
/// exact rational per-variable bounds: the minimum when `want_min`,
/// else the maximum. Returns the value as a numerator over a positive
/// denominator — so existing `> 0` / `≤ 0` sign tests stay valid — plus
/// the bound literals it used. `None` when some needed bound is missing
/// or the cross-multiplied arithmetic would overflow.
fn bound_sum(
    lin: &LinTerm,
    lower: &BTreeMap<Sym, RatBound>,
    upper: &BTreeMap<Sym, RatBound>,
    want_min: bool,
) -> Option<(i128, Vec<usize>)> {
    let (mut n, mut d) = (0i128, 1i128);
    let mut used = Vec::with_capacity(lin.coeffs.len());
    for (x, &c) in &lin.coeffs {
        let from_lower = (c > 0) == want_min;
        let &(bn, bd, l) = if from_lower {
            lower.get(x)?
        } else {
            upper.get(x)?
        };
        // n/d += c * bn/bd, exactly.
        n = n
            .checked_mul(bd)?
            .checked_add(c.checked_mul(bn)?.checked_mul(d)?)?;
        d = d.checked_mul(bd)?;
        used.push(l);
    }
    Some((n.checked_add(lin.konst.checked_mul(d)?)?, used))
}

/// Finds the first integer `Ite` inside an arithmetic term and returns
/// (condition, term-with-then, term-with-else).
fn split_ite(arena: &mut TermArena, id: TermId) -> Option<(TermId, TermId, TermId)> {
    enum Kind {
        Add,
        Sub,
        Mul,
    }
    let (kind, a, b) = match arena.node(id) {
        Term::Ite(c, t, el) => return Some((c, t, el)),
        Term::Add(a, b) => (Kind::Add, a, b),
        Term::Sub(a, b) => (Kind::Sub, a, b),
        Term::Mul(a, b) => (Kind::Mul, a, b),
        _ => return None,
    };
    let rebuild = |arena: &mut TermArena, x: TermId, y: TermId| match kind {
        Kind::Add => arena.add(x, y),
        Kind::Sub => arena.sub(x, y),
        Kind::Mul => arena.mul(x, y),
    };
    if let Some((c, t, el)) = split_ite(arena, a) {
        let rt = rebuild(arena, t, b);
        let re = rebuild(arena, el, b);
        Some((c, rt, re))
    } else if let Some((c, t, el)) = split_ite(arena, b) {
        let rt = rebuild(arena, a, t);
        let re = rebuild(arena, a, el);
        Some((c, rt, re))
    } else {
        None
    }
}

/// If either operand of an integer comparison contains an `Ite`, expands
/// the comparison into a boolean case split on the `Ite` condition.
fn split_cmp_ite(arena: &mut TermArena, a: TermId, b: TermId, cmp: Cmp) -> Option<TermId> {
    let rebuild = |arena: &mut TermArena, x: TermId, y: TermId| match cmp {
        Cmp::Lt => arena.lt(x, y),
        Cmp::Le => arena.le(x, y),
        Cmp::Eq => arena.eq(x, y),
    };
    let (c, lhs_t, lhs_e, rhs_t, rhs_e) = if let Some((c, t, el)) = split_ite(arena, a) {
        (c, t, el, b, b)
    } else if let Some((c, t, el)) = split_ite(arena, b) {
        (c, a, a, t, el)
    } else {
        return None;
    };
    let then_cmp = rebuild(arena, lhs_t, rhs_t);
    let else_cmp = rebuild(arena, lhs_e, rhs_e);
    let then_arm = arena.and(c, then_cmp);
    let nc = arena.not(c);
    let else_arm = arena.and(nc, else_cmp);
    Some(arena.or(then_arm, else_arm))
}

fn lin_lit(atoms: &mut AtomTable, lin: LinTerm) -> BForm {
    if lin.is_constant() {
        return if lin.konst <= 0 {
            BForm::True
        } else {
            BForm::False
        };
    }
    BForm::Lit(atoms.intern(Atom::LinLe(lin)), true)
}

fn ref_term(arena: &TermArena, id: TermId) -> Option<RefTerm> {
    match arena.node(id) {
        Term::Null => Some(RefTerm::Null),
        Term::Sym(s) => Some(RefTerm::Sym(s)),
        _ => None,
    }
}

fn simplify(f: &BForm, assignment: &[Option<bool>]) -> BForm {
    match f {
        BForm::True => BForm::True,
        BForm::False => BForm::False,
        BForm::Lit(i, pol) => match assignment[*i] {
            None => BForm::Lit(*i, *pol),
            Some(v) => {
                if v == *pol {
                    BForm::True
                } else {
                    BForm::False
                }
            }
        },
        BForm::And(a, b) => match (simplify(a, assignment), simplify(b, assignment)) {
            (BForm::False, _) | (_, BForm::False) => BForm::False,
            (BForm::True, x) | (x, BForm::True) => x,
            (x, y) => BForm::And(Box::new(x), Box::new(y)),
        },
        BForm::Or(a, b) => match (simplify(a, assignment), simplify(b, assignment)) {
            (BForm::True, _) | (_, BForm::True) => BForm::True,
            (BForm::False, x) | (x, BForm::False) => x,
            (x, y) => BForm::Or(Box::new(x), Box::new(y)),
        },
    }
}

fn first_lit(f: &BForm) -> Option<usize> {
    match f {
        BForm::True | BForm::False => None,
        BForm::Lit(i, _) => Some(*i),
        BForm::And(a, b) | BForm::Or(a, b) => first_lit(a).or_else(|| first_lit(b)),
    }
}

/// The sorted, deduplicated assigned-literal set — the memoization key
/// of a theory check and the raw material of a conflict core.
fn theory_key(atoms: &[Atom], assignment: &[Option<bool>]) -> Vec<(Atom, bool)> {
    let mut key: Vec<(Atom, bool)> = atoms
        .iter()
        .zip(assignment.iter())
        .filter_map(|(a, v)| v.map(|pol| (a.clone(), pol)))
        .collect();
    key.sort_unstable();
    key.dedup();
    key
}

/// Collects the forced literals on the conjunction spine of a reduced
/// formula: every bare literal conjoined at the top level must hold.
fn collect_units(f: &BForm, out: &mut Vec<(usize, bool)>) {
    match f {
        BForm::Lit(i, pol) => out.push((*i, *pol)),
        BForm::And(a, b) => {
            collect_units(a, out);
            collect_units(b, out);
        }
        _ => {}
    }
}

/// Records which polarities each atom occurs with in a reduced formula
/// (`.0` = positive seen, `.1` = negative seen). A `BTreeMap` keeps the
/// subsequent pure-literal sweep deterministic.
fn collect_polarities(f: &BForm, out: &mut BTreeMap<usize, (bool, bool)>) {
    match f {
        BForm::Lit(i, pol) => {
            let e = out.entry(*i).or_insert((false, false));
            if *pol {
                e.0 = true;
            } else {
                e.1 = true;
            }
        }
        BForm::And(a, b) | BForm::Or(a, b) => {
            collect_polarities(a, out);
            collect_polarities(b, out);
        }
        _ => {}
    }
}

/// Gaussian pre-pass: recognizes equalities (a constraint together with
/// its negation) defining a variable with a ±1 coefficient, and
/// substitutes it away. Witness-binding chains (`w = e`) are eliminated
/// in linear time here instead of exploding Fourier–Motzkin.
fn gaussian_substitute(constraints: &mut Vec<LinTerm>) {
    loop {
        // Find an equality pair (c, -c) with some ±1-coefficient var.
        let mut found: Option<(usize, usize, Sym)> = None;
        'outer: for i in 0..constraints.len() {
            if constraints[i].is_constant() {
                continue;
            }
            let neg = constraints[i].scale(-1);
            for j in 0..constraints.len() {
                if i != j && constraints[j] == neg {
                    if let Some((s, _)) = constraints[i]
                        .coeffs
                        .iter()
                        .find(|(_, c)| **c == 1 || **c == -1)
                    {
                        found = Some((i, j, *s));
                        break 'outer;
                    }
                }
            }
        }
        let Some((i, j, var)) = found else {
            return;
        };
        // c: a·var + rest = 0 with a = ±1  ⇒  var = ∓rest.
        let eq = constraints[i].clone();
        let a = eq.coeffs[&var];
        // solution: var = -(rest)/a where rest = eq - a·var.
        let mut rest = eq.clone();
        rest.coeffs.remove(&var);
        let solution = rest.scale(-a); // a ∈ {1,-1} so -rest/a = -a·rest.
                                       // Remove the equality pair, substitute elsewhere.
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        constraints.remove(hi);
        constraints.remove(lo);
        for c in constraints.iter_mut() {
            if let Some(&k) = c.coeffs.get(&var) {
                c.coeffs.remove(&var);
                *c = c.add(&solution.scale(k));
            }
        }
    }
}

/// Fourier–Motzkin elimination over the rationals with integer-tightened
/// inputs. Returns `Some(true)` for consistent, `Some(false)` for
/// inconsistent, `None` when the budget blows up.
fn fourier_motzkin(mut constraints: Vec<LinTerm>) -> Option<bool> {
    const BUDGET: usize = 4000;
    gaussian_substitute(&mut constraints);
    loop {
        // Constant contradictions?
        for c in &constraints {
            if c.is_constant() && c.konst > 0 {
                return Some(false);
            }
        }
        constraints.retain(|c| !c.is_constant());
        // Pick the variable with the least fill-in (uppers × lowers).
        let mut counts: BTreeMap<Sym, (usize, usize)> = BTreeMap::new();
        for c in &constraints {
            for (s, k) in &c.coeffs {
                let e = counts.entry(*s).or_insert((0, 0));
                if *k > 0 {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let var = match counts
            .into_iter()
            .min_by_key(|(_, (u, l))| u * l)
            .map(|(s, _)| s)
        {
            Some(v) => v,
            None => return Some(true),
        };
        let (with_var, without): (Vec<LinTerm>, Vec<LinTerm>) = constraints
            .into_iter()
            .partition(|c| c.coeffs.contains_key(&var));
        let mut uppers = Vec::new(); // coefficient > 0: var bounded above
        let mut lowers = Vec::new(); // coefficient < 0: var bounded below
        for c in with_var {
            let coef = c.coeffs[&var];
            if coef > 0 {
                uppers.push(c);
            } else {
                lowers.push(c);
            }
        }
        let mut next = without;
        for u in &uppers {
            for l in &lowers {
                let a = u.coeffs[&var];
                let b = -l.coeffs[&var];
                // b·u + a·l eliminates var.
                let combined = u.scale(b).add(&l.scale(a));
                debug_assert!(!combined.coeffs.contains_key(&var));
                next.push(combined);
            }
        }
        if next.len() > BUDGET {
            return None;
        }
        constraints = next;
    }
}

#[derive(Debug)]
struct UnionFind {
    parents: BTreeMap<RefTerm, RefTerm>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind {
            parents: BTreeMap::new(),
        }
    }

    fn find(&mut self, t: RefTerm) -> RefTerm {
        let p = *self.parents.get(&t).unwrap_or(&t);
        if p == t {
            t
        } else {
            let root = self.find(p);
            self.parents.insert(t, root);
            root
        }
    }

    fn union(&mut self, a: RefTerm, b: RefTerm) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parents.insert(ra, rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::SymSupply;

    struct Ctx {
        solver: Solver,
        arena: TermArena,
    }

    impl Ctx {
        fn entails(&mut self, pc: &[SymExpr], goal: &SymExpr) -> Answer {
            self.solver.entails_exprs(&mut self.arena, pc, goal)
        }

        fn consistent(&mut self, pc: &[SymExpr]) -> bool {
            let ids: Vec<TermId> = pc.iter().map(|e| self.arena.intern_expr(e)).collect();
            self.solver.consistent(&mut self.arena, &ids)
        }
    }

    fn int_solver(n: usize) -> (Ctx, Vec<SymExpr>) {
        let mut supply = SymSupply::new();
        let mut solver = Solver::new();
        let mut syms = Vec::new();
        for _ in 0..n {
            let s = supply.fresh();
            solver.declare(s, Sort::Int);
            syms.push(SymExpr::sym(s));
        }
        (
            Ctx {
                solver,
                arena: TermArena::new(),
            },
            syms,
        )
    }

    #[test]
    fn linear_arithmetic() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        // x ≤ y ∧ y ≤ x ⊨ x = y
        let pc = vec![
            SymExpr::le(x.clone(), y.clone()),
            SymExpr::le(y.clone(), x.clone()),
        ];
        assert_eq!(
            cx.entails(&pc, &SymExpr::eq(x.clone(), y.clone())),
            Answer::Valid
        );
        // x < y ⊨ x + 1 ≤ y (integer tightening).
        let pc = vec![SymExpr::lt(x.clone(), y.clone())];
        assert_eq!(
            cx.entails(
                &pc,
                &SymExpr::le(SymExpr::add(x.clone(), SymExpr::int(1)), y.clone())
            ),
            Answer::Valid
        );
        // x ≤ y ⊭ x < y.
        let pc = vec![SymExpr::le(x.clone(), y.clone())];
        assert_eq!(cx.entails(&pc, &SymExpr::lt(x, y)), Answer::Invalid);
    }

    #[test]
    fn arithmetic_identities() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        // ⊨ x + y - y = x
        let goal = SymExpr::eq(SymExpr::sub(SymExpr::add(x.clone(), y.clone()), y), x);
        assert_eq!(cx.entails(&[], &goal), Answer::Valid);
    }

    #[test]
    fn scaled_constraints() {
        let (mut cx, s) = int_solver(1);
        let x = s[0].clone();
        // 2x ≤ 5 ∧ 3 ≤ 2x is rationally satisfiable but the bounds on x
        // conflict after pairing: 3 ≤ 2x ≤ 5 — fine rationally, so the
        // solver must NOT claim validity of falsity.
        let pc = vec![
            SymExpr::le(SymExpr::mul(SymExpr::int(2), x.clone()), SymExpr::int(5)),
            SymExpr::le(SymExpr::int(3), SymExpr::mul(SymExpr::int(2), x)),
        ];
        assert_eq!(cx.entails(&pc, &SymExpr::bool(false)), Answer::Invalid);
    }

    #[test]
    fn boolean_structure() {
        let mut supply = SymSupply::new();
        let mut solver = Solver::new();
        let p = supply.fresh();
        let q = supply.fresh();
        solver.declare(p, Sort::Bool);
        solver.declare(q, Sort::Bool);
        let mut cx = Ctx {
            solver,
            arena: TermArena::new(),
        };
        let sp = SymExpr::sym(p);
        let sq = SymExpr::sym(q);
        // p ∨ q, ¬p ⊨ q.
        let pc = vec![
            SymExpr::or(sp.clone(), sq.clone()),
            SymExpr::not(sp.clone()),
        ];
        assert_eq!(cx.entails(&pc, &sq), Answer::Valid);
        // p ⊭ q.
        assert_eq!(cx.entails(&[sp], &sq), Answer::Invalid);
    }

    #[test]
    fn reference_reasoning() {
        let mut supply = SymSupply::new();
        let mut solver = Solver::new();
        let a = supply.fresh();
        let b = supply.fresh();
        let c = supply.fresh();
        for s in [a, b, c] {
            solver.declare(s, Sort::Ref);
        }
        let mut cx = Ctx {
            solver,
            arena: TermArena::new(),
        };
        let (ea, eb, ec) = (SymExpr::sym(a), SymExpr::sym(b), SymExpr::sym(c));
        // a = b ∧ b = c ⊨ a = c.
        let pc = vec![
            SymExpr::eq(ea.clone(), eb.clone()),
            SymExpr::eq(eb.clone(), ec.clone()),
        ];
        assert_eq!(
            cx.entails(&pc, &SymExpr::eq(ea.clone(), ec.clone())),
            Answer::Valid
        );
        // a = b ∧ a ≠ b is inconsistent.
        let pc = vec![
            SymExpr::eq(ea.clone(), eb.clone()),
            SymExpr::not(SymExpr::eq(ea.clone(), eb.clone())),
        ];
        assert!(!cx.consistent(&pc));
        // a ≠ null ⊭ a = b.
        let pc = vec![SymExpr::not(SymExpr::eq(ea.clone(), SymExpr::Null))];
        assert_eq!(cx.entails(&pc, &SymExpr::eq(ea, eb)), Answer::Invalid);
    }

    #[test]
    fn mixed_implication() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        // (x = 3 → y = 4) ∧ x = 3 ⊨ y = 4.
        let pc = vec![
            SymExpr::implies(
                SymExpr::eq(x.clone(), SymExpr::int(3)),
                SymExpr::eq(y.clone(), SymExpr::int(4)),
            ),
            SymExpr::eq(x, SymExpr::int(3)),
        ];
        assert_eq!(
            cx.entails(&pc, &SymExpr::eq(y, SymExpr::int(4))),
            Answer::Valid
        );
    }

    #[test]
    fn nonlinear_is_unknown_not_wrong() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        let sq = SymExpr::Mul(Box::new(x.clone()), Box::new(x.clone()));
        // x*x ≥ 0 is true but nonlinear: must NOT be Invalid-with-
        // certainty... and must never be claimed Valid wrongly; Unknown
        // is the honest answer.
        let goal = SymExpr::le(SymExpr::int(0), sq);
        let ans = cx.entails(&[], &goal);
        assert_ne!(ans, Answer::Invalid);
        // And an actually-false nonlinear goal must not verify.
        let bad = SymExpr::eq(SymExpr::Mul(Box::new(x), Box::new(y)), SymExpr::int(3));
        assert_ne!(cx.entails(&[], &bad), Answer::Valid);
    }

    #[test]
    fn inconsistent_pc_proves_anything() {
        let (mut cx, s) = int_solver(1);
        let x = s[0].clone();
        let pc = vec![
            SymExpr::lt(x.clone(), SymExpr::int(0)),
            SymExpr::lt(SymExpr::int(0), x),
        ];
        assert_eq!(cx.entails(&pc, &SymExpr::bool(false)), Answer::Valid);
        assert!(!cx.consistent(&pc));
    }

    #[test]
    fn query_stats_accumulate() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        let pc = vec![SymExpr::lt(x.clone(), y.clone())];
        let _ = cx.entails(&pc, &SymExpr::le(x, y));
        assert_eq!(cx.solver.queries, 1);
        // Fuel-unit counters must move: search nodes under the legacy
        // DPLL core, conflicts+propagations under CDCL.
        match cx.solver.core {
            SolverCore::Dpll => assert!(cx.solver.branches >= 1),
            SolverCore::Cdcl => {
                assert!(cx.solver.conflicts + cx.solver.propagations >= 1)
            }
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        let pc = vec![SymExpr::lt(x.clone(), y.clone())];
        let goal = SymExpr::le(x.clone(), y.clone());
        let first = cx.entails(&pc, &goal);
        let branches_after_first = cx.solver.branches;
        let second = cx.entails(&pc, &goal);
        assert_eq!(first, second);
        assert_eq!(cx.solver.cache_hits, 1);
        assert_eq!(
            cx.solver.branches, branches_after_first,
            "a cache hit must not re-run DPLL"
        );
        // Same conditions in a different order share the entry.
        let pc2 = vec![
            SymExpr::lt(x.clone(), y.clone()),
            SymExpr::lt(x.clone(), y.clone()),
        ];
        let third = cx.entails(&pc2, &goal);
        assert_eq!(first, third);
        assert_eq!(cx.solver.cache_hits, 2);
    }

    #[test]
    fn cache_off_gives_identical_answers() {
        let build = |enabled: bool| {
            let (mut cx, s) = int_solver(2);
            cx.solver.cache_enabled = enabled;
            let x = s[0].clone();
            let y = s[1].clone();
            let queries: Vec<(Vec<SymExpr>, SymExpr)> = vec![
                (
                    vec![SymExpr::le(x.clone(), y.clone())],
                    SymExpr::lt(x.clone(), y.clone()),
                ),
                (
                    vec![SymExpr::lt(x.clone(), y.clone())],
                    SymExpr::le(x.clone(), y.clone()),
                ),
                (
                    vec![SymExpr::lt(x.clone(), y.clone())],
                    SymExpr::le(x.clone(), y.clone()),
                ),
                (vec![], SymExpr::eq(x.clone(), x.clone())),
                (
                    vec![
                        SymExpr::lt(x.clone(), SymExpr::int(0)),
                        SymExpr::lt(SymExpr::int(0), x.clone()),
                    ],
                    SymExpr::bool(false),
                ),
            ];
            queries
                .into_iter()
                .map(|(pc, g)| cx.entails(&pc, &g))
                .collect::<Vec<Answer>>()
        };
        assert_eq!(build(true), build(false));
    }

    /// A diverging-style query set: each variable is pinned to `{0, 1}`
    /// by a disjunction, and the goal bounds their sum from below.
    fn diverging_queries(s: &[SymExpr]) -> (Vec<SymExpr>, SymExpr) {
        let pc: Vec<SymExpr> = s
            .iter()
            .map(|x| {
                SymExpr::or(
                    SymExpr::eq(x.clone(), SymExpr::int(0)),
                    SymExpr::eq(x.clone(), SymExpr::int(1)),
                )
            })
            .collect();
        let sum = s
            .iter()
            .cloned()
            .reduce(SymExpr::add)
            .expect("at least one symbol");
        (pc, SymExpr::le(SymExpr::int(0), sum))
    }

    #[test]
    fn learning_gives_identical_answers() {
        let build = |learn: bool| {
            let (mut cx, s) = int_solver(3);
            cx.solver.learn_enabled = learn;
            let x = s[0].clone();
            let y = s[1].clone();
            let (dpc, dgoal) = diverging_queries(&s);
            let queries: Vec<(Vec<SymExpr>, SymExpr)> = vec![
                (
                    vec![SymExpr::le(x.clone(), y.clone())],
                    SymExpr::lt(x.clone(), y.clone()),
                ),
                (
                    vec![SymExpr::lt(x.clone(), y.clone())],
                    SymExpr::le(x.clone(), y.clone()),
                ),
                (vec![], SymExpr::eq(x.clone(), x.clone())),
                (
                    vec![
                        SymExpr::lt(x.clone(), SymExpr::int(0)),
                        SymExpr::lt(SymExpr::int(0), x.clone()),
                    ],
                    SymExpr::bool(false),
                ),
                (dpc.clone(), dgoal.clone()),
                (dpc, dgoal),
            ];
            queries
                .into_iter()
                .map(|(pc, g)| cx.entails(&pc, &g))
                .collect::<Vec<Answer>>()
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn learned_clauses_prune_repeated_branching() {
        let branches_of_second_run = |learn: bool| {
            let (mut cx, s) = int_solver(3);
            cx.solver.learn_enabled = learn;
            // Disable memoization so the second run actually re-solves.
            cx.solver.cache_enabled = false;
            let (pc, goal) = diverging_queries(&s);
            assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
            let after_first = cx.solver.branches;
            assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
            cx.solver.branches - after_first
        };
        let naive = branches_of_second_run(false);
        let learned = branches_of_second_run(true);
        assert!(
            learned < naive,
            "learned clauses should prune the re-solved search: {learned} vs {naive}"
        );
    }

    #[test]
    fn clear_learned_resets_clauses_but_not_the_counter() {
        let (mut cx, s) = int_solver(2);
        let (pc, goal) = diverging_queries(&s);
        assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
        let learned = cx.solver.learned_clauses;
        assert!(learned >= 1, "a theory conflict should learn a clause");
        cx.solver.clear_learned();
        cx.solver.cache_enabled = false;
        assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
        assert!(
            cx.solver.learned_clauses > learned,
            "after clearing, the same conflicts are relearned and the \
             monotone total keeps growing"
        );
    }

    // --------------------------------------------------------------
    // CDCL core: differential vs. legacy DPLL, theory layer, fuel.
    // --------------------------------------------------------------

    #[test]
    fn cdcl_and_dpll_cores_agree() {
        let run = |core: SolverCore| {
            let (mut cx, s) = int_solver(3);
            cx.solver.core = core;
            cx.solver.cache_enabled = false;
            let x = s[0].clone();
            let y = s[1].clone();
            let (dpc, dgoal) = diverging_queries(&s);
            let queries: Vec<(Vec<SymExpr>, SymExpr)> = vec![
                (
                    vec![SymExpr::le(x.clone(), y.clone())],
                    SymExpr::lt(x.clone(), y.clone()),
                ),
                (
                    vec![SymExpr::lt(x.clone(), y.clone())],
                    SymExpr::le(x.clone(), y.clone()),
                ),
                (vec![], SymExpr::eq(x.clone(), x.clone())),
                (
                    vec![
                        SymExpr::lt(x.clone(), SymExpr::int(0)),
                        SymExpr::lt(SymExpr::int(0), x.clone()),
                    ],
                    SymExpr::bool(false),
                ),
                (
                    vec![],
                    SymExpr::eq(
                        SymExpr::Mul(Box::new(x.clone()), Box::new(y.clone())),
                        SymExpr::int(3),
                    ),
                ),
                (dpc.clone(), dgoal.clone()),
                (dpc, dgoal),
            ];
            queries
                .into_iter()
                .map(|(pc, g)| cx.entails(&pc, &g))
                .collect::<Vec<Answer>>()
        };
        assert_eq!(run(SolverCore::Cdcl), run(SolverCore::Dpll));
    }

    #[test]
    fn congruence_closure_merges_chains() {
        let mut supply = SymSupply::new();
        let mut solver = Solver::new();
        let syms: Vec<Sym> = (0..4).map(|_| supply.fresh()).collect();
        for s in &syms {
            solver.declare(*s, Sort::Ref);
        }
        let mut cx = Ctx {
            solver,
            arena: TermArena::new(),
        };
        let e: Vec<SymExpr> = syms.iter().map(|s| SymExpr::sym(*s)).collect();
        // A chain of equalities merges into one class: a=b ∧ b=c ∧ c=d
        // entails a=d through two intermediate merges.
        let pc = vec![
            SymExpr::eq(e[0].clone(), e[1].clone()),
            SymExpr::eq(e[1].clone(), e[2].clone()),
            SymExpr::eq(e[2].clone(), e[3].clone()),
        ];
        assert_eq!(
            cx.entails(&pc, &SymExpr::eq(e[0].clone(), e[3].clone())),
            Answer::Valid
        );
        // A disequality across the merged class is a theory conflict.
        let mut pc = pc;
        pc.push(SymExpr::not(SymExpr::eq(e[3].clone(), e[0].clone())));
        assert!(!cx.consistent(&pc));
        if cx.solver.core == SolverCore::Cdcl {
            assert!(
                cx.solver.conflicts >= 1,
                "the diseq-in-class conflict should be counted"
            );
        }
    }

    #[test]
    fn difference_bound_cycle_is_detected() {
        let (mut cx, s) = int_solver(3);
        let x = s[0].clone();
        let y = s[1].clone();
        let z = s[2].clone();
        // x < y ∧ y < z entails x < z; closing the cycle with z < x is
        // a negative-weight loop and must be inconsistent.
        let chain = vec![
            SymExpr::lt(x.clone(), y.clone()),
            SymExpr::lt(y.clone(), z.clone()),
        ];
        assert_eq!(
            cx.entails(&chain, &SymExpr::lt(x.clone(), z.clone())),
            Answer::Valid
        );
        let mut cycle = chain;
        cycle.push(SymExpr::lt(z, x));
        assert!(!cx.consistent(&cycle));
    }

    #[test]
    fn theory_propagation_prunes_diverging_search() {
        let (mut cx, s) = int_solver(4);
        cx.solver.cache_enabled = false;
        if cx.solver.core != SolverCore::Cdcl {
            return;
        }
        let (pc, goal) = diverging_queries(&s);
        assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
        assert!(
            cx.solver.theory_props >= 1,
            "bound strengthening should propagate sum atoms"
        );
        // Theory propagation must collapse the 2^4 assignment space to
        // a handful of decisions.
        assert!(
            cx.solver.branches < 16,
            "CDCL explored {} decisions on a 4-var diverging query",
            cx.solver.branches
        );
    }

    #[test]
    fn fuel_exhausted_cdcl_answers_are_not_cached() {
        let (mut cx, s) = int_solver(3);
        let (pc, goal) = diverging_queries(&s);
        cx.solver.fuel = Some(1);
        assert_eq!(
            cx.entails(&pc, &goal),
            Answer::Unknown,
            "a starved run must degrade to Unknown"
        );
        assert!(cx.solver.fuel_exhausted);
        // Un-starve the solver: the truncated Unknown must not have
        // been memoized, so the same query now re-solves to Valid.
        cx.solver.fuel = None;
        cx.solver.fuel_exhausted = false;
        assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
        assert_eq!(
            cx.solver.cache_hits, 0,
            "the truncated answer leaked into the memo table"
        );
    }

    #[test]
    fn deadline_exhausted_answers_are_not_cached() {
        let (mut cx, s) = int_solver(3);
        let (pc, goal) = diverging_queries(&s);
        // A deadline already in the past trips on the search's first
        // poll (the poll mask always checks the first iteration), in
        // either core.
        cx.solver.deadline = Some(Instant::now() - std::time::Duration::from_millis(1));
        assert_eq!(
            cx.entails(&pc, &goal),
            Answer::Unknown,
            "an expired deadline must degrade to Unknown"
        );
        assert!(cx.solver.deadline_exhausted);
        // Lift the deadline: the truncated Unknown must not have been
        // memoized, so the same query now re-solves to Valid.
        cx.solver.deadline = None;
        cx.solver.deadline_exhausted = false;
        cx.solver.deadline_poll = 0;
        assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
        assert_eq!(
            cx.solver.cache_hits, 0,
            "the deadline-truncated answer leaked into the memo table"
        );
    }
}
