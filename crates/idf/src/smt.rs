//! A small decision procedure for the verifier's entailment queries.
//!
//! Viper delegates these queries to Z3; building the full substrate
//! ourselves, we implement the fragment the IDF case studies need:
//!
//! * boolean structure by DPLL-style case splitting;
//! * linear integer arithmetic by Fourier–Motzkin elimination with
//!   integer tightening (`a < b` ⇒ `a ≤ b − 1`);
//! * reference equalities by union-find with disequality checking.
//!
//! The procedure is **sound for verification**: `Valid` is only
//! answered when `pc → goal` holds. Nonlinear or otherwise unsupported
//! atoms degrade the answer to `Unknown`, never to a wrong `Valid`.

use crate::sym::{Sort, Sym, SymExpr};
use std::collections::BTreeMap;

/// The answer to an entailment query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Answer {
    /// The entailment holds.
    Valid,
    /// A countermodel exists within the supported theory.
    Invalid,
    /// Out of fragment (nonlinear, blown budget, …).
    Unknown,
}

/// Internal satisfiability verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SatAnswer {
    Sat,
    Unsat,
    Unknown,
}

/// A linear term `Σ cᵢ·xᵢ + k` over integer symbols.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct LinTerm {
    coeffs: BTreeMap<Sym, i128>,
    konst: i128,
}

impl LinTerm {
    fn constant(k: i128) -> LinTerm {
        LinTerm {
            coeffs: BTreeMap::new(),
            konst: k,
        }
    }

    fn var(s: Sym) -> LinTerm {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(s, 1);
        LinTerm { coeffs, konst: 0 }
    }

    fn scale(&self, k: i128) -> LinTerm {
        LinTerm {
            coeffs: self.coeffs.iter().map(|(s, c)| (*s, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    fn add(&self, other: &LinTerm) -> LinTerm {
        let mut coeffs = self.coeffs.clone();
        for (s, c) in &other.coeffs {
            let e = coeffs.entry(*s).or_insert(0);
            *e += c;
            if *e == 0 {
                coeffs.remove(s);
            }
        }
        LinTerm {
            coeffs,
            konst: self.konst + other.konst,
        }
    }

    fn sub(&self, other: &LinTerm) -> LinTerm {
        self.add(&other.scale(-1))
    }

    fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }
}

/// A reference-sorted ground term.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum RefTerm {
    Null,
    Sym(Sym),
}

/// An abstracted atom (negations are handled by the literal polarity).
#[derive(Clone, PartialEq, Debug)]
enum Atom {
    /// `lin ≤ 0`.
    LinLe(LinTerm),
    /// A boolean symbol.
    BoolSym(Sym),
    /// Equality of two reference terms.
    RefEq(RefTerm, RefTerm),
    /// Unsupported structure (nonlinear multiplication, …).
    Opaque(SymExpr),
}

/// A propositional skeleton over atom indices.
#[derive(Clone, Debug)]
enum BForm {
    True,
    False,
    Lit(usize, bool),
    And(Box<BForm>, Box<BForm>),
    Or(Box<BForm>, Box<BForm>),
}

/// The decision procedure, with query statistics (reported by the
/// evaluation harness).
#[derive(Clone, Debug, Default)]
pub struct Solver {
    /// Sorts of the symbols in play.
    pub sorts: BTreeMap<Sym, Sort>,
    /// Number of entailment queries answered.
    pub queries: usize,
    /// Number of DPLL branches explored across all queries.
    pub branches: usize,
}

impl Solver {
    /// A fresh solver.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Declares a symbol's sort.
    pub fn declare(&mut self, s: Sym, sort: Sort) {
        self.sorts.insert(s, sort);
    }

    /// Checks `pc ⊨ goal` (validity of the implication).
    pub fn entails(&mut self, pc: &[SymExpr], goal: &SymExpr) -> Answer {
        self.queries += 1;
        let mut formula = SymExpr::not(goal.clone());
        for c in pc {
            formula = SymExpr::and(formula, c.clone());
        }
        match self.sat(&formula) {
            SatAnswer::Unsat => Answer::Valid,
            SatAnswer::Sat => Answer::Invalid,
            SatAnswer::Unknown => Answer::Unknown,
        }
    }

    /// Checks whether the path condition is consistent (used to prune
    /// infeasible branches).
    pub fn consistent(&mut self, pc: &[SymExpr]) -> bool {
        self.queries += 1;
        let mut formula = SymExpr::bool(true);
        for c in pc {
            formula = SymExpr::and(formula, c.clone());
        }
        // Treat Unknown as consistent (conservative: keep exploring).
        self.sat(&formula) != SatAnswer::Unsat
    }

    fn sat(&mut self, f: &SymExpr) -> SatAnswer {
        let mut atoms: Vec<Atom> = Vec::new();
        let skeleton = self.abstract_bool(f, true, &mut atoms);
        let mut assignment: Vec<Option<bool>> = vec![None; atoms.len()];
        self.dpll(&skeleton, &atoms, &mut assignment)
    }

    /// Converts a boolean expression to a skeleton, interning atoms.
    /// `positive` tracks NNF polarity.
    fn abstract_bool(&mut self, e: &SymExpr, positive: bool, atoms: &mut Vec<Atom>) -> BForm {
        use SymExpr::*;
        match e {
            Bool(b) => {
                if *b == positive {
                    BForm::True
                } else {
                    BForm::False
                }
            }
            Not(inner) => self.abstract_bool(inner, !positive, atoms),
            And(a, b) => {
                let fa = self.abstract_bool(a, positive, atoms);
                let fb = self.abstract_bool(b, positive, atoms);
                if positive {
                    BForm::And(Box::new(fa), Box::new(fb))
                } else {
                    BForm::Or(Box::new(fa), Box::new(fb))
                }
            }
            Or(a, b) => {
                let fa = self.abstract_bool(a, positive, atoms);
                let fb = self.abstract_bool(b, positive, atoms);
                if positive {
                    BForm::Or(Box::new(fa), Box::new(fb))
                } else {
                    BForm::And(Box::new(fa), Box::new(fb))
                }
            }
            Implies(a, b) => {
                let neg = SymExpr::or(SymExpr::not((**a).clone()), (**b).clone());
                self.abstract_bool(&neg, positive, atoms)
            }
            Sym(s) => BForm::Lit(intern(atoms, Atom::BoolSym(*s)), positive),
            Lt(a, b) => {
                if let Some(ex) = split_cmp_ite(a, b, &SymExpr::lt) {
                    return self.abstract_bool(&ex, positive, atoms);
                }
                // a < b  ⇔  a - b + 1 ≤ 0 (integers).
                match (self.linearize(a), self.linearize(b)) {
                    (Some(la), Some(lb)) => {
                        let lin = la.sub(&lb).add(&LinTerm::constant(1));
                        let lin = if positive {
                            lin
                        } else {
                            // ¬(a < b) ⇔ b ≤ a ⇔ b - a ≤ 0.
                            lb.sub(&la)
                        };
                        lin_lit(atoms, lin)
                    }
                    _ => BForm::Lit(intern(atoms, Atom::Opaque(e.clone())), positive),
                }
            }
            Le(a, b) => {
                if let Some(ex) = split_cmp_ite(a, b, &SymExpr::le) {
                    return self.abstract_bool(&ex, positive, atoms);
                }
                match (self.linearize(a), self.linearize(b)) {
                    (Some(la), Some(lb)) => {
                        let lin = if positive {
                            la.sub(&lb)
                        } else {
                            // ¬(a ≤ b) ⇔ b + 1 ≤ a ⇔ b - a + 1 ≤ 0.
                            lb.sub(&la).add(&LinTerm::constant(1))
                        };
                        lin_lit(atoms, lin)
                    }
                    _ => BForm::Lit(intern(atoms, Atom::Opaque(e.clone())), positive),
                }
            }
            Eq(a, b) => match self.sort_of(a).or_else(|| self.sort_of(b)) {
                Some(Sort::Int) if split_cmp_ite(a, b, &SymExpr::eq).is_some() => {
                    let ex = split_cmp_ite(a, b, &SymExpr::eq).expect("checked");
                    self.abstract_bool(&ex, positive, atoms)
                }
                Some(Sort::Int) => match (self.linearize(a), self.linearize(b)) {
                    (Some(la), Some(lb)) => {
                        let d = la.sub(&lb);
                        if positive {
                            // d = 0 ⇔ d ≤ 0 ∧ -d ≤ 0.
                            BForm::And(
                                Box::new(lin_lit(atoms, d.clone())),
                                Box::new(lin_lit(atoms, d.scale(-1))),
                            )
                        } else {
                            // d ≠ 0 ⇔ d ≤ -1 ∨ -d ≤ -1.
                            BForm::Or(
                                Box::new(lin_lit(atoms, d.add(&LinTerm::constant(1)))),
                                Box::new(lin_lit(
                                    atoms,
                                    d.scale(-1).add(&LinTerm::constant(1)),
                                )),
                            )
                        }
                    }
                    _ => BForm::Lit(intern(atoms, Atom::Opaque(e.clone())), positive),
                },
                Some(Sort::Ref) => match (ref_term(a), ref_term(b)) {
                    (Some(ra), Some(rb)) => {
                        BForm::Lit(intern(atoms, Atom::RefEq(ra, rb)), positive)
                    }
                    _ => BForm::Lit(intern(atoms, Atom::Opaque(e.clone())), positive),
                },
                Some(Sort::Bool) => {
                    // a ↔ b.
                    let expanded = SymExpr::or(
                        SymExpr::and((**a).clone(), (**b).clone()),
                        SymExpr::and(SymExpr::not((**a).clone()), SymExpr::not((**b).clone())),
                    );
                    self.abstract_bool(&expanded, positive, atoms)
                }
                None => BForm::Lit(intern(atoms, Atom::Opaque(e.clone())), positive),
            },
            Ite(c, t, el) => {
                // Boolean ite: (c ∧ t) ∨ (¬c ∧ e).
                let expanded = SymExpr::or(
                    SymExpr::and((**c).clone(), (**t).clone()),
                    SymExpr::and(SymExpr::not((**c).clone()), (**el).clone()),
                );
                self.abstract_bool(&expanded, positive, atoms)
            }
            _ => BForm::Lit(intern(atoms, Atom::Opaque(e.clone())), positive),
        }
    }

    fn sort_of(&self, e: &SymExpr) -> Option<Sort> {
        use SymExpr::*;
        match e {
            Int(_) | Add(..) | Sub(..) | Mul(..) => Some(Sort::Int),
            Bool(_) | Not(_) | And(..) | Or(..) | Implies(..) | Eq(..) | Lt(..) | Le(..) => {
                Some(Sort::Bool)
            }
            Null => Some(Sort::Ref),
            Sym(s) => self.sorts.get(s).copied(),
            Ite(_, t, e2) => self.sort_of(t).or_else(|| self.sort_of(e2)),
        }
    }

    fn linearize(&self, e: &SymExpr) -> Option<LinTerm> {
        use SymExpr::*;
        match e {
            Int(n) => Some(LinTerm::constant(*n as i128)),
            Sym(s) => match self.sorts.get(s) {
                Some(Sort::Int) | None => Some(LinTerm::var(*s)),
                _ => None,
            },
            Add(a, b) => Some(self.linearize(a)?.add(&self.linearize(b)?)),
            Sub(a, b) => Some(self.linearize(a)?.sub(&self.linearize(b)?)),
            Mul(a, b) => {
                let la = self.linearize(a)?;
                let lb = self.linearize(b)?;
                if la.is_constant() {
                    Some(lb.scale(la.konst))
                } else if lb.is_constant() {
                    Some(la.scale(lb.konst))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn dpll(
        &mut self,
        skeleton: &BForm,
        atoms: &[Atom],
        assignment: &mut Vec<Option<bool>>,
    ) -> SatAnswer {
        self.branches += 1;
        match simplify(skeleton, assignment) {
            BForm::False => SatAnswer::Unsat,
            BForm::True => self.theory_check(atoms, assignment),
            reduced => {
                let pick = first_lit(&reduced).expect("non-constant form has a literal");
                assignment[pick] = Some(true);
                let r1 = self.dpll(&reduced, atoms, assignment);
                if r1 == SatAnswer::Sat {
                    assignment[pick] = None;
                    return SatAnswer::Sat;
                }
                assignment[pick] = Some(false);
                let r2 = self.dpll(&reduced, atoms, assignment);
                assignment[pick] = None;
                match (r1, r2) {
                    (_, SatAnswer::Sat) => SatAnswer::Sat,
                    (SatAnswer::Unsat, SatAnswer::Unsat) => SatAnswer::Unsat,
                    _ => SatAnswer::Unknown,
                }
            }
        }
    }

    /// Checks a full propositional assignment against the theories.
    fn theory_check(&self, atoms: &[Atom], assignment: &[Option<bool>]) -> SatAnswer {
        // Opaque atoms poison certainty of Sat.
        let mut unknown = false;
        // --- References: union-find with disequalities.
        let mut uf = UnionFind::new();
        let mut disequalities: Vec<(RefTerm, RefTerm)> = Vec::new();
        // --- Integers: Fourier–Motzkin.
        let mut constraints: Vec<LinTerm> = Vec::new();

        for (i, atom) in atoms.iter().enumerate() {
            let Some(polarity) = assignment[i] else {
                continue;
            };
            match atom {
                Atom::LinLe(lin) => {
                    if polarity {
                        constraints.push(lin.clone());
                    } else {
                        // ¬(lin ≤ 0) ⇔ -lin + 1 ≤ 0.
                        constraints.push(lin.scale(-1).add(&LinTerm::constant(1)));
                    }
                }
                Atom::BoolSym(_) => {}
                Atom::RefEq(a, b) => {
                    if polarity {
                        uf.union(*a, *b);
                    } else {
                        disequalities.push((*a, *b));
                    }
                }
                Atom::Opaque(_) => unknown = true,
            }
        }

        for (a, b) in &disequalities {
            if uf.find(*a) == uf.find(*b) {
                return SatAnswer::Unsat;
            }
        }

        match fourier_motzkin(constraints) {
            Some(false) => return SatAnswer::Unsat,
            Some(true) => {}
            None => unknown = true,
        }

        if unknown {
            SatAnswer::Unknown
        } else {
            SatAnswer::Sat
        }
    }
}

/// Finds the first integer `Ite` inside an arithmetic expression and
/// returns (condition, expression-with-then, expression-with-else).
fn split_ite(e: &SymExpr) -> Option<(SymExpr, SymExpr, SymExpr)> {
    use SymExpr::*;
    match e {
        Ite(c, t, el) => Some(((**c).clone(), (**t).clone(), (**el).clone())),
        Add(a, b) | Sub(a, b) | Mul(a, b) => {
            let rebuild = |x: SymExpr, y: SymExpr| match e {
                Add(..) => SymExpr::Add(Box::new(x), Box::new(y)),
                Sub(..) => SymExpr::Sub(Box::new(x), Box::new(y)),
                _ => SymExpr::Mul(Box::new(x), Box::new(y)),
            };
            if let Some((c, t, el)) = split_ite(a) {
                Some((c, rebuild(t, (**b).clone()), rebuild(el, (**b).clone())))
            } else if let Some((c, t, el)) = split_ite(b) {
                Some((c, rebuild((**a).clone(), t), rebuild((**a).clone(), el)))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// If either operand of an integer comparison contains an `Ite`, expands
/// the comparison into a boolean case split on the `Ite` condition.
fn split_cmp_ite(
    a: &SymExpr,
    b: &SymExpr,
    rebuild: &dyn Fn(SymExpr, SymExpr) -> SymExpr,
) -> Option<SymExpr> {
    if let Some((c, t, el)) = split_ite(a) {
        return Some(SymExpr::or(
            SymExpr::and(c.clone(), rebuild(t, b.clone())),
            SymExpr::and(SymExpr::not(c), rebuild(el, b.clone())),
        ));
    }
    if let Some((c, t, el)) = split_ite(b) {
        return Some(SymExpr::or(
            SymExpr::and(c.clone(), rebuild(a.clone(), t)),
            SymExpr::and(SymExpr::not(c), rebuild(a.clone(), el)),
        ));
    }
    None
}

fn lin_lit(atoms: &mut Vec<Atom>, lin: LinTerm) -> BForm {
    if lin.is_constant() {
        return if lin.konst <= 0 {
            BForm::True
        } else {
            BForm::False
        };
    }
    BForm::Lit(intern(atoms, Atom::LinLe(lin)), true)
}

fn intern(atoms: &mut Vec<Atom>, a: Atom) -> usize {
    match atoms.iter().position(|x| *x == a) {
        Some(i) => i,
        None => {
            atoms.push(a);
            atoms.len() - 1
        }
    }
}

fn ref_term(e: &SymExpr) -> Option<RefTerm> {
    match e {
        SymExpr::Null => Some(RefTerm::Null),
        SymExpr::Sym(s) => Some(RefTerm::Sym(*s)),
        _ => None,
    }
}

fn simplify(f: &BForm, assignment: &[Option<bool>]) -> BForm {
    match f {
        BForm::True => BForm::True,
        BForm::False => BForm::False,
        BForm::Lit(i, pol) => match assignment[*i] {
            None => BForm::Lit(*i, *pol),
            Some(v) => {
                if v == *pol {
                    BForm::True
                } else {
                    BForm::False
                }
            }
        },
        BForm::And(a, b) => match (simplify(a, assignment), simplify(b, assignment)) {
            (BForm::False, _) | (_, BForm::False) => BForm::False,
            (BForm::True, x) | (x, BForm::True) => x,
            (x, y) => BForm::And(Box::new(x), Box::new(y)),
        },
        BForm::Or(a, b) => match (simplify(a, assignment), simplify(b, assignment)) {
            (BForm::True, _) | (_, BForm::True) => BForm::True,
            (BForm::False, x) | (x, BForm::False) => x,
            (x, y) => BForm::Or(Box::new(x), Box::new(y)),
        },
    }
}

fn first_lit(f: &BForm) -> Option<usize> {
    match f {
        BForm::True | BForm::False => None,
        BForm::Lit(i, _) => Some(*i),
        BForm::And(a, b) | BForm::Or(a, b) => first_lit(a).or_else(|| first_lit(b)),
    }
}

/// Gaussian pre-pass: recognizes equalities (a constraint together with
/// its negation) defining a variable with a ±1 coefficient, and
/// substitutes it away. Witness-binding chains (`w = e`) are eliminated
/// in linear time here instead of exploding Fourier–Motzkin.
fn gaussian_substitute(constraints: &mut Vec<LinTerm>) {
    loop {
        // Find an equality pair (c, -c) with some ±1-coefficient var.
        let mut found: Option<(usize, usize, Sym)> = None;
        'outer: for i in 0..constraints.len() {
            if constraints[i].is_constant() {
                continue;
            }
            let neg = constraints[i].scale(-1);
            for j in 0..constraints.len() {
                if i != j && constraints[j] == neg {
                    if let Some((s, _)) = constraints[i]
                        .coeffs
                        .iter()
                        .find(|(_, c)| **c == 1 || **c == -1)
                    {
                        found = Some((i, j, *s));
                        break 'outer;
                    }
                }
            }
        }
        let Some((i, j, var)) = found else {
            return;
        };
        // c: a·var + rest = 0 with a = ±1  ⇒  var = ∓rest.
        let eq = constraints[i].clone();
        let a = eq.coeffs[&var];
        // solution: var = -(rest)/a where rest = eq - a·var.
        let mut rest = eq.clone();
        rest.coeffs.remove(&var);
        let solution = rest.scale(-a); // a ∈ {1,-1} so -rest/a = -a·rest.
        // Remove the equality pair, substitute elsewhere.
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        constraints.remove(hi);
        constraints.remove(lo);
        for c in constraints.iter_mut() {
            if let Some(&k) = c.coeffs.get(&var) {
                c.coeffs.remove(&var);
                *c = c.add(&solution.scale(k));
            }
        }
    }
}

/// Fourier–Motzkin elimination over the rationals with integer-tightened
/// inputs. Returns `Some(true)` for consistent, `Some(false)` for
/// inconsistent, `None` when the budget blows up.
fn fourier_motzkin(mut constraints: Vec<LinTerm>) -> Option<bool> {
    const BUDGET: usize = 4000;
    gaussian_substitute(&mut constraints);
    loop {
        // Constant contradictions?
        for c in &constraints {
            if c.is_constant() && c.konst > 0 {
                return Some(false);
            }
        }
        constraints.retain(|c| !c.is_constant());
        // Pick the variable with the least fill-in (uppers × lowers).
        let mut counts: BTreeMap<Sym, (usize, usize)> = BTreeMap::new();
        for c in &constraints {
            for (s, k) in &c.coeffs {
                let e = counts.entry(*s).or_insert((0, 0));
                if *k > 0 {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let var = match counts
            .into_iter()
            .min_by_key(|(_, (u, l))| u * l)
            .map(|(s, _)| s)
        {
            Some(v) => v,
            None => return Some(true),
        };
        let (with_var, without): (Vec<LinTerm>, Vec<LinTerm>) = constraints
            .into_iter()
            .partition(|c| c.coeffs.contains_key(&var));
        let mut uppers = Vec::new(); // coefficient > 0: var bounded above
        let mut lowers = Vec::new(); // coefficient < 0: var bounded below
        for c in with_var {
            let coef = c.coeffs[&var];
            if coef > 0 {
                uppers.push(c);
            } else {
                lowers.push(c);
            }
        }
        let mut next = without;
        for u in &uppers {
            for l in &lowers {
                let a = u.coeffs[&var];
                let b = -l.coeffs[&var];
                // b·u + a·l eliminates var.
                let combined = u.scale(b).add(&l.scale(a));
                debug_assert!(!combined.coeffs.contains_key(&var));
                next.push(combined);
            }
        }
        if next.len() > BUDGET {
            return None;
        }
        constraints = next;
    }
}

#[derive(Debug)]
struct UnionFind {
    parents: BTreeMap<RefTerm, RefTerm>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind {
            parents: BTreeMap::new(),
        }
    }

    fn find(&mut self, t: RefTerm) -> RefTerm {
        let p = *self.parents.get(&t).unwrap_or(&t);
        if p == t {
            t
        } else {
            let root = self.find(p);
            self.parents.insert(t, root);
            root
        }
    }

    fn union(&mut self, a: RefTerm, b: RefTerm) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parents.insert(ra, rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::SymSupply;

    fn int_solver(n: usize) -> (Solver, Vec<SymExpr>) {
        let mut supply = SymSupply::new();
        let mut solver = Solver::new();
        let mut syms = Vec::new();
        for _ in 0..n {
            let s = supply.fresh();
            solver.declare(s, Sort::Int);
            syms.push(SymExpr::sym(s));
        }
        (solver, syms)
    }

    #[test]
    fn linear_arithmetic() {
        let (mut solver, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        // x ≤ y ∧ y ≤ x ⊨ x = y
        let pc = vec![
            SymExpr::le(x.clone(), y.clone()),
            SymExpr::le(y.clone(), x.clone()),
        ];
        assert_eq!(
            solver.entails(&pc, &SymExpr::eq(x.clone(), y.clone())),
            Answer::Valid
        );
        // x < y ⊨ x + 1 ≤ y (integer tightening).
        let pc = vec![SymExpr::lt(x.clone(), y.clone())];
        assert_eq!(
            solver.entails(
                &pc,
                &SymExpr::le(SymExpr::add(x.clone(), SymExpr::int(1)), y.clone())
            ),
            Answer::Valid
        );
        // x ≤ y ⊭ x < y.
        let pc = vec![SymExpr::le(x.clone(), y.clone())];
        assert_eq!(solver.entails(&pc, &SymExpr::lt(x, y)), Answer::Invalid);
    }

    #[test]
    fn arithmetic_identities() {
        let (mut solver, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        // ⊨ x + y - y = x
        let goal = SymExpr::eq(SymExpr::sub(SymExpr::add(x.clone(), y.clone()), y), x);
        assert_eq!(solver.entails(&[], &goal), Answer::Valid);
    }

    #[test]
    fn scaled_constraints() {
        let (mut solver, s) = int_solver(1);
        let x = s[0].clone();
        // 2x ≤ 5 ∧ 3 ≤ 2x is rationally satisfiable but the bounds on x
        // conflict after pairing: 3 ≤ 2x ≤ 5 — fine rationally, so the
        // solver must NOT claim validity of falsity.
        let pc = vec![
            SymExpr::le(SymExpr::mul(SymExpr::int(2), x.clone()), SymExpr::int(5)),
            SymExpr::le(SymExpr::int(3), SymExpr::mul(SymExpr::int(2), x)),
        ];
        assert_eq!(solver.entails(&pc, &SymExpr::bool(false)), Answer::Invalid);
    }

    #[test]
    fn boolean_structure() {
        let mut supply = SymSupply::new();
        let mut solver = Solver::new();
        let p = supply.fresh();
        let q = supply.fresh();
        solver.declare(p, Sort::Bool);
        solver.declare(q, Sort::Bool);
        let sp = SymExpr::sym(p);
        let sq = SymExpr::sym(q);
        // p ∨ q, ¬p ⊨ q.
        let pc = vec![
            SymExpr::or(sp.clone(), sq.clone()),
            SymExpr::not(sp.clone()),
        ];
        assert_eq!(solver.entails(&pc, &sq), Answer::Valid);
        // p ⊭ q.
        assert_eq!(solver.entails(&[sp], &sq), Answer::Invalid);
    }

    #[test]
    fn reference_reasoning() {
        let mut supply = SymSupply::new();
        let mut solver = Solver::new();
        let a = supply.fresh();
        let b = supply.fresh();
        let c = supply.fresh();
        for s in [a, b, c] {
            solver.declare(s, Sort::Ref);
        }
        let (ea, eb, ec) = (SymExpr::sym(a), SymExpr::sym(b), SymExpr::sym(c));
        // a = b ∧ b = c ⊨ a = c.
        let pc = vec![
            SymExpr::eq(ea.clone(), eb.clone()),
            SymExpr::eq(eb.clone(), ec.clone()),
        ];
        assert_eq!(
            solver.entails(&pc, &SymExpr::eq(ea.clone(), ec.clone())),
            Answer::Valid
        );
        // a = b ∧ a ≠ b is inconsistent.
        let pc = vec![
            SymExpr::eq(ea.clone(), eb.clone()),
            SymExpr::not(SymExpr::eq(ea.clone(), eb.clone())),
        ];
        assert!(!solver.consistent(&pc));
        // a ≠ null ⊭ a = b.
        let pc = vec![SymExpr::not(SymExpr::eq(ea.clone(), SymExpr::Null))];
        assert_eq!(solver.entails(&pc, &SymExpr::eq(ea, eb)), Answer::Invalid);
    }

    #[test]
    fn mixed_implication() {
        let (mut solver, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        // (x = 3 → y = 4) ∧ x = 3 ⊨ y = 4.
        let pc = vec![
            SymExpr::implies(
                SymExpr::eq(x.clone(), SymExpr::int(3)),
                SymExpr::eq(y.clone(), SymExpr::int(4)),
            ),
            SymExpr::eq(x, SymExpr::int(3)),
        ];
        assert_eq!(
            solver.entails(&pc, &SymExpr::eq(y, SymExpr::int(4))),
            Answer::Valid
        );
    }

    #[test]
    fn nonlinear_is_unknown_not_wrong() {
        let (mut solver, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        let sq = SymExpr::Mul(Box::new(x.clone()), Box::new(x.clone()));
        // x*x ≥ 0 is true but nonlinear: must NOT be Invalid-with-
        // certainty... and must never be claimed Valid wrongly; Unknown
        // is the honest answer.
        let goal = SymExpr::le(SymExpr::int(0), sq);
        let ans = solver.entails(&[], &goal);
        assert_ne!(ans, Answer::Invalid);
        // And an actually-false nonlinear goal must not verify.
        let bad = SymExpr::eq(
            SymExpr::Mul(Box::new(x), Box::new(y)),
            SymExpr::int(3),
        );
        assert_ne!(solver.entails(&[], &bad), Answer::Valid);
    }

    #[test]
    fn inconsistent_pc_proves_anything() {
        let (mut solver, s) = int_solver(1);
        let x = s[0].clone();
        let pc = vec![
            SymExpr::lt(x.clone(), SymExpr::int(0)),
            SymExpr::lt(SymExpr::int(0), x),
        ];
        assert_eq!(solver.entails(&pc, &SymExpr::bool(false)), Answer::Valid);
        assert!(!solver.consistent(&pc));
    }

    #[test]
    fn query_stats_accumulate() {
        let (mut solver, s) = int_solver(1);
        let x = s[0].clone();
        let _ = solver.entails(&[], &SymExpr::eq(x.clone(), x));
        assert_eq!(solver.queries, 1);
        assert!(solver.branches >= 1);
    }
}
