//! A small decision procedure for the verifier's entailment queries.
//!
//! Viper delegates these queries to Z3; building the full substrate
//! ourselves, we implement the fragment the IDF case studies need:
//!
//! * boolean structure by DPLL-style case splitting;
//! * linear integer arithmetic by Fourier–Motzkin elimination with
//!   integer tightening (`a < b` ⇒ `a ≤ b − 1`);
//! * reference equalities by union-find with disequality checking.
//!
//! The procedure is **sound for verification**: `Valid` is only
//! answered when `pc → goal` holds. Nonlinear or otherwise unsupported
//! atoms degrade the answer to `Unknown`, never to a wrong `Valid`.
//!
//! Queries are posed over hash-consed [`TermId`]s, and two memo layers
//! exploit the O(1) equality that interning buys:
//!
//! * a **query cache** keyed on the *normalized* path condition (sorted,
//!   deduplicated ids) plus the goal id — symbolic execution re-poses
//!   the same consistency/entailment queries constantly (branch joins,
//!   repeated spec boundaries), and a repeat is answered without any
//!   solving;
//! * a **theory cache** keyed on the set of theory literals of a full
//!   DPLL assignment — union-find construction, Gaussian substitution,
//!   and Fourier–Motzkin elimination are all functions of that set
//!   alone, so queries whose path conditions share a prefix reuse the
//!   ground-theory work of their common branches instead of repeating
//!   it.
//!
//! Both caches are exact (keys are complete inputs of the computation
//! they index), so answers are bit-identical with caching on or off;
//! `cache_enabled` exists to measure the difference, not to change it.

use crate::sym::{Sort, Sym, SymExpr, Term, TermArena, TermId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Largest theory-conflict core the solver will try to minimize.
/// Minimization costs one (memoized) theory check per literal, so huge
/// leaf assignments are learned from only when they are worth the scan.
const MINIMIZE_LIMIT: usize = 64;

/// Widest clause retained after minimization. Wide clauses almost never
/// propagate (every literal must be falsified first) but are scanned on
/// every propagation round, so they cost more than they prune.
const MAX_LEARN_WIDTH: usize = 8;

/// Cap on retained learned clauses (a runaway backstop; the per-method
/// clearing keeps real runs far below it).
const MAX_LEARNED_CLAUSES: usize = 512;

/// Per-method budget of theory checks spent on conflict analysis
/// (core re-verification + minimization trials). Structured corpora
/// learn their few useful lemmas within it; pathological corpora whose
/// every leaf conflicts on a *distinct* core (e.g. the diverging
/// sweep) exhaust it quickly and fall back to plain search instead of
/// paying a Fourier–Motzkin run per literal per conflict. Refilled by
/// [`Solver::clear_learned`] at method boundaries, so it is
/// deterministic per method and thread-count independent.
const LEARN_FUEL_PER_METHOD: u64 = 256;

/// The answer to an entailment query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Answer {
    /// The entailment holds.
    Valid,
    /// A countermodel exists within the supported theory.
    Invalid,
    /// Out of fragment (nonlinear, blown budget, …).
    Unknown,
}

/// Internal satisfiability verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SatAnswer {
    Sat,
    Unsat,
    Unknown,
}

/// A linear term `Σ cᵢ·xᵢ + k` over integer symbols.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
struct LinTerm {
    coeffs: BTreeMap<Sym, i128>,
    konst: i128,
}

impl LinTerm {
    fn constant(k: i128) -> LinTerm {
        LinTerm {
            coeffs: BTreeMap::new(),
            konst: k,
        }
    }

    fn var(s: Sym) -> LinTerm {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(s, 1);
        LinTerm { coeffs, konst: 0 }
    }

    fn scale(&self, k: i128) -> LinTerm {
        LinTerm {
            coeffs: self.coeffs.iter().map(|(s, c)| (*s, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    fn add(&self, other: &LinTerm) -> LinTerm {
        let mut coeffs = self.coeffs.clone();
        for (s, c) in &other.coeffs {
            let e = coeffs.entry(*s).or_insert(0);
            *e += c;
            if *e == 0 {
                coeffs.remove(s);
            }
        }
        LinTerm {
            coeffs,
            konst: self.konst + other.konst,
        }
    }

    fn sub(&self, other: &LinTerm) -> LinTerm {
        self.add(&other.scale(-1))
    }

    fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }
}

/// A reference-sorted ground term.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum RefTerm {
    Null,
    Sym(Sym),
}

/// An abstracted atom (negations are handled by the literal polarity).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Atom {
    /// `lin ≤ 0`.
    LinLe(LinTerm),
    /// A boolean symbol.
    BoolSym(Sym),
    /// Equality of two reference terms.
    RefEq(RefTerm, RefTerm),
    /// Unsupported structure (nonlinear multiplication, …).
    Opaque(TermId),
}

/// Interned atoms of one `sat` call: index lookup is a hash probe, not
/// a linear scan over previously seen atoms.
#[derive(Default)]
struct AtomTable {
    list: Vec<Atom>,
    index: HashMap<Atom, usize>,
}

impl AtomTable {
    fn intern(&mut self, a: Atom) -> usize {
        if let Some(&i) = self.index.get(&a) {
            return i;
        }
        let i = self.list.len();
        self.list.push(a.clone());
        self.index.insert(a, i);
        i
    }
}

/// A propositional skeleton over atom indices.
#[derive(Clone, Debug)]
enum BForm {
    True,
    False,
    Lit(usize, bool),
    And(Box<BForm>, Box<BForm>),
    Or(Box<BForm>, Box<BForm>),
}

/// The integer-comparison shapes shared by the ite-splitting helpers.
#[derive(Clone, Copy)]
enum Cmp {
    Lt,
    Le,
    Eq,
}

/// The decision procedure, with query statistics (reported by the
/// evaluation harness).
#[derive(Clone, Debug)]
pub struct Solver {
    /// Sorts of the symbols in play.
    pub sorts: BTreeMap<Sym, Sort>,
    /// Number of entailment queries answered.
    pub queries: usize,
    /// Number of DPLL branches explored across all queries.
    pub branches: usize,
    /// Whether the memo layers are consulted (answers are identical
    /// either way; off = measure the uncached cost).
    pub cache_enabled: bool,
    /// Query-cache hits (whole entailments answered from memory).
    pub cache_hits: usize,
    /// Query-cache misses (entailments actually solved). With the
    /// cache disabled every query counts as a miss, so
    /// `hits + misses == queries` holds in either mode.
    pub cache_misses: usize,
    /// Theory-cache hits (ground-theory checks reused across branches
    /// and across queries sharing a path-condition prefix).
    pub theory_hits: usize,
    /// Theory-cache misses.
    pub theory_misses: usize,
    /// Remaining DPLL-branch fuel; `None` means unlimited. Each `dpll`
    /// entry consumes one unit; at zero the solver answers `Unknown`
    /// instead of searching further (cooperative budget exhaustion).
    pub fuel: Option<u64>,
    /// Sticky flag: set once any query was truncated by fuel
    /// exhaustion. Truncated answers are never cached (the caches must
    /// change cost, never answers).
    pub fuel_exhausted: bool,
    /// Fault injection: degrade every answer to `Answer::Unknown` once
    /// `queries` exceeds this count. Injected answers bypass the caches
    /// entirely.
    pub unknown_after: Option<usize>,
    /// Whether the clause-learning search core runs: unit propagation,
    /// pure-literal elimination on boolean symbols, and conflict-driven
    /// clause learning with lemmas retained across queries (cleared at
    /// method boundaries by the verifier). Learned clauses are valid
    /// theory lemmas, so they change cost, never answers; off
    /// reproduces the plain case-splitting DPLL for measurement.
    pub learn_enabled: bool,
    /// Total theory-conflict clauses learned across all queries
    /// (monotone; clearing retained clauses does not reset it).
    pub learned_clauses: usize,
    query_cache: HashMap<(Vec<TermId>, TermId), Answer>,
    theory_cache: HashMap<Vec<(Atom, bool)>, SatAnswer>,
    learned: Vec<Vec<(Atom, bool)>>,
    learned_index: HashSet<Vec<(Atom, bool)>>,
    learn_fuel: u64,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver {
            sorts: BTreeMap::new(),
            queries: 0,
            branches: 0,
            cache_enabled: true,
            cache_hits: 0,
            cache_misses: 0,
            theory_hits: 0,
            theory_misses: 0,
            fuel: None,
            fuel_exhausted: false,
            unknown_after: None,
            learn_enabled: true,
            learned_clauses: 0,
            query_cache: HashMap::new(),
            theory_cache: HashMap::new(),
            learned: Vec::new(),
            learned_index: HashSet::new(),
            learn_fuel: LEARN_FUEL_PER_METHOD,
        }
    }
}

impl Solver {
    /// A fresh solver (caching on).
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Declares a symbol's sort.
    pub fn declare(&mut self, s: Sym, sort: Sort) {
        self.sorts.insert(s, sort);
    }

    /// Checks `pc ⊨ goal` (validity of the implication).
    ///
    /// The path condition is normalized (sorted, deduplicated) before
    /// solving — conjunction is commutative and idempotent — so queries
    /// that differ only in condition order share one cache entry and
    /// one canonical answer.
    pub fn entails(&mut self, arena: &mut TermArena, pc: &[TermId], goal: TermId) -> Answer {
        self.queries += 1;
        // Fault injection: past the threshold, every answer degrades to
        // Unknown without consulting or filling the caches.
        if self.unknown_after.is_some_and(|n| self.queries > n) {
            return Answer::Unknown;
        }
        let mut key: Vec<TermId> = pc.to_vec();
        key.sort_unstable();
        key.dedup();
        if self.cache_enabled {
            if let Some(&cached) = self.query_cache.get(&(key.clone(), goal)) {
                self.cache_hits += 1;
                return cached;
            }
        }
        // With the cache disabled every query is a miss by definition —
        // counting it keeps reported hit rates honest (misses == queries
        // instead of a misleading 0/0).
        self.cache_misses += 1;
        let mut formula = arena.not(goal);
        for &c in &key {
            formula = arena.and(formula, c);
        }
        let answer = match self.sat(arena, formula) {
            SatAnswer::Unsat => Answer::Valid,
            SatAnswer::Sat => Answer::Invalid,
            SatAnswer::Unknown => Answer::Unknown,
        };
        // A fuel-truncated answer reflects the budget, not the formula;
        // caching it would let a later (differently budgeted) run read
        // it back as the formula's answer. Once fuel is exhausted every
        // subsequent answer is suspect, so caching stops entirely.
        if self.cache_enabled && !self.fuel_exhausted {
            self.query_cache.insert((key, goal), answer);
        }
        answer
    }

    /// Checks whether the path condition is consistent (used to prune
    /// infeasible branches). `consistent(pc)` is `pc ⊭ false` with
    /// Unknown treated as consistent (conservative: keep exploring), so
    /// it shares the entailment query cache.
    pub fn consistent(&mut self, arena: &mut TermArena, pc: &[TermId]) -> bool {
        let falsum = arena.bool(false);
        self.entails(arena, pc, falsum) != Answer::Valid
    }

    /// Tree-facade variant of [`Solver::entails`] for callers holding
    /// owned [`SymExpr`]s (tests, one-off queries).
    pub fn entails_exprs(
        &mut self,
        arena: &mut TermArena,
        pc: &[SymExpr],
        goal: &SymExpr,
    ) -> Answer {
        let pc_ids: Vec<TermId> = pc.iter().map(|e| arena.intern_expr(e)).collect();
        let g = arena.intern_expr(goal);
        self.entails(arena, &pc_ids, g)
    }

    /// Forgets the learned clauses and refills the conflict-analysis
    /// fuel. The verifier calls this at every method boundary: each
    /// method's lemma set is then a function of that method's own query
    /// sequence, which is what keeps verdicts, stats, and traces
    /// bit-identical at any worker count.
    pub fn clear_learned(&mut self) {
        self.learned.clear();
        self.learned_index.clear();
        self.learn_fuel = LEARN_FUEL_PER_METHOD;
    }

    fn sat(&mut self, arena: &mut TermArena, f: TermId) -> SatAnswer {
        let mut atoms = AtomTable::default();
        let skeleton = self.abstract_bool(arena, f, true, &mut atoms);
        let mut assignment: Vec<Option<bool>> = vec![None; atoms.list.len()];
        if !self.learn_enabled {
            return self.dpll(&skeleton, &atoms.list, &mut assignment);
        }
        // Instantiate retained lemmas over this query's atom table. A
        // clause applies only when every one of its atoms occurs in the
        // formula — so propagation never assigns atoms the formula does
        // not mention, and the leaf theory keys stay comparable to the
        // naive search's.
        let clauses: Vec<Vec<(usize, bool)>> = self
            .learned
            .iter()
            .filter_map(|clause| {
                clause
                    .iter()
                    .map(|(a, pol)| atoms.index.get(a).map(|&i| (i, *pol)))
                    .collect()
            })
            .collect();
        self.cdpll(&skeleton, &atoms.list, &clauses, &mut assignment)
    }

    /// Converts a boolean term to a skeleton, interning atoms.
    /// `positive` tracks NNF polarity.
    fn abstract_bool(
        &mut self,
        arena: &mut TermArena,
        id: TermId,
        positive: bool,
        atoms: &mut AtomTable,
    ) -> BForm {
        match arena.node(id) {
            Term::Bool(b) => {
                if b == positive {
                    BForm::True
                } else {
                    BForm::False
                }
            }
            Term::Not(inner) => self.abstract_bool(arena, inner, !positive, atoms),
            Term::And(a, b) => {
                let fa = self.abstract_bool(arena, a, positive, atoms);
                let fb = self.abstract_bool(arena, b, positive, atoms);
                if positive {
                    BForm::And(Box::new(fa), Box::new(fb))
                } else {
                    BForm::Or(Box::new(fa), Box::new(fb))
                }
            }
            Term::Or(a, b) => {
                let fa = self.abstract_bool(arena, a, positive, atoms);
                let fb = self.abstract_bool(arena, b, positive, atoms);
                if positive {
                    BForm::Or(Box::new(fa), Box::new(fb))
                } else {
                    BForm::And(Box::new(fa), Box::new(fb))
                }
            }
            Term::Sym(s) => BForm::Lit(atoms.intern(Atom::BoolSym(s)), positive),
            Term::Lt(a, b) => {
                if let Some(ex) = split_cmp_ite(arena, a, b, Cmp::Lt) {
                    return self.abstract_bool(arena, ex, positive, atoms);
                }
                // a < b  ⇔  a - b + 1 ≤ 0 (integers).
                match (self.linearize(arena, a), self.linearize(arena, b)) {
                    (Some(la), Some(lb)) => {
                        let lin = if positive {
                            la.sub(&lb).add(&LinTerm::constant(1))
                        } else {
                            // ¬(a < b) ⇔ b ≤ a ⇔ b - a ≤ 0.
                            lb.sub(&la)
                        };
                        lin_lit(atoms, lin)
                    }
                    _ => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
                }
            }
            Term::Le(a, b) => {
                if let Some(ex) = split_cmp_ite(arena, a, b, Cmp::Le) {
                    return self.abstract_bool(arena, ex, positive, atoms);
                }
                match (self.linearize(arena, a), self.linearize(arena, b)) {
                    (Some(la), Some(lb)) => {
                        let lin = if positive {
                            la.sub(&lb)
                        } else {
                            // ¬(a ≤ b) ⇔ b + 1 ≤ a ⇔ b - a + 1 ≤ 0.
                            lb.sub(&la).add(&LinTerm::constant(1))
                        };
                        lin_lit(atoms, lin)
                    }
                    _ => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
                }
            }
            Term::Eq(a, b) => match self.sort_of(arena, a).or_else(|| self.sort_of(arena, b)) {
                Some(Sort::Int) => {
                    if let Some(ex) = split_cmp_ite(arena, a, b, Cmp::Eq) {
                        return self.abstract_bool(arena, ex, positive, atoms);
                    }
                    match (self.linearize(arena, a), self.linearize(arena, b)) {
                        (Some(la), Some(lb)) => {
                            let d = la.sub(&lb);
                            if positive {
                                // d = 0 ⇔ d ≤ 0 ∧ -d ≤ 0.
                                BForm::And(
                                    Box::new(lin_lit(atoms, d.clone())),
                                    Box::new(lin_lit(atoms, d.scale(-1))),
                                )
                            } else {
                                // d ≠ 0 ⇔ d ≤ -1 ∨ -d ≤ -1.
                                BForm::Or(
                                    Box::new(lin_lit(atoms, d.add(&LinTerm::constant(1)))),
                                    Box::new(lin_lit(
                                        atoms,
                                        d.scale(-1).add(&LinTerm::constant(1)),
                                    )),
                                )
                            }
                        }
                        _ => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
                    }
                }
                Some(Sort::Ref) => match (ref_term(arena, a), ref_term(arena, b)) {
                    (Some(ra), Some(rb)) => BForm::Lit(atoms.intern(Atom::RefEq(ra, rb)), positive),
                    _ => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
                },
                Some(Sort::Bool) => {
                    // a ↔ b.
                    let both = arena.and(a, b);
                    let na = arena.not(a);
                    let nb = arena.not(b);
                    let neither = arena.and(na, nb);
                    let expanded = arena.or(both, neither);
                    self.abstract_bool(arena, expanded, positive, atoms)
                }
                None => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
            },
            Term::Ite(c, t, el) => {
                // Boolean ite: (c ∧ t) ∨ (¬c ∧ e).
                let then_arm = arena.and(c, t);
                let nc = arena.not(c);
                let else_arm = arena.and(nc, el);
                let expanded = arena.or(then_arm, else_arm);
                self.abstract_bool(arena, expanded, positive, atoms)
            }
            _ => BForm::Lit(atoms.intern(Atom::Opaque(id)), positive),
        }
    }

    fn sort_of(&self, arena: &TermArena, id: TermId) -> Option<Sort> {
        match arena.node(id) {
            Term::Int(_) | Term::Add(..) | Term::Sub(..) | Term::Mul(..) => Some(Sort::Int),
            Term::Bool(_)
            | Term::Not(_)
            | Term::And(..)
            | Term::Or(..)
            | Term::Eq(..)
            | Term::Lt(..)
            | Term::Le(..) => Some(Sort::Bool),
            Term::Null => Some(Sort::Ref),
            Term::Sym(s) => self.sorts.get(&s).copied(),
            Term::Ite(_, t, e2) => self.sort_of(arena, t).or_else(|| self.sort_of(arena, e2)),
        }
    }

    fn linearize(&self, arena: &TermArena, id: TermId) -> Option<LinTerm> {
        match arena.node(id) {
            Term::Int(n) => Some(LinTerm::constant(n as i128)),
            Term::Sym(s) => match self.sorts.get(&s) {
                Some(Sort::Int) | None => Some(LinTerm::var(s)),
                _ => None,
            },
            Term::Add(a, b) => Some(self.linearize(arena, a)?.add(&self.linearize(arena, b)?)),
            Term::Sub(a, b) => Some(self.linearize(arena, a)?.sub(&self.linearize(arena, b)?)),
            Term::Mul(a, b) => {
                let la = self.linearize(arena, a)?;
                let lb = self.linearize(arena, b)?;
                if la.is_constant() {
                    Some(lb.scale(la.konst))
                } else if lb.is_constant() {
                    Some(la.scale(lb.konst))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn dpll(
        &mut self,
        skeleton: &BForm,
        atoms: &[Atom],
        assignment: &mut Vec<Option<bool>>,
    ) -> SatAnswer {
        match self.fuel {
            Some(0) => {
                self.fuel_exhausted = true;
                return SatAnswer::Unknown;
            }
            Some(f) => self.fuel = Some(f - 1),
            None => {}
        }
        self.branches += 1;
        match simplify(skeleton, assignment) {
            BForm::False => SatAnswer::Unsat,
            BForm::True => self.theory_check(atoms, assignment),
            reduced => {
                let pick = first_lit(&reduced).expect("non-constant form has a literal");
                assignment[pick] = Some(true);
                let r1 = self.dpll(&reduced, atoms, assignment);
                if r1 == SatAnswer::Sat {
                    assignment[pick] = None;
                    return SatAnswer::Sat;
                }
                assignment[pick] = Some(false);
                let r2 = self.dpll(&reduced, atoms, assignment);
                assignment[pick] = None;
                match (r1, r2) {
                    (_, SatAnswer::Sat) => SatAnswer::Sat,
                    (SatAnswer::Unsat, SatAnswer::Unsat) => SatAnswer::Unsat,
                    _ => SatAnswer::Unknown,
                }
            }
        }
    }

    /// The clause-learning search: [`Solver::dpll`] extended with unit
    /// propagation (formula conjuncts and learned-clause units),
    /// pure-literal elimination on boolean symbols, and pruning by the
    /// retained lemmas. Fuel and branch accounting are identical to the
    /// naive search — one unit of each per entry — so budgets compare
    /// the two cores on equal terms.
    fn cdpll(
        &mut self,
        skeleton: &BForm,
        atoms: &[Atom],
        clauses: &[Vec<(usize, bool)>],
        assignment: &mut Vec<Option<bool>>,
    ) -> SatAnswer {
        match self.fuel {
            Some(0) => {
                self.fuel_exhausted = true;
                return SatAnswer::Unknown;
            }
            Some(f) => self.fuel = Some(f - 1),
            None => {}
        }
        self.branches += 1;
        // Only boolean symbols are ever purified, so the whole
        // pure-literal pass (a formula walk plus a polarity map per
        // propagation round) is skipped on the many queries that are
        // pure arithmetic.
        let has_bool_syms = atoms.iter().any(|a| matches!(a, Atom::BoolSym(_)));
        // Literals assigned by propagation in this frame, unwound on
        // every exit path.
        let mut trail: Vec<usize> = Vec::new();
        let verdict = 'search: loop {
            let current = simplify(skeleton, assignment);
            if matches!(current, BForm::False) {
                break 'search SatAnswer::Unsat;
            }
            // A falsified lemma refutes the branch before any theory
            // work: the clause is valid in every theory model.
            let mut unit: Option<(usize, bool)> = None;
            for clause in clauses {
                let mut satisfied = false;
                let mut open = None;
                let mut open_count = 0;
                for &(i, pol) in clause {
                    match assignment[i] {
                        Some(v) if v == pol => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            open_count += 1;
                            open = Some((i, pol));
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                if open_count == 0 {
                    break 'search SatAnswer::Unsat;
                }
                if open_count == 1 && unit.is_none() {
                    unit = open;
                }
            }
            if matches!(current, BForm::True) {
                break 'search self.decide_leaf(atoms, assignment);
            }
            if let Some((i, pol)) = unit {
                assignment[i] = Some(pol);
                trail.push(i);
                continue;
            }
            // Unit propagation from the formula: bare literals on the
            // reduced conjunction spine are forced.
            let mut units: Vec<(usize, bool)> = Vec::new();
            collect_units(&current, &mut units);
            let mut forced = false;
            for (i, pol) in units {
                match assignment[i] {
                    None => {
                        assignment[i] = Some(pol);
                        trail.push(i);
                        forced = true;
                    }
                    Some(v) if v != pol => break 'search SatAnswer::Unsat,
                    Some(_) => {}
                }
            }
            if forced {
                continue;
            }
            // Pure-literal elimination, boolean symbols only. A
            // BoolSym atom has no theory meaning, so committing its
            // unique polarity preserves satisfiability exactly. Theory
            // atoms are NOT safe to purify: assigning a pure `x ≤ 0`
            // true strengthens the constraint set a leaf hands the
            // theories and could flip a satisfiable leaf to conflict.
            if has_bool_syms {
                let mut polarity: BTreeMap<usize, (bool, bool)> = BTreeMap::new();
                collect_polarities(&current, &mut polarity);
                for clause in clauses {
                    if clause.iter().any(|&(i, pol)| assignment[i] == Some(pol)) {
                        continue;
                    }
                    for &(i, pol) in clause {
                        if assignment[i].is_none() {
                            let e = polarity.entry(i).or_insert((false, false));
                            if pol {
                                e.0 = true;
                            } else {
                                e.1 = true;
                            }
                        }
                    }
                }
                let mut purified = false;
                for (i, (pos, neg)) in &polarity {
                    if pos != neg
                        && assignment[*i].is_none()
                        && matches!(atoms[*i], Atom::BoolSym(_))
                    {
                        assignment[*i] = Some(*pos);
                        trail.push(*i);
                        purified = true;
                    }
                }
                if purified {
                    continue;
                }
            }
            // Branch, deterministically, on the first open literal.
            let pick = first_lit(&current).expect("non-constant form has a literal");
            assignment[pick] = Some(true);
            let r1 = self.cdpll(&current, atoms, clauses, assignment);
            if r1 == SatAnswer::Sat {
                assignment[pick] = None;
                break 'search SatAnswer::Sat;
            }
            assignment[pick] = Some(false);
            let r2 = self.cdpll(&current, atoms, clauses, assignment);
            assignment[pick] = None;
            break 'search match (r1, r2) {
                (_, SatAnswer::Sat) => SatAnswer::Sat,
                (SatAnswer::Unsat, SatAnswer::Unsat) => SatAnswer::Unsat,
                _ => SatAnswer::Unknown,
            };
        };
        for i in trail {
            assignment[i] = None;
        }
        verdict
    }

    /// Theory-checks a leaf of the clause-learning search and, on
    /// conflict, learns a minimized refutation clause.
    fn decide_leaf(&mut self, atoms: &[Atom], assignment: &[Option<bool>]) -> SatAnswer {
        let key = theory_key(atoms, assignment);
        let verdict = self.theory_decide(key.clone());
        if verdict == SatAnswer::Unsat {
            self.learn_conflict(&key);
        }
        verdict
    }

    /// Learns the negation of a minimized theory-conflict core as a
    /// clause. Cores are LinLe/RefEq literals only — boolean symbols
    /// never feed the theories, and `Opaque` atoms can only degrade a
    /// verdict toward `Unknown`, so a conflict never depends on either.
    fn learn_conflict(&mut self, key: &[(Atom, bool)]) {
        if self.learned.len() >= MAX_LEARNED_CLAUSES {
            return;
        }
        let mut core: Vec<(Atom, bool)> = key
            .iter()
            .filter(|(a, _)| matches!(a, Atom::LinLe(_) | Atom::RefEq(..)))
            .cloned()
            .collect();
        if core.is_empty() || core.len() > MINIMIZE_LIMIT {
            return;
        }
        // Conflict analysis costs one theory check to re-verify the
        // filtered core plus up to one minimization trial per literal.
        // Charge the worst case against the per-method fuel up front:
        // once it runs dry, conflicts stop being analyzed and search
        // proceeds at plain-DPLL cost (answers are unaffected — lemmas
        // only ever prune).
        let needed = 1 + core.len() as u64;
        if self.learn_fuel < needed {
            return;
        }
        self.learn_fuel -= needed;
        if self.theory_decide(core.clone()) != SatAnswer::Unsat {
            return;
        }
        // Greedy single-pass minimization: drop every literal whose
        // removal keeps the core in conflict (each trial is a memoized
        // theory check). Literals whose removal degrades the verdict to
        // Unknown are kept — a lemma must be certain.
        let mut i = 0;
        while i < core.len() && core.len() > 1 {
            let mut trial = core.clone();
            trial.remove(i);
            if self.theory_decide(trial) == SatAnswer::Unsat {
                core.remove(i);
            } else {
                i += 1;
            }
        }
        if core.len() > MAX_LEARN_WIDTH {
            return;
        }
        let clause: Vec<(Atom, bool)> = core.into_iter().map(|(a, pol)| (a, !pol)).collect();
        if self.learned_index.insert(clause.clone()) {
            self.learned.push(clause);
            self.learned_clauses += 1;
        }
    }

    /// Checks a full propositional assignment against the theories.
    ///
    /// The verdict is a function of the *set* of assigned theory
    /// literals alone (union-find connectivity and Fourier–Motzkin are
    /// order-independent), so it is memoized on the sorted literal set:
    /// DPLL leaves within one query, and across queries whose path
    /// conditions share a prefix, reuse each other's ground work.
    fn theory_check(&mut self, atoms: &[Atom], assignment: &[Option<bool>]) -> SatAnswer {
        let key = theory_key(atoms, assignment);
        self.theory_decide(key)
    }

    /// Decides a sorted, deduplicated theory-literal set (the memoized
    /// core of [`Solver::theory_check`], also driven directly by
    /// conflict-core minimization).
    fn theory_decide(&mut self, key: Vec<(Atom, bool)>) -> SatAnswer {
        if self.cache_enabled {
            if let Some(&cached) = self.theory_cache.get(&key) {
                self.theory_hits += 1;
                return cached;
            }
            self.theory_misses += 1;
        }

        // Opaque atoms poison certainty of Sat.
        let mut unknown = false;
        // --- References: union-find with disequalities.
        let mut uf = UnionFind::new();
        let mut disequalities: Vec<(RefTerm, RefTerm)> = Vec::new();
        // --- Integers: Fourier–Motzkin.
        let mut constraints: Vec<LinTerm> = Vec::new();

        for (atom, polarity) in &key {
            match atom {
                Atom::LinLe(lin) => {
                    if *polarity {
                        constraints.push(lin.clone());
                    } else {
                        // ¬(lin ≤ 0) ⇔ -lin + 1 ≤ 0.
                        constraints.push(lin.scale(-1).add(&LinTerm::constant(1)));
                    }
                }
                Atom::BoolSym(_) => {}
                Atom::RefEq(a, b) => {
                    if *polarity {
                        uf.union(*a, *b);
                    } else {
                        disequalities.push((*a, *b));
                    }
                }
                Atom::Opaque(_) => unknown = true,
            }
        }

        let mut result = SatAnswer::Sat;
        for (a, b) in &disequalities {
            if uf.find(*a) == uf.find(*b) {
                result = SatAnswer::Unsat;
            }
        }

        if result != SatAnswer::Unsat {
            match fourier_motzkin(constraints) {
                Some(false) => result = SatAnswer::Unsat,
                Some(true) => {}
                None => unknown = true,
            }
        }

        if result != SatAnswer::Unsat && unknown {
            result = SatAnswer::Unknown;
        }

        if self.cache_enabled {
            self.theory_cache.insert(key, result);
        }
        result
    }
}

/// Finds the first integer `Ite` inside an arithmetic term and returns
/// (condition, term-with-then, term-with-else).
fn split_ite(arena: &mut TermArena, id: TermId) -> Option<(TermId, TermId, TermId)> {
    enum Kind {
        Add,
        Sub,
        Mul,
    }
    let (kind, a, b) = match arena.node(id) {
        Term::Ite(c, t, el) => return Some((c, t, el)),
        Term::Add(a, b) => (Kind::Add, a, b),
        Term::Sub(a, b) => (Kind::Sub, a, b),
        Term::Mul(a, b) => (Kind::Mul, a, b),
        _ => return None,
    };
    let rebuild = |arena: &mut TermArena, x: TermId, y: TermId| match kind {
        Kind::Add => arena.add(x, y),
        Kind::Sub => arena.sub(x, y),
        Kind::Mul => arena.mul(x, y),
    };
    if let Some((c, t, el)) = split_ite(arena, a) {
        let rt = rebuild(arena, t, b);
        let re = rebuild(arena, el, b);
        Some((c, rt, re))
    } else if let Some((c, t, el)) = split_ite(arena, b) {
        let rt = rebuild(arena, a, t);
        let re = rebuild(arena, a, el);
        Some((c, rt, re))
    } else {
        None
    }
}

/// If either operand of an integer comparison contains an `Ite`, expands
/// the comparison into a boolean case split on the `Ite` condition.
fn split_cmp_ite(arena: &mut TermArena, a: TermId, b: TermId, cmp: Cmp) -> Option<TermId> {
    let rebuild = |arena: &mut TermArena, x: TermId, y: TermId| match cmp {
        Cmp::Lt => arena.lt(x, y),
        Cmp::Le => arena.le(x, y),
        Cmp::Eq => arena.eq(x, y),
    };
    let (c, lhs_t, lhs_e, rhs_t, rhs_e) = if let Some((c, t, el)) = split_ite(arena, a) {
        (c, t, el, b, b)
    } else if let Some((c, t, el)) = split_ite(arena, b) {
        (c, a, a, t, el)
    } else {
        return None;
    };
    let then_cmp = rebuild(arena, lhs_t, rhs_t);
    let else_cmp = rebuild(arena, lhs_e, rhs_e);
    let then_arm = arena.and(c, then_cmp);
    let nc = arena.not(c);
    let else_arm = arena.and(nc, else_cmp);
    Some(arena.or(then_arm, else_arm))
}

fn lin_lit(atoms: &mut AtomTable, lin: LinTerm) -> BForm {
    if lin.is_constant() {
        return if lin.konst <= 0 {
            BForm::True
        } else {
            BForm::False
        };
    }
    BForm::Lit(atoms.intern(Atom::LinLe(lin)), true)
}

fn ref_term(arena: &TermArena, id: TermId) -> Option<RefTerm> {
    match arena.node(id) {
        Term::Null => Some(RefTerm::Null),
        Term::Sym(s) => Some(RefTerm::Sym(s)),
        _ => None,
    }
}

fn simplify(f: &BForm, assignment: &[Option<bool>]) -> BForm {
    match f {
        BForm::True => BForm::True,
        BForm::False => BForm::False,
        BForm::Lit(i, pol) => match assignment[*i] {
            None => BForm::Lit(*i, *pol),
            Some(v) => {
                if v == *pol {
                    BForm::True
                } else {
                    BForm::False
                }
            }
        },
        BForm::And(a, b) => match (simplify(a, assignment), simplify(b, assignment)) {
            (BForm::False, _) | (_, BForm::False) => BForm::False,
            (BForm::True, x) | (x, BForm::True) => x,
            (x, y) => BForm::And(Box::new(x), Box::new(y)),
        },
        BForm::Or(a, b) => match (simplify(a, assignment), simplify(b, assignment)) {
            (BForm::True, _) | (_, BForm::True) => BForm::True,
            (BForm::False, x) | (x, BForm::False) => x,
            (x, y) => BForm::Or(Box::new(x), Box::new(y)),
        },
    }
}

fn first_lit(f: &BForm) -> Option<usize> {
    match f {
        BForm::True | BForm::False => None,
        BForm::Lit(i, _) => Some(*i),
        BForm::And(a, b) | BForm::Or(a, b) => first_lit(a).or_else(|| first_lit(b)),
    }
}

/// The sorted, deduplicated assigned-literal set — the memoization key
/// of a theory check and the raw material of a conflict core.
fn theory_key(atoms: &[Atom], assignment: &[Option<bool>]) -> Vec<(Atom, bool)> {
    let mut key: Vec<(Atom, bool)> = atoms
        .iter()
        .zip(assignment.iter())
        .filter_map(|(a, v)| v.map(|pol| (a.clone(), pol)))
        .collect();
    key.sort_unstable();
    key.dedup();
    key
}

/// Collects the forced literals on the conjunction spine of a reduced
/// formula: every bare literal conjoined at the top level must hold.
fn collect_units(f: &BForm, out: &mut Vec<(usize, bool)>) {
    match f {
        BForm::Lit(i, pol) => out.push((*i, *pol)),
        BForm::And(a, b) => {
            collect_units(a, out);
            collect_units(b, out);
        }
        _ => {}
    }
}

/// Records which polarities each atom occurs with in a reduced formula
/// (`.0` = positive seen, `.1` = negative seen). A `BTreeMap` keeps the
/// subsequent pure-literal sweep deterministic.
fn collect_polarities(f: &BForm, out: &mut BTreeMap<usize, (bool, bool)>) {
    match f {
        BForm::Lit(i, pol) => {
            let e = out.entry(*i).or_insert((false, false));
            if *pol {
                e.0 = true;
            } else {
                e.1 = true;
            }
        }
        BForm::And(a, b) | BForm::Or(a, b) => {
            collect_polarities(a, out);
            collect_polarities(b, out);
        }
        _ => {}
    }
}

/// Gaussian pre-pass: recognizes equalities (a constraint together with
/// its negation) defining a variable with a ±1 coefficient, and
/// substitutes it away. Witness-binding chains (`w = e`) are eliminated
/// in linear time here instead of exploding Fourier–Motzkin.
fn gaussian_substitute(constraints: &mut Vec<LinTerm>) {
    loop {
        // Find an equality pair (c, -c) with some ±1-coefficient var.
        let mut found: Option<(usize, usize, Sym)> = None;
        'outer: for i in 0..constraints.len() {
            if constraints[i].is_constant() {
                continue;
            }
            let neg = constraints[i].scale(-1);
            for j in 0..constraints.len() {
                if i != j && constraints[j] == neg {
                    if let Some((s, _)) = constraints[i]
                        .coeffs
                        .iter()
                        .find(|(_, c)| **c == 1 || **c == -1)
                    {
                        found = Some((i, j, *s));
                        break 'outer;
                    }
                }
            }
        }
        let Some((i, j, var)) = found else {
            return;
        };
        // c: a·var + rest = 0 with a = ±1  ⇒  var = ∓rest.
        let eq = constraints[i].clone();
        let a = eq.coeffs[&var];
        // solution: var = -(rest)/a where rest = eq - a·var.
        let mut rest = eq.clone();
        rest.coeffs.remove(&var);
        let solution = rest.scale(-a); // a ∈ {1,-1} so -rest/a = -a·rest.
                                       // Remove the equality pair, substitute elsewhere.
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        constraints.remove(hi);
        constraints.remove(lo);
        for c in constraints.iter_mut() {
            if let Some(&k) = c.coeffs.get(&var) {
                c.coeffs.remove(&var);
                *c = c.add(&solution.scale(k));
            }
        }
    }
}

/// Fourier–Motzkin elimination over the rationals with integer-tightened
/// inputs. Returns `Some(true)` for consistent, `Some(false)` for
/// inconsistent, `None` when the budget blows up.
fn fourier_motzkin(mut constraints: Vec<LinTerm>) -> Option<bool> {
    const BUDGET: usize = 4000;
    gaussian_substitute(&mut constraints);
    loop {
        // Constant contradictions?
        for c in &constraints {
            if c.is_constant() && c.konst > 0 {
                return Some(false);
            }
        }
        constraints.retain(|c| !c.is_constant());
        // Pick the variable with the least fill-in (uppers × lowers).
        let mut counts: BTreeMap<Sym, (usize, usize)> = BTreeMap::new();
        for c in &constraints {
            for (s, k) in &c.coeffs {
                let e = counts.entry(*s).or_insert((0, 0));
                if *k > 0 {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let var = match counts
            .into_iter()
            .min_by_key(|(_, (u, l))| u * l)
            .map(|(s, _)| s)
        {
            Some(v) => v,
            None => return Some(true),
        };
        let (with_var, without): (Vec<LinTerm>, Vec<LinTerm>) = constraints
            .into_iter()
            .partition(|c| c.coeffs.contains_key(&var));
        let mut uppers = Vec::new(); // coefficient > 0: var bounded above
        let mut lowers = Vec::new(); // coefficient < 0: var bounded below
        for c in with_var {
            let coef = c.coeffs[&var];
            if coef > 0 {
                uppers.push(c);
            } else {
                lowers.push(c);
            }
        }
        let mut next = without;
        for u in &uppers {
            for l in &lowers {
                let a = u.coeffs[&var];
                let b = -l.coeffs[&var];
                // b·u + a·l eliminates var.
                let combined = u.scale(b).add(&l.scale(a));
                debug_assert!(!combined.coeffs.contains_key(&var));
                next.push(combined);
            }
        }
        if next.len() > BUDGET {
            return None;
        }
        constraints = next;
    }
}

#[derive(Debug)]
struct UnionFind {
    parents: BTreeMap<RefTerm, RefTerm>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind {
            parents: BTreeMap::new(),
        }
    }

    fn find(&mut self, t: RefTerm) -> RefTerm {
        let p = *self.parents.get(&t).unwrap_or(&t);
        if p == t {
            t
        } else {
            let root = self.find(p);
            self.parents.insert(t, root);
            root
        }
    }

    fn union(&mut self, a: RefTerm, b: RefTerm) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parents.insert(ra, rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::SymSupply;

    struct Ctx {
        solver: Solver,
        arena: TermArena,
    }

    impl Ctx {
        fn entails(&mut self, pc: &[SymExpr], goal: &SymExpr) -> Answer {
            self.solver.entails_exprs(&mut self.arena, pc, goal)
        }

        fn consistent(&mut self, pc: &[SymExpr]) -> bool {
            let ids: Vec<TermId> = pc.iter().map(|e| self.arena.intern_expr(e)).collect();
            self.solver.consistent(&mut self.arena, &ids)
        }
    }

    fn int_solver(n: usize) -> (Ctx, Vec<SymExpr>) {
        let mut supply = SymSupply::new();
        let mut solver = Solver::new();
        let mut syms = Vec::new();
        for _ in 0..n {
            let s = supply.fresh();
            solver.declare(s, Sort::Int);
            syms.push(SymExpr::sym(s));
        }
        (
            Ctx {
                solver,
                arena: TermArena::new(),
            },
            syms,
        )
    }

    #[test]
    fn linear_arithmetic() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        // x ≤ y ∧ y ≤ x ⊨ x = y
        let pc = vec![
            SymExpr::le(x.clone(), y.clone()),
            SymExpr::le(y.clone(), x.clone()),
        ];
        assert_eq!(
            cx.entails(&pc, &SymExpr::eq(x.clone(), y.clone())),
            Answer::Valid
        );
        // x < y ⊨ x + 1 ≤ y (integer tightening).
        let pc = vec![SymExpr::lt(x.clone(), y.clone())];
        assert_eq!(
            cx.entails(
                &pc,
                &SymExpr::le(SymExpr::add(x.clone(), SymExpr::int(1)), y.clone())
            ),
            Answer::Valid
        );
        // x ≤ y ⊭ x < y.
        let pc = vec![SymExpr::le(x.clone(), y.clone())];
        assert_eq!(cx.entails(&pc, &SymExpr::lt(x, y)), Answer::Invalid);
    }

    #[test]
    fn arithmetic_identities() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        // ⊨ x + y - y = x
        let goal = SymExpr::eq(SymExpr::sub(SymExpr::add(x.clone(), y.clone()), y), x);
        assert_eq!(cx.entails(&[], &goal), Answer::Valid);
    }

    #[test]
    fn scaled_constraints() {
        let (mut cx, s) = int_solver(1);
        let x = s[0].clone();
        // 2x ≤ 5 ∧ 3 ≤ 2x is rationally satisfiable but the bounds on x
        // conflict after pairing: 3 ≤ 2x ≤ 5 — fine rationally, so the
        // solver must NOT claim validity of falsity.
        let pc = vec![
            SymExpr::le(SymExpr::mul(SymExpr::int(2), x.clone()), SymExpr::int(5)),
            SymExpr::le(SymExpr::int(3), SymExpr::mul(SymExpr::int(2), x)),
        ];
        assert_eq!(cx.entails(&pc, &SymExpr::bool(false)), Answer::Invalid);
    }

    #[test]
    fn boolean_structure() {
        let mut supply = SymSupply::new();
        let mut solver = Solver::new();
        let p = supply.fresh();
        let q = supply.fresh();
        solver.declare(p, Sort::Bool);
        solver.declare(q, Sort::Bool);
        let mut cx = Ctx {
            solver,
            arena: TermArena::new(),
        };
        let sp = SymExpr::sym(p);
        let sq = SymExpr::sym(q);
        // p ∨ q, ¬p ⊨ q.
        let pc = vec![
            SymExpr::or(sp.clone(), sq.clone()),
            SymExpr::not(sp.clone()),
        ];
        assert_eq!(cx.entails(&pc, &sq), Answer::Valid);
        // p ⊭ q.
        assert_eq!(cx.entails(&[sp], &sq), Answer::Invalid);
    }

    #[test]
    fn reference_reasoning() {
        let mut supply = SymSupply::new();
        let mut solver = Solver::new();
        let a = supply.fresh();
        let b = supply.fresh();
        let c = supply.fresh();
        for s in [a, b, c] {
            solver.declare(s, Sort::Ref);
        }
        let mut cx = Ctx {
            solver,
            arena: TermArena::new(),
        };
        let (ea, eb, ec) = (SymExpr::sym(a), SymExpr::sym(b), SymExpr::sym(c));
        // a = b ∧ b = c ⊨ a = c.
        let pc = vec![
            SymExpr::eq(ea.clone(), eb.clone()),
            SymExpr::eq(eb.clone(), ec.clone()),
        ];
        assert_eq!(
            cx.entails(&pc, &SymExpr::eq(ea.clone(), ec.clone())),
            Answer::Valid
        );
        // a = b ∧ a ≠ b is inconsistent.
        let pc = vec![
            SymExpr::eq(ea.clone(), eb.clone()),
            SymExpr::not(SymExpr::eq(ea.clone(), eb.clone())),
        ];
        assert!(!cx.consistent(&pc));
        // a ≠ null ⊭ a = b.
        let pc = vec![SymExpr::not(SymExpr::eq(ea.clone(), SymExpr::Null))];
        assert_eq!(cx.entails(&pc, &SymExpr::eq(ea, eb)), Answer::Invalid);
    }

    #[test]
    fn mixed_implication() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        // (x = 3 → y = 4) ∧ x = 3 ⊨ y = 4.
        let pc = vec![
            SymExpr::implies(
                SymExpr::eq(x.clone(), SymExpr::int(3)),
                SymExpr::eq(y.clone(), SymExpr::int(4)),
            ),
            SymExpr::eq(x, SymExpr::int(3)),
        ];
        assert_eq!(
            cx.entails(&pc, &SymExpr::eq(y, SymExpr::int(4))),
            Answer::Valid
        );
    }

    #[test]
    fn nonlinear_is_unknown_not_wrong() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        let sq = SymExpr::Mul(Box::new(x.clone()), Box::new(x.clone()));
        // x*x ≥ 0 is true but nonlinear: must NOT be Invalid-with-
        // certainty... and must never be claimed Valid wrongly; Unknown
        // is the honest answer.
        let goal = SymExpr::le(SymExpr::int(0), sq);
        let ans = cx.entails(&[], &goal);
        assert_ne!(ans, Answer::Invalid);
        // And an actually-false nonlinear goal must not verify.
        let bad = SymExpr::eq(SymExpr::Mul(Box::new(x), Box::new(y)), SymExpr::int(3));
        assert_ne!(cx.entails(&[], &bad), Answer::Valid);
    }

    #[test]
    fn inconsistent_pc_proves_anything() {
        let (mut cx, s) = int_solver(1);
        let x = s[0].clone();
        let pc = vec![
            SymExpr::lt(x.clone(), SymExpr::int(0)),
            SymExpr::lt(SymExpr::int(0), x),
        ];
        assert_eq!(cx.entails(&pc, &SymExpr::bool(false)), Answer::Valid);
        assert!(!cx.consistent(&pc));
    }

    #[test]
    fn query_stats_accumulate() {
        let (mut cx, s) = int_solver(1);
        let x = s[0].clone();
        let _ = cx.entails(&[], &SymExpr::eq(x.clone(), x));
        assert_eq!(cx.solver.queries, 1);
        assert!(cx.solver.branches >= 1);
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let (mut cx, s) = int_solver(2);
        let x = s[0].clone();
        let y = s[1].clone();
        let pc = vec![SymExpr::lt(x.clone(), y.clone())];
        let goal = SymExpr::le(x.clone(), y.clone());
        let first = cx.entails(&pc, &goal);
        let branches_after_first = cx.solver.branches;
        let second = cx.entails(&pc, &goal);
        assert_eq!(first, second);
        assert_eq!(cx.solver.cache_hits, 1);
        assert_eq!(
            cx.solver.branches, branches_after_first,
            "a cache hit must not re-run DPLL"
        );
        // Same conditions in a different order share the entry.
        let pc2 = vec![
            SymExpr::lt(x.clone(), y.clone()),
            SymExpr::lt(x.clone(), y.clone()),
        ];
        let third = cx.entails(&pc2, &goal);
        assert_eq!(first, third);
        assert_eq!(cx.solver.cache_hits, 2);
    }

    #[test]
    fn cache_off_gives_identical_answers() {
        let build = |enabled: bool| {
            let (mut cx, s) = int_solver(2);
            cx.solver.cache_enabled = enabled;
            let x = s[0].clone();
            let y = s[1].clone();
            let queries: Vec<(Vec<SymExpr>, SymExpr)> = vec![
                (
                    vec![SymExpr::le(x.clone(), y.clone())],
                    SymExpr::lt(x.clone(), y.clone()),
                ),
                (
                    vec![SymExpr::lt(x.clone(), y.clone())],
                    SymExpr::le(x.clone(), y.clone()),
                ),
                (
                    vec![SymExpr::lt(x.clone(), y.clone())],
                    SymExpr::le(x.clone(), y.clone()),
                ),
                (vec![], SymExpr::eq(x.clone(), x.clone())),
                (
                    vec![
                        SymExpr::lt(x.clone(), SymExpr::int(0)),
                        SymExpr::lt(SymExpr::int(0), x.clone()),
                    ],
                    SymExpr::bool(false),
                ),
            ];
            queries
                .into_iter()
                .map(|(pc, g)| cx.entails(&pc, &g))
                .collect::<Vec<Answer>>()
        };
        assert_eq!(build(true), build(false));
    }

    /// A diverging-style query set: each variable is pinned to `{0, 1}`
    /// by a disjunction, and the goal bounds their sum from below.
    fn diverging_queries(s: &[SymExpr]) -> (Vec<SymExpr>, SymExpr) {
        let pc: Vec<SymExpr> = s
            .iter()
            .map(|x| {
                SymExpr::or(
                    SymExpr::eq(x.clone(), SymExpr::int(0)),
                    SymExpr::eq(x.clone(), SymExpr::int(1)),
                )
            })
            .collect();
        let sum = s
            .iter()
            .cloned()
            .reduce(SymExpr::add)
            .expect("at least one symbol");
        (pc, SymExpr::le(SymExpr::int(0), sum))
    }

    #[test]
    fn learning_gives_identical_answers() {
        let build = |learn: bool| {
            let (mut cx, s) = int_solver(3);
            cx.solver.learn_enabled = learn;
            let x = s[0].clone();
            let y = s[1].clone();
            let (dpc, dgoal) = diverging_queries(&s);
            let queries: Vec<(Vec<SymExpr>, SymExpr)> = vec![
                (
                    vec![SymExpr::le(x.clone(), y.clone())],
                    SymExpr::lt(x.clone(), y.clone()),
                ),
                (
                    vec![SymExpr::lt(x.clone(), y.clone())],
                    SymExpr::le(x.clone(), y.clone()),
                ),
                (vec![], SymExpr::eq(x.clone(), x.clone())),
                (
                    vec![
                        SymExpr::lt(x.clone(), SymExpr::int(0)),
                        SymExpr::lt(SymExpr::int(0), x.clone()),
                    ],
                    SymExpr::bool(false),
                ),
                (dpc.clone(), dgoal.clone()),
                (dpc, dgoal),
            ];
            queries
                .into_iter()
                .map(|(pc, g)| cx.entails(&pc, &g))
                .collect::<Vec<Answer>>()
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn learned_clauses_prune_repeated_branching() {
        let branches_of_second_run = |learn: bool| {
            let (mut cx, s) = int_solver(3);
            cx.solver.learn_enabled = learn;
            // Disable memoization so the second run actually re-solves.
            cx.solver.cache_enabled = false;
            let (pc, goal) = diverging_queries(&s);
            assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
            let after_first = cx.solver.branches;
            assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
            cx.solver.branches - after_first
        };
        let naive = branches_of_second_run(false);
        let learned = branches_of_second_run(true);
        assert!(
            learned < naive,
            "learned clauses should prune the re-solved search: {learned} vs {naive}"
        );
    }

    #[test]
    fn clear_learned_resets_clauses_but_not_the_counter() {
        let (mut cx, s) = int_solver(2);
        let (pc, goal) = diverging_queries(&s);
        assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
        let learned = cx.solver.learned_clauses;
        assert!(learned >= 1, "a theory conflict should learn a clause");
        cx.solver.clear_learned();
        cx.solver.cache_enabled = false;
        assert_eq!(cx.entails(&pc, &goal), Answer::Valid);
        assert!(
            cx.solver.learned_clauses > learned,
            "after clearing, the same conflicts are relearned and the \
             monotone total keeps growing"
        );
    }
}
