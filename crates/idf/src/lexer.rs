//! Lexer for the IDF surface syntax.

use std::fmt;

/// Tokens of the IDF language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Keyword.
    Kw(Kw),
    /// Symbol.
    Sym(Sy),
}

/// Keywords.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Kw {
    Field,
    Method,
    Returns,
    Requires,
    Ensures,
    Var,
    New,
    Inhale,
    Exhale,
    Assert,
    If,
    Else,
    While,
    Invariant,
    Call,
    Old,
    Perm,
    Acc,
    True,
    False,
    Null,
    TyInt,
    TyBool,
    TyRef,
    Write,
}

/// Symbols.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Sy {
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Semi,
    Dot,
    Assign, // :=
    EqEq,   // ==
    Ne,     // !=
    Le,
    Ge,
    Lt,
    Gt,
    Plus,
    Minus,
    Star,
    Slash,
    AndAnd,
    OrOr,
    Implies, // ==>
    Bang,
    Question,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{}", s),
            Tok::Int(n) => write!(f, "{}", n),
            Tok::Kw(k) => write!(f, "{:?}", k),
            Tok::Sym(s) => write!(f, "{:?}", s),
        }
    }
}

/// A lexing error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Byte position.
    pub pos: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "field" => Kw::Field,
        "method" => Kw::Method,
        "returns" => Kw::Returns,
        "requires" => Kw::Requires,
        "ensures" => Kw::Ensures,
        "var" => Kw::Var,
        "new" => Kw::New,
        "inhale" => Kw::Inhale,
        "exhale" => Kw::Exhale,
        "assert" => Kw::Assert,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "invariant" => Kw::Invariant,
        "call" => Kw::Call,
        "old" => Kw::Old,
        "perm" => Kw::Perm,
        "acc" => Kw::Acc,
        "true" => Kw::True,
        "false" => Kw::False,
        "null" => Kw::Null,
        "Int" => Kw::TyInt,
        "Bool" => Kw::TyBool,
        "Ref" => Kw::TyRef,
        "write" => Kw::Write,
        _ => return None,
    })
}

/// Tokenizes IDF source. `//` line comments and `/* */` block comments
/// are skipped.
///
/// # Errors
///
/// Returns [`LexError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    Ok(lex_spanned(src)?.into_iter().map(|(t, _)| t).collect())
}

/// Tokenizes IDF source keeping each token's starting byte offset —
/// the spans that let the parser report source positions (line and
/// column) in its diagnostics.
///
/// # Errors
///
/// Returns [`LexError`] on unknown characters or malformed literals.
pub fn lex_spanned(src: &str) -> Result<Vec<(Tok, usize)>, LexError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        let tok_start = i;
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated comment".into(),
                        });
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => {
                out.push((Tok::Sym(Sy::LParen), tok_start));
                i += 1;
            }
            ')' => {
                out.push((Tok::Sym(Sy::RParen), tok_start));
                i += 1;
            }
            '{' => {
                out.push((Tok::Sym(Sy::LBrace), tok_start));
                i += 1;
            }
            '}' => {
                out.push((Tok::Sym(Sy::RBrace), tok_start));
                i += 1;
            }
            ',' => {
                out.push((Tok::Sym(Sy::Comma), tok_start));
                i += 1;
            }
            ';' => {
                out.push((Tok::Sym(Sy::Semi), tok_start));
                i += 1;
            }
            '.' => {
                out.push((Tok::Sym(Sy::Dot), tok_start));
                i += 1;
            }
            '?' => {
                out.push((Tok::Sym(Sy::Question), tok_start));
                i += 1;
            }
            ':' if b.get(i + 1) == Some(&b'=') => {
                out.push((Tok::Sym(Sy::Assign), tok_start));
                i += 2;
            }
            ':' => {
                out.push((Tok::Sym(Sy::Colon), tok_start));
                i += 1;
            }
            '=' if b.get(i + 1) == Some(&b'=') && b.get(i + 2) == Some(&b'>') => {
                out.push((Tok::Sym(Sy::Implies), tok_start));
                i += 3;
            }
            '=' if b.get(i + 1) == Some(&b'=') => {
                out.push((Tok::Sym(Sy::EqEq), tok_start));
                i += 2;
            }
            '!' if b.get(i + 1) == Some(&b'=') => {
                out.push((Tok::Sym(Sy::Ne), tok_start));
                i += 2;
            }
            '!' => {
                out.push((Tok::Sym(Sy::Bang), tok_start));
                i += 1;
            }
            '<' if b.get(i + 1) == Some(&b'=') => {
                out.push((Tok::Sym(Sy::Le), tok_start));
                i += 2;
            }
            '<' => {
                out.push((Tok::Sym(Sy::Lt), tok_start));
                i += 1;
            }
            '>' if b.get(i + 1) == Some(&b'=') => {
                out.push((Tok::Sym(Sy::Ge), tok_start));
                i += 2;
            }
            '>' => {
                out.push((Tok::Sym(Sy::Gt), tok_start));
                i += 1;
            }
            '+' => {
                out.push((Tok::Sym(Sy::Plus), tok_start));
                i += 1;
            }
            '-' => {
                out.push((Tok::Sym(Sy::Minus), tok_start));
                i += 1;
            }
            '*' => {
                out.push((Tok::Sym(Sy::Star), tok_start));
                i += 1;
            }
            '/' => {
                out.push((Tok::Sym(Sy::Slash), tok_start));
                i += 1;
            }
            '&' if b.get(i + 1) == Some(&b'&') => {
                out.push((Tok::Sym(Sy::AndAnd), tok_start));
                i += 2;
            }
            '|' if b.get(i + 1) == Some(&b'|') => {
                out.push((Tok::Sym(Sy::OrOr), tok_start));
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n = src[start..i].parse::<i64>().map_err(|_| LexError {
                    pos: start,
                    message: "integer literal out of range".into(),
                })?;
                out.push((Tok::Int(n), tok_start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() {
                    let c = b[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                match keyword(text) {
                    Some(k) => out.push((Tok::Kw(k), tok_start)),
                    None => out.push((Tok::Ident(text.to_string()), tok_start)),
                }
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character {:?}", other),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_method_header() {
        let toks = lex("method m(a: Ref) returns (r: Int) requires acc(a.val)").unwrap();
        assert_eq!(toks[0], Tok::Kw(Kw::Method));
        assert!(toks.contains(&Tok::Kw(Kw::Acc)));
        assert!(toks.contains(&Tok::Sym(Sy::Dot)));
    }

    #[test]
    fn compound_symbols() {
        let toks = lex(":= == ==> != <= < && ||").unwrap();
        use Sy::*;
        assert_eq!(
            toks,
            vec![
                Tok::Sym(Assign),
                Tok::Sym(EqEq),
                Tok::Sym(Implies),
                Tok::Sym(Ne),
                Tok::Sym(Le),
                Tok::Sym(Lt),
                Tok::Sym(AndAnd),
                Tok::Sym(OrOr),
            ]
        );
    }

    #[test]
    fn comments() {
        let toks = lex("1 // x\n 2 /* y */ 3").unwrap();
        assert_eq!(toks, vec![Tok::Int(1), Tok::Int(2), Tok::Int(3)]);
    }

    #[test]
    fn errors() {
        assert!(lex("#").is_err());
        assert!(lex("/* open").is_err());
    }
}
