//! Resource budgets and deterministic fault injection for the verifier.
//!
//! A [`Budget`] bounds each axis of verification work — wall-clock
//! deadline, solver fuel (conflicts + propagated literals under the
//! CDCL core, search nodes under the legacy DPLL core),
//! symbolic-execution states,
//! and interned terms. Budgets are checked *cooperatively* at the
//! existing loop sites in `exec`/`smt`, so exhaustion prunes the run
//! and surfaces as a deterministic `Verdict::Unknown { reason }`
//! rather than a hang or a panic.
//!
//! A [`FaultPlan`] injects failures at deterministic points (solver
//! Unknowns after N queries, immediate budget exhaustion, a panic at
//! the Nth execution state) so the chaos test suite can prove the
//! pipeline degrades gracefully: one faulted method never perturbs its
//! siblings' verdicts, at any thread count.

use std::fmt;

/// One resource axis a [`Budget`] can bound (and a fault can exhaust).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum BudgetAxis {
    /// Wall-clock deadline per method ([`Budget::deadline_ms`]).
    Deadline,
    /// Solver fuel per method ([`Budget::solver_fuel`]): conflicts +
    /// propagations under CDCL, search nodes under legacy DPLL.
    SolverFuel,
    /// Symbolic-execution states per method ([`Budget::max_states`]).
    States,
    /// Interned terms per method ([`Budget::max_terms`]).
    Terms,
}

impl BudgetAxis {
    /// Every axis, in declaration order — used when emitting one
    /// budget-consumption gauge per axis.
    pub const ALL: [BudgetAxis; 4] = [
        BudgetAxis::Deadline,
        BudgetAxis::SolverFuel,
        BudgetAxis::States,
        BudgetAxis::Terms,
    ];
}

impl fmt::Display for BudgetAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BudgetAxis::Deadline => "deadline",
            BudgetAxis::SolverFuel => "solver fuel",
            BudgetAxis::States => "states",
            BudgetAxis::Terms => "terms",
        };
        f.write_str(s)
    }
}

/// Per-method resource limits for verification. Every axis is optional;
/// `None` means unlimited, and the default budget is unlimited on every
/// axis (so default-configured runs behave exactly as before).
///
/// All axes except the deadline are *deterministic*: whether and where
/// they exhaust depends only on the program, backend, and configuration
/// — never on wall-clock time, machine speed, or thread count (each
/// method is verified in an isolated arena/solver, so its resource
/// consumption is independent of its siblings). The deadline is the one
/// inherently nondeterministic axis; it exists to bound hangs, not to
/// produce reproducible verdicts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Budget {
    /// Wall-clock deadline in milliseconds per method.
    pub deadline_ms: Option<u64>,
    /// Solver fuel units the solver may spend per method: one unit
    /// per conflict and per propagated literal under the CDCL core,
    /// one per search-node entry under the legacy DPLL core.
    pub solver_fuel: Option<u64>,
    /// Symbolic-execution states explored per method.
    pub max_states: Option<u64>,
    /// Terms interned per method.
    pub max_terms: Option<u64>,
}

impl Budget {
    /// The unlimited budget (every axis `None`) — the default.
    pub const UNLIMITED: Budget = Budget {
        deadline_ms: None,
        solver_fuel: None,
        max_states: None,
        max_terms: None,
    };

    /// Returns the unlimited budget.
    pub fn unlimited() -> Budget {
        Budget::UNLIMITED
    }

    /// Sets the per-method wall-clock deadline in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Budget {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the per-method DPLL-branch fuel.
    pub fn with_solver_fuel(mut self, fuel: u64) -> Budget {
        self.solver_fuel = Some(fuel);
        self
    }

    /// Sets the per-method symbolic-execution state cap.
    pub fn with_max_states(mut self, states: u64) -> Budget {
        self.max_states = Some(states);
        self
    }

    /// Sets the per-method interned-term cap.
    pub fn with_max_terms(mut self, terms: u64) -> Budget {
        self.max_terms = Some(terms);
        self
    }

    /// The configured limit for one axis (`None` = unlimited) —
    /// uniform access for budget-consumption gauges.
    pub fn limit(&self, axis: BudgetAxis) -> Option<u64> {
        match axis {
            BudgetAxis::Deadline => self.deadline_ms,
            BudgetAxis::SolverFuel => self.solver_fuel,
            BudgetAxis::States => self.max_states,
            BudgetAxis::Terms => self.max_terms,
        }
    }

    /// True when no axis is bounded.
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none()
            && self.solver_fuel.is_none()
            && self.max_states.is_none()
            && self.max_terms.is_none()
    }

    /// The budget with every finite axis doubled (the
    /// retry-once-with-escalated-budget policy). Zero-valued axes are
    /// first raised to 1 so escalation always grants strictly more
    /// room.
    pub fn escalated(&self) -> Budget {
        fn double(v: Option<u64>) -> Option<u64> {
            v.map(|v| v.max(1).saturating_mul(2))
        }
        Budget {
            deadline_ms: double(self.deadline_ms),
            solver_fuel: double(self.solver_fuel),
            max_states: double(self.max_states),
            max_terms: double(self.max_terms),
        }
    }
}

/// A deterministic fault to inject while verifying one method.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Degrade every solver answer after the method's first `n` queries
    /// to `Answer::Unknown` (bypassing the caches, so no wrong entry is
    /// ever memoized).
    SolverUnknownAfter(usize),
    /// Report the given budget axis as exhausted at the first
    /// cooperative check, regardless of the configured [`Budget`].
    ExhaustBudget(BudgetAxis),
    /// Panic when the method executes its `n`-th symbolic state
    /// (1-based), simulating an internal verifier error. The panic is
    /// contained by the per-method isolation in `verify_all` and
    /// surfaces as `Verdict::CrashedInternal`.
    PanicAtState(usize),
}

/// A [`FaultKind`] aimed at one method by name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fault {
    /// The method the fault applies to.
    pub method: String,
    /// What to inject.
    pub kind: FaultKind,
}

/// A deterministic fault-injection plan: which faults to inject into
/// which methods. The empty plan (the default) injects nothing.
///
/// Faults fire at fixed, repeatable points — query counts and state
/// counts of the targeted method's own isolated run — so the same plan
/// produces byte-identical verdicts at any thread count.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    /// The faults, applied in order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault aimed at `method`, chainably.
    #[must_use]
    pub fn inject(mut self, method: &str, kind: FaultKind) -> FaultPlan {
        self.push(method, kind);
        self
    }

    /// Adds a fault aimed at `method`.
    pub fn push(&mut self, method: &str, kind: FaultKind) {
        self.faults.push(Fault {
            method: method.to_string(),
            kind,
        });
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults aimed at `method`, in plan order.
    pub fn for_method<'p>(&'p self, method: &'p str) -> impl Iterator<Item = FaultKind> + 'p {
        self.faults
            .iter()
            .filter(move |f| f.method == method)
            .map(|f| f.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        assert!(Budget::default().is_unlimited());
        assert_eq!(Budget::default(), Budget::UNLIMITED);
    }

    #[test]
    fn escalation_doubles_and_never_stalls_at_zero() {
        let b = Budget::unlimited().with_solver_fuel(0).with_max_states(7);
        let e = b.escalated();
        assert_eq!(e.solver_fuel, Some(2));
        assert_eq!(e.max_states, Some(14));
        assert_eq!(e.deadline_ms, None);
        assert!(Budget::unlimited().escalated().is_unlimited());
    }

    #[test]
    fn fault_plans_filter_by_method() {
        let mut plan = FaultPlan::none();
        assert!(plan.is_empty());
        plan.push("a", FaultKind::PanicAtState(3));
        plan.push("b", FaultKind::SolverUnknownAfter(0));
        plan.push("a", FaultKind::ExhaustBudget(BudgetAxis::Terms));
        let for_a: Vec<_> = plan.for_method("a").collect();
        assert_eq!(
            for_a,
            vec![
                FaultKind::PanicAtState(3),
                FaultKind::ExhaustBudget(BudgetAxis::Terms)
            ]
        );
        assert_eq!(plan.for_method("c").count(), 0);
    }
}
