//! Proof-failure diagnostics: the structured [`FailureReport`]
//! attached to `Verdict::Failed`/`Verdict::Unknown`, the top-k
//! most-expensive-query log that feeds it, and the order-insensitive
//! path-condition hash used to correlate solver-query trace events.
//!
//! Everything here is deterministic: costs are DPLL branches (never
//! wall time), the query log breaks ties by arrival order, and the
//! path-condition hash is invariant under condition reordering — so
//! reports and trace events are bit-identical at any thread count.

use crate::smt::Answer;
use crate::sym::TermId;
use std::fmt;

/// How many hot queries a [`FailureReport`] retains.
pub const HOT_QUERY_LIMIT: usize = 5;

/// One solver query's cost record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryCost {
    /// What was being checked (obligation description or query site).
    pub description: String,
    /// DPLL branches this query burned (0 for cache hits).
    pub fuel: u64,
    /// Whether the query-cache answered it.
    pub cache_hit: bool,
    /// Conflict clauses the solver learned during this query (0 for
    /// cache hits and satisfiable leaves).
    pub learned: u64,
    /// Order-insensitive hash of the normalized path condition + goal
    /// (see [`pc_hash`]) — correlates the record with trace events.
    pub pc_hash: u64,
    /// The solver's answer.
    pub answer: Answer,
}

/// The structured diagnostics attached to a non-`Verified` verdict:
/// what failed first, the symbolic context it failed in, and where the
/// solver effort went.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FailureReport {
    /// The method the verdict belongs to.
    pub method: String,
    /// The first failing obligation's description, or the
    /// budget-exhaustion detail when the run was truncated.
    pub first_failure: String,
    /// The heap chunks in scope at the first failure, rendered
    /// (`acc(r.f, q) ↦ v`). Empty when the failure had no state (e.g.
    /// an unknown method) or the budget tripped between obligations.
    pub chunks: Vec<String>,
    /// The path condition at the first failure, rendered.
    pub path_condition: Vec<String>,
    /// The top-[`HOT_QUERY_LIMIT`] most expensive solver queries of
    /// the method, most expensive first.
    pub hot_queries: Vec<QueryCost>,
}

impl FailureReport {
    /// True when the report carries no information at all. Every
    /// `Failed`/`Unknown` verdict the verifier produces has a
    /// non-empty report (at minimum `method` + `first_failure`).
    pub fn is_empty(&self) -> bool {
        self.method.is_empty()
            && self.first_failure.is_empty()
            && self.chunks.is_empty()
            && self.path_condition.is_empty()
            && self.hot_queries.is_empty()
    }
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "failure report for {}:", self.method)?;
        writeln!(f, "  first failure: {}", self.first_failure)?;
        if !self.path_condition.is_empty() {
            writeln!(f, "  path condition:")?;
            for c in &self.path_condition {
                writeln!(f, "    {}", c)?;
            }
        }
        if !self.chunks.is_empty() {
            writeln!(f, "  heap chunks in scope:")?;
            for c in &self.chunks {
                writeln!(f, "    {}", c)?;
            }
        }
        if !self.hot_queries.is_empty() {
            writeln!(f, "  hottest solver queries:")?;
            for q in &self.hot_queries {
                writeln!(
                    f,
                    "    fuel={:<6} learned={:<3} cache_hit={:<5} [{:?}] {} (pc#{:016x})",
                    q.fuel, q.learned, q.cache_hit, q.answer, q.description, q.pc_hash
                )?;
            }
        }
        Ok(())
    }
}

/// A structured stability lint: one spec assertion's classification
/// (from [`crate::stability`]) with its rendered provenance findings —
/// each carrying a source span and, for uncovered reads, a fix hint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StabilityLint {
    /// The enclosing method.
    pub method: String,
    /// The spec site ("precondition", "postcondition", "loop
    /// invariant #k").
    pub site: String,
    /// The classification ("stable", "framed-stable", "unstable").
    pub class: String,
    /// Rendered findings ("at line:col: …" with fix hints).
    pub findings: Vec<String>,
}

impl fmt::Display for StabilityLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stability: {} of method {} is {}",
            self.site, self.method, self.class
        )?;
        for finding in &self.findings {
            write!(f, "\n  - {}", finding)?;
        }
        Ok(())
    }
}

/// A bounded log of the most expensive solver queries seen while
/// verifying one method. Cost is DPLL branches; ties keep the earlier
/// query (arrival order), so the log is deterministic.
#[derive(Debug, Default)]
pub(crate) struct QueryLog {
    entries: Vec<(u64, QueryCost)>,
    arrivals: u64,
}

impl QueryLog {
    /// Forgets everything (called at each method entry).
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.arrivals = 0;
    }

    /// Whether a query of this cost would make the log — lets callers
    /// skip building the record (descriptions, hashes) for cheap
    /// queries once the log is full.
    pub(crate) fn accepts(&self, fuel: u64) -> bool {
        self.entries.len() < HOT_QUERY_LIMIT || self.entries.iter().any(|(_, q)| q.fuel < fuel)
    }

    /// Offers a query record to the log.
    pub(crate) fn offer(&mut self, cost: QueryCost) {
        let arrival = self.arrivals;
        self.arrivals += 1;
        if self.entries.len() < HOT_QUERY_LIMIT {
            self.entries.push((arrival, cost));
            return;
        }
        // Evict the cheapest entry, breaking ties toward the latest
        // arrival (so earlier equal-cost queries survive).
        let (i, _) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (arr, q))| (q.fuel, std::cmp::Reverse(*arr)))
            .expect("log is full, hence nonempty");
        if self.entries[i].1.fuel < cost.fuel {
            self.entries[i] = (arrival, cost);
        }
    }

    /// The retained queries, most expensive first (ties in arrival
    /// order).
    pub(crate) fn top(&self) -> Vec<QueryCost> {
        let mut sorted: Vec<&(u64, QueryCost)> = self.entries.iter().collect();
        sorted.sort_by_key(|(arr, q)| (std::cmp::Reverse(q.fuel), *arr));
        sorted.into_iter().map(|(_, q)| q.clone()).collect()
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An order-insensitive hash of a path condition plus goal: each
/// conjunct is mixed independently and the mixes are summed, so two
/// queries over the same condition set (in any order) share a hash.
/// Hashes are stable within one arena (ids are hash-consed), which is
/// exactly the per-method scope trace events need.
pub fn pc_hash(pc: &[TermId], goal: TermId) -> u64 {
    let conjuncts = pc.iter().fold(0u64, |acc, id| {
        acc.wrapping_add(splitmix64(u64::from(id.raw())))
    });
    conjuncts ^ splitmix64(u64::from(goal.raw()).wrapping_add(0x5151_5151))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::TermArena;

    fn cost(fuel: u64, tag: &str) -> QueryCost {
        QueryCost {
            description: tag.to_string(),
            fuel,
            cache_hit: false,
            learned: 0,
            pc_hash: 0,
            answer: Answer::Valid,
        }
    }

    #[test]
    fn query_log_keeps_the_top_k_in_order() {
        let mut log = QueryLog::default();
        for (fuel, tag) in [
            (3, "a"),
            (9, "b"),
            (1, "c"),
            (9, "d"),
            (5, "e"),
            (7, "f"),
            (2, "g"),
        ] {
            if log.accepts(fuel) {
                log.offer(cost(fuel, tag));
            }
        }
        let tags: Vec<String> = log.top().into_iter().map(|q| q.description).collect();
        assert_eq!(tags, ["b", "d", "f", "e", "a"]);
        assert!(!log.accepts(1), "full log rejects cheap queries");
        assert!(log.accepts(100));
        log.clear();
        assert!(log.top().is_empty());
    }

    #[test]
    fn pc_hash_is_order_insensitive_but_goal_sensitive() {
        let mut arena = TermArena::new();
        let a = arena.int(1);
        let b = arena.int(2);
        let c = arena.int(3);
        let goal = arena.bool(true);
        assert_eq!(pc_hash(&[a, b, c], goal), pc_hash(&[c, a, b], goal));
        assert_ne!(pc_hash(&[a, b], goal), pc_hash(&[a, c], goal));
        assert_ne!(pc_hash(&[a, b], goal), pc_hash(&[a, b], c));
    }

    #[test]
    fn empty_report_detection() {
        assert!(FailureReport::default().is_empty());
        let r = FailureReport {
            method: "m".to_string(),
            ..FailureReport::default()
        };
        assert!(!r.is_empty());
        assert!(r.to_string().contains("failure report for m"));
    }
}
