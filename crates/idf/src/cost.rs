//! Static per-method cost prediction — the `daenerys cost` report.
//!
//! Verifying a spec costs solver work long before the solver runs: the
//! body's branching structure multiplies paths, every exhaled conjunct
//! becomes a query, and (on the stable baseline) every heap read a
//! spec makes outside `old(..)` mints a witness the backend must
//! re-scan at each interfering write. This module predicts those
//! costs from the AST and the stability lattice alone — no solver, no
//! symbolic execution — so users see *hot specs* before paying for
//! them.
//!
//! The model is deliberately simple and fully deterministic:
//!
//! * **paths** — `2^branches`, saturating at [`PATH_CAP`]: the symbolic
//!   executor forks at every `if` and the diverging corpus really is
//!   exponential (see `diverging_program`).
//! * **queries** — obligations per path (exhaled conjuncts of asserts,
//!   exhales, call pre/posts, the postcondition; loop entry +
//!   preservation; branch feasibility) times the path count.
//! * **fuel** — queries times an atom-count proxy for per-query search
//!   effort (spec reads + conjuncts + locals touched).
//! * **invalidation scans** — the stable baseline's witness re-scan
//!   volume: heap reads of *unstable* spec assertions times the body's
//!   field writes. `Stable`/`FramedStable` specs predict 0 here
//!   because the verifier's scan-exempt fast path (see
//!   [`crate::stability`]) skips their invalidation queries outright.
//!
//! Predictions are upper-bound-shaped, not exact counts: the point is
//! the *ordering* (which methods will hurt) and the *shape* (why), both
//! of which are stable under the model. The report sorts by predicted
//! fuel, descending — the first rows are the specs to destabilize,
//! simplify, or budget first.

use crate::ast::{Assertion, Expr, Method, Op, Program, Stmt};
use crate::stability::{analyze_method, StabilityClass};

/// Cap on the predicted path count (`2^branches` saturates here) so
/// pathological inputs cannot overflow the arithmetic below.
pub const PATH_CAP: u64 = 1 << 20;

/// The predicted static cost of verifying one method.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MethodCost {
    /// The method the prediction is for.
    pub method: String,
    /// Predicted solver queries across all paths.
    pub queries: u64,
    /// Predicted solver fuel (queries × per-query atom proxy) — the
    /// report's sort key.
    pub fuel: u64,
    /// Predicted witness invalidation-scan volume on the stable
    /// baseline (0 when every spec assertion is statically stable or
    /// framed-stable — the scan-exempt fast path skips them).
    pub invalidation_scans: u64,
    /// Symbolic execution paths (`2^branches`, capped).
    pub paths: u64,
    /// Predicted solver case splits per query (`2^disjunctions`,
    /// capped): each `||` in a hypothesis the solver must refute
    /// doubles its search space — the diverging corpus is exponential
    /// here, not in its (absent) `if` statements.
    pub splits: u64,
    /// `if` statements in the body (each forks the executor).
    pub branches: u64,
    /// `while` loops in the body.
    pub loops: u64,
    /// Method calls in the body (each exhales the callee pre and
    /// inhales the callee post).
    pub calls: u64,
    /// Field writes in the body (each triggers baseline invalidation
    /// scans against live witnesses).
    pub writes: u64,
    /// Heap reads across the method's spec assertions (witness mints
    /// on the stable baseline).
    pub spec_reads: u64,
    /// `acc` conjuncts across the spec (permission bookkeeping).
    pub accs: u64,
    /// The worst stability class across the method's spec assertions —
    /// the lattice position that decides the invalidation prediction.
    pub worst_class: StabilityClass,
}

impl MethodCost {
    /// True when the model predicts baseline invalidation traffic —
    /// exactly the methods `--deny-unstable` would reject.
    pub fn is_hot_unstable(&self) -> bool {
        self.worst_class == StabilityClass::Unstable && self.invalidation_scans > 0
    }
}

/// Leaf conjuncts of an assertion (each exhale of the assertion costs
/// about one solver query per conjunct).
fn conjuncts(a: &Assertion) -> u64 {
    match a {
        Assertion::Expr(_) | Assertion::Acc(..) => 1,
        Assertion::And(p, q) => conjuncts(p) + conjuncts(q),
        Assertion::Implies(_, body) => 1 + conjuncts(body),
    }
}

/// `acc` conjuncts of an assertion.
fn accs(a: &Assertion) -> u64 {
    a.acc_count() as u64
}

/// Disjunctions in an expression: each `||` in a hypothesis the solver
/// must refute doubles the case-split space.
fn expr_disjunctions(e: &Expr) -> u64 {
    match e {
        Expr::Int(_) | Expr::Bool(_) | Expr::Null | Expr::Var(_) => 0,
        Expr::Field(r, _, _) => expr_disjunctions(r),
        Expr::Old(i, _) => expr_disjunctions(i),
        Expr::Perm(r, _, _) => expr_disjunctions(r),
        Expr::Bin(op, a, b) => {
            u64::from(*op == Op::Or) + expr_disjunctions(a) + expr_disjunctions(b)
        }
        Expr::Not(a) | Expr::Neg(a) => expr_disjunctions(a),
        Expr::Cond(c, t, e) => {
            // A conditional expression splits like a disjunction.
            1 + expr_disjunctions(c) + expr_disjunctions(t) + expr_disjunctions(e)
        }
    }
}

/// Disjunctions across an assertion's pure parts.
fn disjunctions(a: &Assertion) -> u64 {
    match a {
        Assertion::Expr(e) => expr_disjunctions(e),
        Assertion::Acc(r, _, _) => expr_disjunctions(r),
        Assertion::And(p, q) => disjunctions(p) + disjunctions(q),
        Assertion::Implies(c, body) => expr_disjunctions(c) + disjunctions(body),
    }
}

/// Body-shape counters, accumulated over nested statements.
#[derive(Default)]
struct Shape {
    branches: u64,
    loops: u64,
    calls: u64,
    writes: u64,
    asserts_conjuncts: u64,
    exhale_conjuncts: u64,
    invariant_conjuncts: u64,
    disjunctions: u64,
}

fn walk(stmts: &[Stmt], shape: &mut Shape) {
    for s in stmts {
        match s {
            Stmt::If(_, t, e) => {
                shape.branches += 1;
                walk(t, shape);
                walk(e, shape);
            }
            Stmt::While(_, inv, body) => {
                shape.loops += 1;
                shape.invariant_conjuncts += conjuncts(inv);
                shape.disjunctions += disjunctions(inv);
                walk(body, shape);
            }
            Stmt::Call(..) => shape.calls += 1,
            Stmt::FieldWrite(..) => shape.writes += 1,
            Stmt::Assert(a) => {
                shape.asserts_conjuncts += conjuncts(a);
                shape.disjunctions += disjunctions(a);
            }
            Stmt::Exhale(a) => {
                shape.exhale_conjuncts += conjuncts(a);
                shape.disjunctions += disjunctions(a);
            }
            Stmt::Inhale(_) | Stmt::VarDecl(..) | Stmt::Assign(..) | Stmt::New(..) => {}
        }
    }
}

/// Predicts the static cost of one method against its program (the
/// program supplies callee contracts for `call` sites).
pub fn estimate_method(program: &Program, method: &Method) -> MethodCost {
    let mut shape = Shape::default();
    if let Some(body) = &method.body {
        walk(body, &mut shape);
    }

    // Callee contract volume: each call exhales the callee's
    // precondition and inhales (then must eventually justify) its
    // postcondition. Calls to unknown methods charge 1.
    let mut call_conjuncts = 0u64;
    if let Some(body) = &method.body {
        fn calls_of<'p>(stmts: &[Stmt], program: &'p Program, out: &mut Vec<&'p Method>) {
            for s in stmts {
                match s {
                    Stmt::Call(_, callee, _) => {
                        if let Some(m) = program.method(callee) {
                            out.push(m);
                        }
                    }
                    Stmt::If(_, t, e) => {
                        calls_of(t, program, out);
                        calls_of(e, program, out);
                    }
                    Stmt::While(_, _, b) => calls_of(b, program, out),
                    _ => {}
                }
            }
        }
        let mut callees = Vec::new();
        calls_of(body, program, &mut callees);
        for callee in callees {
            call_conjuncts += conjuncts(&callee.requires) + conjuncts(&callee.ensures);
        }
        call_conjuncts = call_conjuncts.max(shape.calls);
    }

    let paths = 1u64
        .checked_shl(u32::try_from(shape.branches).unwrap_or(u32::MAX))
        .unwrap_or(PATH_CAP)
        .min(PATH_CAP);

    // Per-path obligations: the postcondition exhale, asserts/exhales,
    // call contracts, loop entry + preservation (2× invariant), and 2
    // feasibility probes per branch.
    let per_path = conjuncts(&method.ensures)
        + shape.asserts_conjuncts
        + shape.exhale_conjuncts
        + call_conjuncts
        + 2 * shape.invariant_conjuncts
        + shape.loops;
    let queries = paths
        .saturating_mul(per_path)
        .saturating_add(2 * shape.branches);

    // Spec-side metrics from the stability lattice.
    let verdicts = analyze_method(method);
    let worst_class = verdicts
        .iter()
        .map(|v| v.class)
        .max()
        .unwrap_or(StabilityClass::Stable);
    let spec_reads = (method.requires.field_reads() + method.ensures.field_reads()) as u64 + {
        let mut inv_reads = 0u64;
        if let Some(body) = &method.body {
            fn invariant_reads(stmts: &[Stmt], out: &mut u64) {
                for s in stmts {
                    match s {
                        Stmt::While(_, inv, b) => {
                            *out += inv.field_reads() as u64;
                            invariant_reads(b, out);
                        }
                        Stmt::If(_, t, e) => {
                            invariant_reads(t, out);
                            invariant_reads(e, out);
                        }
                        _ => {}
                    }
                }
            }
            invariant_reads(body, &mut inv_reads);
        }
        inv_reads
    };
    let acc_total = accs(&method.requires) + accs(&method.ensures);

    // Baseline invalidation volume: only *unstable* assertions keep
    // their witnesses under live re-scan (stable/framed-stable specs
    // are scan-exempt), and each body field write triggers one scan
    // per live unstable witness.
    let unstable_reads: u64 = verdicts
        .iter()
        .filter(|v| v.class == StabilityClass::Unstable)
        .map(|v| {
            v.findings
                .iter()
                .filter(|f| f.kind == crate::stability::FindingKind::UncoveredRead)
                .count() as u64
        })
        .sum();
    let invalidation_scans = unstable_reads.saturating_mul(shape.writes);

    // Case splits: every `||` among the facts the solver assumes
    // (requires, invariants, asserted hypotheses) doubles the search
    // space per query — this is where the diverging corpus blows up.
    let split_sources =
        disjunctions(&method.requires) + disjunctions(&method.ensures) + shape.disjunctions;
    let splits = 1u64
        .checked_shl(u32::try_from(split_sources).unwrap_or(u32::MAX))
        .unwrap_or(PATH_CAP)
        .min(PATH_CAP);

    // Fuel proxy: per-query search effort grows with the number of
    // distinct atoms the solver must decide over, amplified by the
    // predicted case-split factor.
    let atoms = 1
        + spec_reads
        + conjuncts(&method.requires)
        + conjuncts(&method.ensures)
        + method.params.len() as u64
        + method.returns.len() as u64;
    let fuel = queries.saturating_mul(atoms).saturating_mul(splits);

    MethodCost {
        method: method.name.clone(),
        queries,
        fuel,
        invalidation_scans,
        paths,
        splits,
        branches: shape.branches,
        loops: shape.loops,
        calls: shape.calls,
        writes: shape.writes,
        spec_reads,
        accs: acc_total,
        worst_class,
    }
}

/// [`estimate_method`] over every method with a body, sorted by
/// predicted fuel descending (ties broken by method name, so the
/// report is deterministic).
pub fn estimate_program(program: &Program) -> Vec<MethodCost> {
    let mut out: Vec<MethodCost> = program
        .methods
        .iter()
        .filter(|m| m.body.is_some())
        .map(|m| estimate_method(program, m))
        .collect();
    out.sort_by(|a, b| b.fuel.cmp(&a.fuel).then_with(|| a.method.cmp(&b.method)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{chain_program, diverging_program};
    use crate::parser::parse_program;

    #[test]
    fn diverging_cost_is_exponential_in_k() {
        // `diverge`'s blow-up lives in its precondition's `||`
        // conjuncts, not in body branching — the splits column (not
        // paths) must carry the prediction.
        let costs_of = |k: usize| {
            let prog = parse_program(&diverging_program(k)).unwrap();
            estimate_program(&prog)
                .into_iter()
                .find(|c| c.method == "diverge")
                .expect("diverging corpus has a diverge method")
        };
        let c4 = costs_of(4);
        let c6 = costs_of(6);
        assert_eq!(c4.splits, 16);
        assert_eq!(c6.splits, 64);
        assert!(c6.fuel > c4.fuel, "deeper diverging predicts more fuel");
    }

    #[test]
    fn chain_cost_counts_branch_paths_and_sorts_by_fuel() {
        // `chain` is a single method whose n `if` blocks fork the
        // executor: paths = 2^n.
        let prog = parse_program(&chain_program(8)).unwrap();
        let costs = estimate_program(&prog);
        let chain = costs.iter().find(|c| c.method == "chain").unwrap();
        assert_eq!(chain.branches, 8);
        assert_eq!(chain.paths, 256);

        // The report order (fuel desc, name asc) holds across a
        // multi-method program.
        let prog = parse_program(&diverging_program(5)).unwrap();
        let costs = estimate_program(&prog);
        assert!(costs.len() > 1);
        for w in costs.windows(2) {
            assert!(
                w[0].fuel > w[1].fuel || (w[0].fuel == w[1].fuel && w[0].method < w[1].method),
                "report is sorted by fuel desc, name asc"
            );
        }
        assert_eq!(costs[0].method, "diverge", "diverge dominates the report");
    }

    #[test]
    fn stable_specs_predict_zero_invalidation_scans() {
        let src = "field val: Int
method stable_m(c: Ref) requires acc(c.val) ensures acc(c.val) && c.val == 1 { c.val := 1 }
method unstable_m(c: Ref) requires true ensures c.val == 1 { }";
        let prog = parse_program(src).unwrap();
        let costs = estimate_program(&prog);
        let stable = costs.iter().find(|c| c.method == "stable_m").unwrap();
        let unstable = costs.iter().find(|c| c.method == "unstable_m").unwrap();
        assert_eq!(stable.worst_class, StabilityClass::FramedStable);
        assert_eq!(
            stable.invalidation_scans, 0,
            "framed-stable specs are scan-exempt"
        );
        assert_eq!(unstable.worst_class, StabilityClass::Unstable);
        // No writes in the unstable body, so no scan volume either —
        // but the class still flags it.
        assert_eq!(unstable.invalidation_scans, 0);

        let src_writes = "field val: Int
method w(c: Ref, d: Ref) requires acc(c.val) && d.val > 0 ensures acc(c.val) { c.val := 1; c.val := 2 }";
        let prog = parse_program(src_writes).unwrap();
        let cost = &estimate_program(&prog)[0];
        assert_eq!(cost.worst_class, StabilityClass::Unstable);
        assert_eq!(
            cost.invalidation_scans, 2,
            "one uncovered read times two writes"
        );
    }

    #[test]
    fn bodyless_methods_are_skipped() {
        let src = "method abs(n: Int) returns (r: Int) requires n >= 0 ensures r >= n";
        let prog = parse_program(src).unwrap();
        assert!(estimate_program(&prog).is_empty());
    }
}
