//! Compilation of IDF programs to HeapLang, plus a dynamic contract
//! checker.
//!
//! This closes the loop of the reproduction: a program verified by the
//! IDF front-end is compiled to the same HeapLang the program logic and
//! interpreter understand, executed concretely, and its contract
//! re-checked dynamically. A sound verifier must never produce a method
//! that fails its dynamic contract on inputs satisfying the
//! precondition (property-tested in the integration suite).
//!
//! Representation choices:
//!
//! * an object is a tuple of one `ref` per *declared field*, nested as
//!   right-leaning pairs in declaration order;
//! * local variables are compiled to allocated cells so assignment is
//!   uniform;
//! * `inhale`/`exhale`/`assert` are ghost statements and compile to `()`;
//! * methods become (curried) recursive functions; multiple returns
//!   become tuples.

use crate::ast::{Assertion, Expr as IExpr, Method, Op, Program, Stmt};
use daenerys_heaplang::{BinOp, Expr, Heap, Loc, Val};
use std::collections::BTreeMap;
use std::fmt;

/// A compile- or run-time error of the concrete layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConcreteError(pub String);

impl fmt::Display for ConcreteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "concrete error: {}", self.0)
    }
}

impl std::error::Error for ConcreteError {}

fn err<T>(m: impl Into<String>) -> Result<T, ConcreteError> {
    Err(ConcreteError(m.into()))
}

/// Field index within the object tuple.
fn field_index(prog: &Program, field: &str) -> Option<usize> {
    prog.fields.iter().position(|(f, _)| f == field)
}

/// Projects the `i`-th component out of a right-leaning tuple of size
/// `n`.
fn project(e: Expr, i: usize, n: usize) -> Expr {
    if n == 1 {
        return e;
    }
    let mut cur = e;
    for _ in 0..i {
        cur = Expr::Snd(Box::new(cur));
    }
    if i + 1 < n {
        Expr::Fst(Box::new(cur))
    } else {
        cur
    }
}

/// Builds a right-leaning tuple.
fn tuple(mut items: Vec<Expr>) -> Expr {
    match items.len() {
        0 => Expr::unit(),
        1 => items.pop().expect("nonempty"),
        _ => {
            let rest = tuple(items.split_off(1));
            Expr::Pair(Box::new(items.pop().expect("nonempty")), Box::new(rest))
        }
    }
}

/// Compiles an IDF expression. `locals` maps variables to *cell-holding*
/// HeapLang variables (reads become loads).
fn compile_expr(prog: &Program, e: &IExpr) -> Result<Expr, ConcreteError> {
    Ok(match e {
        IExpr::Int(n) => Expr::int(*n),
        IExpr::Bool(b) => Expr::bool(*b),
        // `null` compiles to an inert unit placeholder: it may be stored
        // and overwritten but never dereferenced or compared at runtime.
        IExpr::Null => Expr::unit(),
        IExpr::Var(x) => Expr::load(Expr::var(x)),
        IExpr::Field(recv, f, _) => {
            let i = match field_index(prog, f) {
                Some(i) => i,
                None => return err(format!("unknown field {}", f)),
            };
            let obj = compile_expr(prog, recv)?;
            Expr::load(project(obj, i, prog.fields.len()))
        }
        IExpr::Old(..) => return err("old() is specification-only"),
        IExpr::Perm(..) => return err("perm() is specification-only"),
        IExpr::Bin(op, a, b) => {
            let ca = compile_expr(prog, a)?;
            let cb = compile_expr(prog, b)?;
            let hop = match op {
                Op::Add => BinOp::Add,
                Op::Sub => BinOp::Sub,
                Op::Mul => BinOp::Mul,
                Op::Div => BinOp::Div,
                Op::Eq => BinOp::Eq,
                Op::Ne => BinOp::Ne,
                Op::Lt => BinOp::Lt,
                Op::Le => BinOp::Le,
                Op::Gt => BinOp::Gt,
                Op::Ge => BinOp::Ge,
                Op::And => BinOp::And,
                Op::Or => BinOp::Or,
            };
            Expr::binop(hop, ca, cb)
        }
        IExpr::Not(a) => Expr::UnOp(
            daenerys_heaplang::UnOp::Not,
            Box::new(compile_expr(prog, a)?),
        ),
        IExpr::Neg(a) => Expr::UnOp(
            daenerys_heaplang::UnOp::Neg,
            Box::new(compile_expr(prog, a)?),
        ),
        IExpr::Cond(c, t, e2) => Expr::ite(
            compile_expr(prog, c)?,
            compile_expr(prog, t)?,
            compile_expr(prog, e2)?,
        ),
    })
}

/// Compiles a statement list into an expression ending in `()`.
fn compile_stmts(prog: &Program, stmts: &[Stmt]) -> Result<Expr, ConcreteError> {
    let mut acc = Expr::unit();
    for s in stmts.iter().rev() {
        let cur = compile_stmt(prog, s, acc)?;
        acc = cur;
    }
    Ok(acc)
}

fn compile_stmt(prog: &Program, s: &Stmt, rest: Expr) -> Result<Expr, ConcreteError> {
    Ok(match s {
        Stmt::VarDecl(x, _, e) => Expr::let_(x, Expr::alloc(compile_expr(prog, e)?), rest),
        Stmt::Assign(x, e) => Expr::seq(Expr::store(Expr::var(x), compile_expr(prog, e)?), rest),
        Stmt::FieldWrite(recv, f, e) => {
            let i = match field_index(prog, f) {
                Some(i) => i,
                None => return err(format!("unknown field {}", f)),
            };
            let obj = compile_expr(prog, recv)?;
            Expr::seq(
                Expr::store(project(obj, i, prog.fields.len()), compile_expr(prog, e)?),
                rest,
            )
        }
        Stmt::New(x, inits) => {
            let mut cells = Vec::new();
            for (f, _) in &prog.fields {
                let init = inits
                    .iter()
                    .find(|(g, _)| g == f)
                    .map(|(_, e)| compile_expr(prog, e))
                    .transpose()?
                    .unwrap_or_else(|| Expr::int(0));
                cells.push(Expr::alloc(init));
            }
            // `x` is an already-declared variable cell (parameter,
            // return, or local); assign rather than shadow, so the
            // binding remains visible to the method's return reads.
            Expr::seq(Expr::store(Expr::var(x), tuple(cells)), rest)
        }
        Stmt::Inhale(_) | Stmt::Exhale(_) | Stmt::Assert(_) => Expr::seq(Expr::unit(), rest),
        Stmt::If(c, t, e) => Expr::seq(
            Expr::ite(
                compile_expr(prog, c)?,
                compile_stmts(prog, t)?,
                compile_stmts(prog, e)?,
            ),
            rest,
        ),
        Stmt::While(c, _, body) => {
            // (rec loop _ := if c then (body; loop ()) else ()) ()
            let loop_body = Expr::ite(
                compile_expr(prog, c)?,
                Expr::seq(
                    compile_stmts(prog, body)?,
                    Expr::app(Expr::var("__loop"), Expr::unit()),
                ),
                Expr::unit(),
            );
            Expr::seq(
                Expr::app(Expr::rec("__loop", "_", loop_body), Expr::unit()),
                rest,
            )
        }
        Stmt::Call(targets, m, args) => {
            let callee = match prog.method(m) {
                Some(c) => c,
                None => return err(format!("unknown method {}", m)),
            };
            let mut call = Expr::var(&mangled(m));
            for a in args {
                call = Expr::app(call, compile_expr(prog, a)?);
            }
            if callee.params.is_empty() {
                call = Expr::app(call, Expr::unit());
            }
            match targets.len() {
                0 => Expr::seq(call, rest),
                1 => Expr::seq(Expr::store(Expr::var(&targets[0]), call), rest),
                n => {
                    let mut out = rest;
                    // Destructure the returned tuple into the targets.
                    for (i, t) in targets.iter().enumerate().rev() {
                        out = Expr::seq(
                            Expr::store(Expr::var(t), project(Expr::var("__ret"), i, n)),
                            out,
                        );
                    }
                    Expr::let_("__ret", call, out)
                }
            }
        }
    })
}

fn mangled(m: &str) -> String {
    format!("__m_{}", m)
}

/// Compiles a method to a HeapLang function value expression.
///
/// The function takes the parameters curried (or `()` when there are
/// none) and returns the tuple of out-parameters.
///
/// # Errors
///
/// Returns [`ConcreteError`] for spec-only constructs in code positions.
pub fn compile_method(prog: &Program, m: &Method) -> Result<Expr, ConcreteError> {
    let body_stmts = match &m.body {
        Some(b) => b,
        None => return err(format!("method {} has no body", m.name)),
    };
    // Body: allocate cells for params (so they are assignable) and
    // returns, run, read out the returns.
    let ret_reads: Vec<Expr> = m
        .returns
        .iter()
        .map(|(r, _)| Expr::load(Expr::var(r)))
        .collect();
    let mut inner = compile_stmts(prog, body_stmts)?;
    inner = Expr::seq(inner, tuple(ret_reads));
    for (r, _) in m.returns.iter().rev() {
        inner = Expr::let_(r, Expr::alloc(Expr::int(0)), inner);
    }
    // Rebind each parameter to a cell holding it.
    for (p, _) in m.params.iter().rev() {
        inner = Expr::let_(p, Expr::alloc(Expr::var(&format!("__arg_{}", p))), inner);
    }
    // Curry parameters.
    let mut f = inner;
    if m.params.is_empty() {
        f = Expr::lam("_", f);
    } else {
        for (p, _) in m.params.iter().rev() {
            f = Expr::lam(&format!("__arg_{}", p), f);
        }
    }
    Ok(f)
}

/// Compiles a whole program into a HeapLang expression that binds every
/// method (in dependency-friendly declaration order) around `main_call`.
///
/// # Errors
///
/// Returns [`ConcreteError`] for spec-only constructs in code positions.
pub fn compile_program(prog: &Program, main_call: Expr) -> Result<Expr, ConcreteError> {
    let mut out = main_call;
    for m in prog.methods.iter().rev() {
        if m.body.is_some() {
            let f = compile_method(prog, m)?;
            out = Expr::let_(&mangled(&m.name), f, out);
        }
    }
    Ok(out)
}

/// A concrete runtime object: its field cells.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConcreteObj {
    /// One location per declared field, in declaration order.
    pub cells: Vec<Loc>,
}

/// Concrete argument values for running a compiled method.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConcreteVal {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An object (by field cells).
    Obj(ConcreteObj),
}

impl ConcreteVal {
    fn to_heaplang(&self) -> Val {
        match self {
            ConcreteVal::Int(n) => Val::int(*n),
            ConcreteVal::Bool(b) => Val::bool(*b),
            ConcreteVal::Obj(o) => {
                let mut items: Vec<Val> = o.cells.iter().map(|l| Val::loc(*l)).collect();
                // Right-leaning tuple of locs.
                let mut v = items.pop().expect("object has fields");
                while let Some(prev) = items.pop() {
                    v = Val::Pair(Box::new(prev), Box::new(v));
                }
                v
            }
        }
    }
}

/// Evaluates a *specification* expression concretely against an
/// environment and heaps (current and old).
///
/// # Errors
///
/// Returns [`ConcreteError`] on unbound variables or type confusion.
pub fn eval_spec(
    prog: &Program,
    e: &IExpr,
    env: &BTreeMap<String, ConcreteVal>,
    heap: &Heap,
    old_heap: &Heap,
) -> Result<ConcreteVal, ConcreteError> {
    Ok(match e {
        IExpr::Int(n) => ConcreteVal::Int(*n),
        IExpr::Bool(b) => ConcreteVal::Bool(*b),
        IExpr::Null => return err("null in concrete spec"),
        IExpr::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| ConcreteError(format!("unbound {}", x)))?,
        IExpr::Field(recv, f, _) => {
            let obj = match eval_spec(prog, recv, env, heap, old_heap)? {
                ConcreteVal::Obj(o) => o,
                v => return err(format!("field read on non-object {:?}", v)),
            };
            let i = field_index(prog, f)
                .ok_or_else(|| ConcreteError(format!("unknown field {}", f)))?;
            let l = obj.cells[i];
            match heap.get(l) {
                Some(Val::Lit(daenerys_heaplang::Lit::Int(n))) => ConcreteVal::Int(*n),
                Some(Val::Lit(daenerys_heaplang::Lit::Bool(b))) => ConcreteVal::Bool(*b),
                other => return err(format!("unexpected cell content {:?}", other)),
            }
        }
        IExpr::Old(inner, _) => eval_spec(prog, inner, env, old_heap, old_heap)?,
        IExpr::Perm(..) => return err("perm() has no concrete value"),
        IExpr::Bin(op, a, b) => {
            let va = eval_spec(prog, a, env, heap, old_heap)?;
            let vb = eval_spec(prog, b, env, heap, old_heap)?;
            match (op, va, vb) {
                (Op::Add, ConcreteVal::Int(x), ConcreteVal::Int(y)) => {
                    ConcreteVal::Int(x.wrapping_add(y))
                }
                (Op::Sub, ConcreteVal::Int(x), ConcreteVal::Int(y)) => {
                    ConcreteVal::Int(x.wrapping_sub(y))
                }
                (Op::Mul, ConcreteVal::Int(x), ConcreteVal::Int(y)) => {
                    ConcreteVal::Int(x.wrapping_mul(y))
                }
                (Op::Div, ConcreteVal::Int(x), ConcreteVal::Int(y)) if y != 0 => {
                    ConcreteVal::Int(x / y)
                }
                (Op::Eq, x, y) => ConcreteVal::Bool(x == y),
                (Op::Ne, x, y) => ConcreteVal::Bool(x != y),
                (Op::Lt, ConcreteVal::Int(x), ConcreteVal::Int(y)) => ConcreteVal::Bool(x < y),
                (Op::Le, ConcreteVal::Int(x), ConcreteVal::Int(y)) => ConcreteVal::Bool(x <= y),
                (Op::Gt, ConcreteVal::Int(x), ConcreteVal::Int(y)) => ConcreteVal::Bool(x > y),
                (Op::Ge, ConcreteVal::Int(x), ConcreteVal::Int(y)) => ConcreteVal::Bool(x >= y),
                (Op::And, ConcreteVal::Bool(x), ConcreteVal::Bool(y)) => ConcreteVal::Bool(x && y),
                (Op::Or, ConcreteVal::Bool(x), ConcreteVal::Bool(y)) => ConcreteVal::Bool(x || y),
                (op, x, y) => return err(format!("type error: {:?} on {:?}, {:?}", op, x, y)),
            }
        }
        IExpr::Not(a) => match eval_spec(prog, a, env, heap, old_heap)? {
            ConcreteVal::Bool(b) => ConcreteVal::Bool(!b),
            v => return err(format!("not on {:?}", v)),
        },
        IExpr::Neg(a) => match eval_spec(prog, a, env, heap, old_heap)? {
            ConcreteVal::Int(n) => ConcreteVal::Int(-n),
            v => return err(format!("neg on {:?}", v)),
        },
        IExpr::Cond(c, t, e2) => match eval_spec(prog, c, env, heap, old_heap)? {
            ConcreteVal::Bool(true) => eval_spec(prog, t, env, heap, old_heap)?,
            ConcreteVal::Bool(false) => eval_spec(prog, e2, env, heap, old_heap)?,
            v => return err(format!("condition on {:?}", v)),
        },
    })
}

/// Evaluates the *pure part* of a spec assertion concretely (permission
/// conjuncts are skipped: the dynamic checker checks values, the static
/// verifier checks permissions).
///
/// # Errors
///
/// Propagates [`ConcreteError`] from expression evaluation.
pub fn spec_holds(
    prog: &Program,
    a: &Assertion,
    env: &BTreeMap<String, ConcreteVal>,
    heap: &Heap,
    old_heap: &Heap,
) -> Result<bool, ConcreteError> {
    Ok(match a {
        Assertion::Expr(e) => {
            // Skip perm() comparisons: static-only.
            if contains_perm(e) {
                true
            } else {
                match eval_spec(prog, e, env, heap, old_heap)? {
                    ConcreteVal::Bool(b) => b,
                    v => return err(format!("non-boolean spec {:?}", v)),
                }
            }
        }
        Assertion::Acc(..) => true,
        Assertion::And(p, q) => {
            spec_holds(prog, p, env, heap, old_heap)? && spec_holds(prog, q, env, heap, old_heap)?
        }
        Assertion::Implies(c, body) => match eval_spec(prog, c, env, heap, old_heap)? {
            ConcreteVal::Bool(true) => spec_holds(prog, body, env, heap, old_heap)?,
            ConcreteVal::Bool(false) => true,
            v => return err(format!("non-boolean condition {:?}", v)),
        },
    })
}

fn contains_perm(e: &IExpr) -> bool {
    match e {
        IExpr::Perm(..) => true,
        IExpr::Int(_) | IExpr::Bool(_) | IExpr::Null | IExpr::Var(_) => false,
        IExpr::Field(a, _, _) | IExpr::Old(a, _) | IExpr::Not(a) | IExpr::Neg(a) => {
            contains_perm(a)
        }
        IExpr::Bin(_, a, b) => contains_perm(a) || contains_perm(b),
        IExpr::Cond(c, t, e2) => contains_perm(c) || contains_perm(t) || contains_perm(e2),
    }
}

/// Runs a compiled method on concrete arguments and dynamically checks
/// its contract.
///
/// Returns the final heap on success.
///
/// # Errors
///
/// Returns [`ConcreteError`] when the precondition does not hold on the
/// inputs, execution fails, or the postcondition is violated — the
/// latter two must never happen for a verified method (this is the
/// end-to-end soundness check).
pub fn run_and_check(
    prog: &Program,
    name: &str,
    args: Vec<ConcreteVal>,
    mut heap: Heap,
    fuel: usize,
) -> Result<Heap, ConcreteError> {
    let method = prog
        .method(name)
        .ok_or_else(|| ConcreteError(format!("unknown method {}", name)))?;
    if method.params.len() != args.len() {
        return err("arity mismatch");
    }
    let mut env: BTreeMap<String, ConcreteVal> = BTreeMap::new();
    for ((p, _), a) in method.params.iter().zip(args.iter()) {
        env.insert(p.clone(), a.clone());
    }
    let old_heap = heap.clone();
    if !spec_holds(prog, &method.requires, &env, &heap, &old_heap)? {
        return err("precondition does not hold on the given inputs");
    }

    // Build the call.
    let mut call = Expr::var(&mangled(name));
    for a in &args {
        call = Expr::app(call, Expr::Val(a.to_heaplang()));
    }
    if method.params.is_empty() {
        call = Expr::app(call, Expr::unit());
    }
    let program_expr = compile_program(prog, call)?;

    // Execute.
    let mut cur = program_expr;
    let mut steps = 0;
    loop {
        match daenerys_heaplang::step(&cur, &mut heap) {
            Ok(out) => {
                if !out.forked.is_empty() {
                    return err("fork in sequential contract check");
                }
                cur = out.expr;
            }
            Err(daenerys_heaplang::StepError::IsValue) => break,
            Err(e) => return err(format!("execution stuck: {}", e)),
        }
        steps += 1;
        if steps > fuel {
            return err("out of fuel");
        }
    }
    let result = cur.as_val().expect("loop exits on value").clone();

    // Bind return values for the postcondition.
    let rets = match method.returns.len() {
        0 => Vec::new(),
        1 => vec![result],
        n => {
            let mut items = Vec::new();
            let mut v = result;
            for _ in 0..n - 1 {
                match v {
                    Val::Pair(a, b) => {
                        items.push(*a);
                        v = *b;
                    }
                    other => return err(format!("expected tuple result, got {}", other)),
                }
            }
            items.push(v);
            items
        }
    };
    for ((r, ty), v) in method.returns.iter().zip(rets) {
        let cv = match (ty, &v) {
            (crate::ast::Type::Int, Val::Lit(daenerys_heaplang::Lit::Int(n))) => {
                ConcreteVal::Int(*n)
            }
            (crate::ast::Type::Bool, Val::Lit(daenerys_heaplang::Lit::Bool(b))) => {
                ConcreteVal::Bool(*b)
            }
            (crate::ast::Type::Ref, _) => match object_from_val(prog, &v) {
                Some(o) => ConcreteVal::Obj(o),
                None => return err("unrecognized object return"),
            },
            (_, other) => return err(format!("unsupported return value {}", other)),
        };
        env.insert(r.clone(), cv);
    }

    if !spec_holds(prog, &method.ensures, &env, &heap, &old_heap)? {
        return err("postcondition violated at runtime");
    }
    Ok(heap)
}

fn object_from_val(prog: &Program, v: &Val) -> Option<ConcreteObj> {
    let n = prog.fields.len();
    let mut cells = Vec::with_capacity(n);
    let mut cur = v.clone();
    for i in 0..n {
        if i + 1 < n {
            match cur {
                Val::Pair(a, b) => {
                    cells.push(a.as_loc()?);
                    cur = *b;
                }
                _ => return None,
            }
        } else {
            cells.push(cur.as_loc()?);
        }
    }
    Some(ConcreteObj { cells })
}

/// Allocates a concrete object with the given field values.
pub fn alloc_object(prog: &Program, heap: &mut Heap, values: &[i64]) -> ConcreteObj {
    let mut cells = Vec::new();
    for (i, _) in prog.fields.iter().enumerate() {
        let v = values.get(i).copied().unwrap_or(0);
        cells.push(heap.alloc(Val::int(v)));
    }
    ConcreteObj { cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const SRC: &str = r#"
        field val: Int
        method inc(c: Ref)
          requires acc(c.val)
          ensures acc(c.val) && c.val == old(c.val) + 1
        {
          c.val := c.val + 1
        }
        method sum_to(n: Int) returns (s: Int)
          requires n >= 0
          ensures s * 2 == n * (n + 1)
        {
          var i: Int := 0;
          s := 0;
          while (i < n)
            invariant 0 <= i && i <= n && s * 2 == i * (i + 1)
          {
            i := i + 1;
            s := s + i
          }
        }
    "#;

    #[test]
    fn compiled_inc_runs_and_meets_contract() {
        let prog = parse_program(SRC).unwrap();
        let mut heap = Heap::new();
        let obj = alloc_object(&prog, &mut heap, &[41]);
        let final_heap = run_and_check(
            &prog,
            "inc",
            vec![ConcreteVal::Obj(obj.clone())],
            heap,
            100_000,
        )
        .unwrap();
        assert_eq!(final_heap.get(obj.cells[0]), Some(&Val::int(42)));
    }

    #[test]
    fn compiled_loop_runs_and_meets_contract() {
        let prog = parse_program(SRC).unwrap();
        for n in 0..8 {
            let heap = Heap::new();
            run_and_check(&prog, "sum_to", vec![ConcreteVal::Int(n)], heap, 1_000_000)
                .unwrap_or_else(|e| panic!("n={}: {}", n, e));
        }
    }

    #[test]
    fn precondition_violations_are_reported() {
        let prog = parse_program(SRC).unwrap();
        let heap = Heap::new();
        let e = run_and_check(&prog, "sum_to", vec![ConcreteVal::Int(-1)], heap, 1000).unwrap_err();
        assert!(e.0.contains("precondition"));
    }

    #[test]
    fn dynamic_checker_catches_wrong_contracts() {
        // An unverifiable (wrong) contract must be caught dynamically
        // too — the two oracles agree.
        let src = r#"
            field val: Int
            method broken(c: Ref)
              requires acc(c.val)
              ensures acc(c.val) && c.val == old(c.val) + 2
            {
              c.val := c.val + 1
            }
        "#;
        let prog = parse_program(src).unwrap();
        let mut heap = Heap::new();
        let obj = alloc_object(&prog, &mut heap, &[0]);
        let e =
            run_and_check(&prog, "broken", vec![ConcreteVal::Obj(obj)], heap, 10_000).unwrap_err();
        assert!(e.0.contains("postcondition"));
    }

    #[test]
    fn calls_compile() {
        let src = r#"
            field val: Int
            method add(c: Ref, n: Int)
              requires acc(c.val)
              ensures acc(c.val) && c.val == old(c.val) + n
            {
              c.val := c.val + n
            }
            method twice(c: Ref)
              requires acc(c.val)
              ensures acc(c.val) && c.val == old(c.val) + 4
            {
              call add(c, 2);
              call add(c, 2)
            }
        "#;
        let prog = parse_program(src).unwrap();
        let mut heap = Heap::new();
        let obj = alloc_object(&prog, &mut heap, &[10]);
        let final_heap = run_and_check(
            &prog,
            "twice",
            vec![ConcreteVal::Obj(obj.clone())],
            heap,
            100_000,
        )
        .unwrap();
        assert_eq!(final_heap.get(obj.cells[0]), Some(&Val::int(14)));
    }
}
