//! The persistent incremental verdict store (`--cache-dir`).
//!
//! The store maps method keys to the [`Fingerprint`] they were last
//! verified under and the resulting [`Verdict`]. Only *definite*
//! verdicts are persisted — `Verified` (with
//! [`VerifyStats::normalized`] statistics) and `Failed` — never
//! `Unknown` or `CrashedInternal`: an indefinite answer must be
//! retried on the next run, not replayed from disk.
//!
//! Two on-disk formats are supported, auto-detected by
//! [`VerdictStore::open`] and interconvertible via
//! [`VerdictStore::migrate`]:
//!
//! - **`DAES1`** (the default for new stores): 16 shard files
//!   (`verdicts-0.daes` … `verdicts-f.daes`), selected by the top
//!   nibble of the method key's name fingerprint — the shard must be
//!   stable under *verdict* fingerprint churn or last-wins replay
//!   would split one method's history across files. Each shard is a
//!   checksummed fixed-layout header followed by length-prefixed
//!   records with fixed-width little-endian integer fields and a
//!   per-record checksum; loading streams the file once, skips
//!   corrupt records with a count, and treats a cut-off tail (crash
//!   mid-append) as truncation, never poison. Saving rewrites every
//!   shard compacted (tombstones and superseded records dropped)
//!   through temp-file renames.
//! - **JSONL** (`verdicts.jsonl`, the legacy/import-export format):
//!   one zero-dependency JSON object per line (read back with
//!   [`daenerys_obs::parse_json`]), later lines winning over earlier
//!   ones, corrupt lines skipped with a count.
//!
//! Either way, durable appends ([`VerdictStore::record_durable`])
//! accumulate *dead weight* — superseded records and evict tombstones
//! that replay discards. The store tracks that debt (including debt
//! inherited from disk at open) and compacts automatically once it
//! exceeds the live entry count, so a long-lived daemon's store file
//! stops growing without bound between explicit saves.
//!
//! The store directory also carries the method → callee-spec
//! dependency graph ([`crate::depgraph::DepGraph`], its own
//! format-independent file) used for transitive spec-dirtiness.

use crate::depgraph::DepGraph;
use crate::diag::FailureReport;
use crate::exec::{Obligation, Verdict, VerifyStats};
use crate::fingerprint::Fingerprint;
use crate::smt::Answer;
use daenerys_obs::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One stored method verdict.
#[derive(Clone, PartialEq, Debug)]
pub struct StoredVerdict {
    /// The fingerprint the verdict was computed under.
    pub fingerprint: Fingerprint,
    /// The verdict (`Verified` with normalized stats, or `Failed`).
    pub verdict: Verdict,
}

/// The on-disk encoding of a [`VerdictStore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreFormat {
    /// The sharded binary format (default for new stores).
    Daes1,
    /// The legacy line-JSON format (import/export path).
    Jsonl,
}

impl StoreFormat {
    /// Parses a `--store-format` value (`daes1` | `jsonl`).
    pub fn parse(s: &str) -> Option<StoreFormat> {
        match s {
            "daes1" => Some(StoreFormat::Daes1),
            "jsonl" => Some(StoreFormat::Jsonl),
            _ => None,
        }
    }

    /// The flag spelling (`daes1` | `jsonl`).
    pub fn name(self) -> &'static str {
        match self {
            StoreFormat::Daes1 => "daes1",
            StoreFormat::Jsonl => "jsonl",
        }
    }
}

/// The persistent verdict store backing `--cache-dir`.
#[derive(Clone, PartialEq, Debug)]
pub struct VerdictStore {
    dir: PathBuf,
    format: StoreFormat,
    entries: BTreeMap<String, StoredVerdict>,
    /// Undecodable records skipped during the last
    /// [`VerdictStore::open`] (surfaced as the `store.corrupt_lines`
    /// obs counter and in the daemon's metrics snapshot). A truncated
    /// final record — the signature of a crash mid-append — counts
    /// here too, but is additionally flagged by `truncated_tail`.
    corrupt_lines: usize,
    /// True when the file's final record was cut off mid-write: the
    /// expected wreckage of a SIGKILL between `write` and completion,
    /// worth a warning but never grounds to poison the rest of the
    /// store.
    truncated_tail: bool,
    /// Dead weight in the on-disk log: records replay discarded at
    /// open plus durable appends that superseded or tombstoned an
    /// entry since. Once this exceeds the live entry count,
    /// [`VerdictStore::record_durable`] compacts.
    dead_records: usize,
    /// The persisted dependency graph riding along in the same
    /// directory (see [`crate::depgraph`]).
    graph: DepGraph,
    graph_changed: bool,
}

/// Minimum dead-weight before auto-compaction triggers, so tiny stores
/// are not rewritten on every other append.
const COMPACT_MIN_DEAD: usize = 64;

impl VerdictStore {
    /// The JSONL store file name within the cache directory.
    pub const FILE_NAME: &'static str = "verdicts.jsonl";

    /// Number of `DAES1` shard files.
    pub const SHARD_COUNT: usize = 16;

    /// The `DAES1` shard file name for shard index `i` (`0..16`).
    pub fn shard_file_name(i: usize) -> String {
        format!("verdicts-{:x}.daes", i)
    }

    /// Opens (or initializes) the store under `dir`, auto-detecting
    /// the format: `DAES1` shards win over a legacy `verdicts.jsonl`;
    /// a fresh directory starts as `DAES1`. Missing files and
    /// unreadable/corrupt records load as absent entries — a damaged
    /// store costs re-verification, never a wrong verdict.
    pub fn open(dir: &Path) -> VerdictStore {
        Self::open_with(dir, Self::detect_format(dir))
    }

    /// [`VerdictStore::open`] with the format forced instead of
    /// detected (only that format's files are read).
    pub fn open_with(dir: &Path, format: StoreFormat) -> VerdictStore {
        let mut store = VerdictStore {
            dir: dir.to_path_buf(),
            format,
            entries: BTreeMap::new(),
            corrupt_lines: 0,
            truncated_tail: false,
            dead_records: 0,
            graph: DepGraph::load(dir),
            graph_changed: false,
        };
        match format {
            StoreFormat::Jsonl => store.load_jsonl(),
            StoreFormat::Daes1 => store.load_daes1(),
        }
        store
    }

    /// The format files present under `dir` resolve to: shard files →
    /// `DAES1`, a lone `verdicts.jsonl` → JSONL, neither → `DAES1`.
    pub fn detect_format(dir: &Path) -> StoreFormat {
        let any_shard = (0..Self::SHARD_COUNT).any(|i| dir.join(Self::shard_file_name(i)).exists());
        if any_shard {
            StoreFormat::Daes1
        } else if dir.join(Self::FILE_NAME).exists() {
            StoreFormat::Jsonl
        } else {
            StoreFormat::Daes1
        }
    }

    /// The format this store reads and writes.
    pub fn format(&self) -> StoreFormat {
        self.format
    }

    /// The cache directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rewrites the store under `dir` in format `to` (a compaction
    /// when the formats already agree), removing the other format's
    /// files afterwards so detection is unambiguous. Verdicts survive
    /// bit-identically; the dependency graph file is format-independent
    /// and untouched. Returns the migrated store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the target files or removing
    /// the source files.
    pub fn migrate(dir: &Path, to: StoreFormat) -> io::Result<VerdictStore> {
        let mut store = Self::open(dir);
        let from = store.format;
        store.format = to;
        store.save()?;
        store.dead_records = 0;
        if from != to {
            match from {
                StoreFormat::Jsonl => {
                    let _ = fs::remove_file(dir.join(Self::FILE_NAME));
                }
                StoreFormat::Daes1 => {
                    for i in 0..Self::SHARD_COUNT {
                        let _ = fs::remove_file(dir.join(Self::shard_file_name(i)));
                    }
                }
            }
        }
        Ok(store)
    }

    fn load_jsonl(&mut self) {
        let path = self.dir.join(Self::FILE_NAME);
        let mut replayed = 0usize;
        if let Ok(text) = fs::read_to_string(&path) {
            let complete_tail = text.is_empty() || text.ends_with('\n');
            let last = text.lines().count().saturating_sub(1);
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match decode_any_line(line) {
                    Some(Line::Put(name, stored)) => {
                        replayed += 1;
                        self.entries.insert(name, stored);
                    }
                    Some(Line::Evict(name)) => {
                        replayed += 1;
                        self.entries.remove(&name);
                    }
                    None => {
                        self.corrupt_lines += 1;
                        // A final line with no newline that fails to
                        // decode is a crash mid-append: skip it with a
                        // counted warning instead of treating the
                        // store as damaged.
                        if i == last && !complete_tail {
                            self.truncated_tail = true;
                        }
                    }
                }
            }
        }
        self.dead_records = replayed.saturating_sub(self.entries.len());
    }

    fn load_daes1(&mut self) {
        let mut replayed = 0usize;
        for shard in 0..Self::SHARD_COUNT {
            let path = self.dir.join(Self::shard_file_name(shard));
            let Ok(bytes) = fs::read(&path) else {
                continue;
            };
            match decode_shard(&bytes, shard, &mut self.entries, &mut replayed) {
                ShardEnd::Clean => {}
                ShardEnd::Corrupt(n) => self.corrupt_lines += n,
                ShardEnd::Truncated(n) => {
                    self.corrupt_lines += n;
                    self.truncated_tail = true;
                }
            }
        }
        self.dead_records = replayed.saturating_sub(self.entries.len());
    }

    /// Undecodable records skipped by the last [`VerdictStore::open`].
    pub fn corrupt_lines(&self) -> usize {
        self.corrupt_lines
    }

    /// True when a file ended in a record cut off mid-write (crash
    /// mid-append) that was skipped on load.
    pub fn truncated_tail(&self) -> bool {
        self.truncated_tail
    }

    /// Dead records currently sitting in the on-disk log (superseded
    /// or tombstoned); the auto-compaction pressure gauge.
    pub fn dead_records(&self) -> usize {
        self.dead_records
    }

    /// The stored verdict for `method`, iff it was recorded under
    /// exactly this fingerprint.
    pub fn lookup(&self, method: &str, fingerprint: Fingerprint) -> Option<&Verdict> {
        let stored = self.entries.get(method)?;
        (stored.fingerprint == fingerprint).then_some(&stored.verdict)
    }

    /// Records a verdict. Definite verdicts (`Verified`/`Failed`)
    /// replace the method's entry and return `true`; `Unknown` and
    /// `CrashedInternal` *remove* any stale entry (its fingerprint can
    /// no longer be trusted to describe the outcome) and return
    /// `false`.
    pub fn record(&mut self, method: &str, fingerprint: Fingerprint, verdict: &Verdict) -> bool {
        match verdict {
            Verdict::Verified(stats) => {
                self.entries.insert(
                    method.to_string(),
                    StoredVerdict {
                        fingerprint,
                        verdict: Verdict::Verified(stats.normalized()),
                    },
                );
                true
            }
            Verdict::Failed { .. } => {
                self.entries.insert(
                    method.to_string(),
                    StoredVerdict {
                        fingerprint,
                        verdict: verdict.clone(),
                    },
                );
                true
            }
            Verdict::Unknown { .. } | Verdict::CrashedInternal { .. } => {
                self.entries.remove(method);
                false
            }
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The persisted dependency graph (empty when the directory has
    /// none yet).
    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }

    /// Upserts the current program's nodes into the persisted graph
    /// (see [`DepGraph::absorb`]); [`VerdictStore::save`] and
    /// [`VerdictStore::persist_graph`] write it back only when
    /// something actually changed.
    pub fn absorb_graph(&mut self, cur: &DepGraph) {
        if self.graph.absorb(cur) {
            self.graph_changed = true;
        }
    }

    /// Writes the dependency graph file if it changed since load — the
    /// shared-store path's end-of-run hook (the owned path goes
    /// through [`VerdictStore::save`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the graph file.
    pub fn persist_graph(&mut self) -> io::Result<()> {
        if self.graph_changed {
            self.graph.save(&self.dir)?;
            self.graph_changed = false;
        }
        Ok(())
    }

    /// Records a verdict (exactly as [`VerdictStore::record`]) *and*
    /// appends the change to the store file immediately, flushed, so a
    /// SIGKILL'd process loses at most the verdict currently being
    /// written. Definite verdicts append their entry record;
    /// indefinite verdicts append an evict tombstone that
    /// [`VerdictStore::open`] replays last-wins. When the appended
    /// dead weight outgrows the live entries the log is compacted in
    /// place (see [`VerdictStore::save`]), so a long-lived daemon's
    /// store stops growing without bound.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or appending
    /// to the file; the in-memory entry is updated regardless.
    pub fn record_durable(
        &mut self,
        method: &str,
        fingerprint: Fingerprint,
        verdict: &Verdict,
    ) -> io::Result<bool> {
        let superseded = self.entries.contains_key(method);
        let definite = self.record(method, fingerprint, verdict);
        if superseded || !definite {
            // Either the new record buries an old one, or it *is*
            // dead weight (a tombstone).
            self.dead_records += 1;
        }
        if self.dead_records > COMPACT_MIN_DEAD.max(self.entries.len()) {
            self.save()?;
            self.dead_records = 0;
            return Ok(definite);
        }
        fs::create_dir_all(&self.dir)?;
        match self.format {
            StoreFormat::Jsonl => {
                let mut line = String::new();
                if definite {
                    let stored = self
                        .entries
                        .get(method)
                        .expect("record returned true, entry present");
                    encode_line(&mut line, method, stored);
                } else {
                    let _ = write!(
                        line,
                        "{{\"method\":\"{}\",\"verdict\":\"evict\"}}",
                        esc(method)
                    );
                }
                line.push('\n');
                append_flushed(&self.dir.join(Self::FILE_NAME), line.as_bytes(), &[])?;
            }
            StoreFormat::Daes1 => {
                let shard = shard_of(method);
                let frame = if definite {
                    let stored = self
                        .entries
                        .get(method)
                        .expect("record returned true, entry present");
                    encode_frame(RECORD_PUT, &encode_put_payload(method, stored))
                } else {
                    encode_frame(RECORD_TOMBSTONE, &encode_tombstone_payload(method))
                };
                append_flushed(
                    &self.dir.join(Self::shard_file_name(shard)),
                    &frame,
                    &shard_header(shard),
                )?;
            }
        }
        Ok(definite)
    }

    /// Writes the store back to disk, compacted (one record per live
    /// method, tombstones and superseded records dropped), atomically
    /// via temp-file renames; the dependency graph file is written
    /// too when it changed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or writing
    /// the files.
    pub fn save(&self) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        match self.format {
            StoreFormat::Jsonl => {
                let mut out = String::new();
                for (name, stored) in &self.entries {
                    encode_line(&mut out, name, stored);
                    out.push('\n');
                }
                let path = self.dir.join(Self::FILE_NAME);
                let tmp = path.with_extension("jsonl.tmp");
                fs::write(&tmp, out)?;
                fs::rename(&tmp, &path)?;
            }
            StoreFormat::Daes1 => {
                // Every shard is rewritten — including empties — so a
                // compaction truncates stale data instead of leaving
                // orphaned records in shards the surviving entries no
                // longer map to.
                let mut shards: Vec<Vec<u8>> = (0..Self::SHARD_COUNT)
                    .map(|i| shard_header(i).to_vec())
                    .collect();
                for (name, stored) in &self.entries {
                    let frame = encode_frame(RECORD_PUT, &encode_put_payload(name, stored));
                    shards[shard_of(name)].extend_from_slice(&frame);
                }
                for (i, bytes) in shards.iter().enumerate() {
                    let path = self.dir.join(Self::shard_file_name(i));
                    let tmp = path.with_extension("daes.tmp");
                    fs::write(&tmp, bytes)?;
                    fs::rename(&tmp, &path)?;
                }
            }
        }
        if self.graph_changed {
            self.graph.save(&self.dir)?;
        }
        Ok(())
    }
}

/// Appends `frame` to `path`, flushed; `header` is written first when
/// the file is new or empty (the `DAES1` shard preamble — empty for
/// JSONL).
fn append_flushed(path: &Path, frame: &[u8], header: &[u8]) -> io::Result<()> {
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if !header.is_empty() && file.metadata()?.len() == 0 {
        io::Write::write_all(&mut file, header)?;
    }
    io::Write::write_all(&mut file, frame)?;
    io::Write::flush(&mut file)
}

// ---------------------------------------------------------------------
// DAES1 binary codec.
//
// Shard header (24 bytes):
//   0..6   magic  "DAES1\0"
//   6..8   version u16 LE (currently 1)
//   8..12  shard index u32 LE
//   12..16 reserved u32 LE (0)
//   16..24 FNV-1a-64 checksum of bytes 0..16, u64 LE
//
// Record frame (16 bytes + payload):
//   0..4   payload length u32 LE
//   4      record kind (1 = put, 2 = tombstone)
//   5..8   padding (0)
//   8..16  FNV-1a-64 checksum of the payload, u64 LE
//
// Put payload: key string (u32 LE length + UTF-8 bytes), fingerprint
// hi/lo u64 LE, verdict tag u8 (0 = verified, 1 = failed), then either
// the 17 normalized stat counters (u64 LE each, STAT_KEYS order) or
// the failure obligations + report with every integer fixed-width LE
// and every string length-prefixed. Tombstone payload: the key string.
// ---------------------------------------------------------------------

const DAES_MAGIC: &[u8; 6] = b"DAES1\0";
const DAES_VERSION: u16 = 1;
const SHARD_HEADER_LEN: usize = 24;
const FRAME_HEADER_LEN: usize = 16;
const RECORD_PUT: u8 = 1;
const RECORD_TOMBSTONE: u8 = 2;
const VERDICT_VERIFIED: u8 = 0;
const VERDICT_FAILED: u8 = 1;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard a key routes to: the top nibble of the key's *name*
/// fingerprint. Sharding by the verdict fingerprint would scatter one
/// method's history (and its tombstones) across files as its
/// fingerprint churns, breaking last-wins replay.
fn shard_of(key: &str) -> usize {
    (fnv64(key.as_bytes()) >> 60) as usize
}

fn shard_header(shard: usize) -> [u8; SHARD_HEADER_LEN] {
    let mut h = [0u8; SHARD_HEADER_LEN];
    h[..6].copy_from_slice(DAES_MAGIC);
    h[6..8].copy_from_slice(&DAES_VERSION.to_le_bytes());
    h[8..12].copy_from_slice(&(shard as u32).to_le_bytes());
    // 12..16 reserved, already zero.
    let sum = fnv64(&h[..16]);
    h[16..24].copy_from_slice(&sum.to_le_bytes());
    h
}

fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_str_list(out: &mut Vec<u8>, items: &[String]) {
    put_u32(out, items.len() as u32);
    for s in items {
        put_str(out, s);
    }
}

fn answer_code(a: Answer) -> u8 {
    match a {
        Answer::Valid => 0,
        Answer::Invalid => 1,
        Answer::Unknown => 2,
    }
}

fn decode_answer_code(c: u8) -> Option<Answer> {
    match c {
        0 => Some(Answer::Valid),
        1 => Some(Answer::Invalid),
        2 => Some(Answer::Unknown),
        _ => None,
    }
}

fn encode_tombstone_payload(key: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + key.len());
    put_str(&mut out, key);
    out
}

fn encode_put_payload(key: &str, stored: &StoredVerdict) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, key);
    put_u64(&mut out, stored.fingerprint.hi);
    put_u64(&mut out, stored.fingerprint.lo);
    match &stored.verdict {
        Verdict::Verified(stats) => {
            out.push(VERDICT_VERIFIED);
            for v in stat_values(stats) {
                put_u64(&mut out, v as u64);
            }
        }
        Verdict::Failed { failures, report } => {
            out.push(VERDICT_FAILED);
            put_u32(&mut out, failures.len() as u32);
            for o in failures {
                put_str(&mut out, &o.description);
                out.push(answer_code(o.outcome));
            }
            put_str(&mut out, &report.first_failure);
            put_str_list(&mut out, &report.chunks);
            put_str_list(&mut out, &report.path_condition);
            put_u32(&mut out, report.hot_queries.len() as u32);
            for q in &report.hot_queries {
                put_str(&mut out, &q.description);
                put_u64(&mut out, q.fuel);
                out.push(u8::from(q.cache_hit));
                put_u64(&mut out, q.learned);
                put_u64(&mut out, q.pc_hash);
                out.push(answer_code(q.answer));
            }
        }
        // `record` never admits these; encode defensively as a record
        // the decoder will reject.
        Verdict::Unknown { .. } | Verdict::CrashedInternal { .. } => {
            out.push(u8::MAX);
        }
    }
    out
}

/// A bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let b = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(std::str::from_utf8(b).ok()?.to_string())
    }

    fn str_list(&mut self) -> Option<Vec<String>> {
        let n = self.u32()? as usize;
        // Each element costs at least its 4-byte length prefix: a
        // garbage count cannot allocate past the payload.
        if n > self.buf.len().saturating_sub(self.pos) / 4 {
            return None;
        }
        (0..n).map(|_| self.str()).collect()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_put_payload(payload: &[u8]) -> Option<(String, StoredVerdict)> {
    let mut r = Reader::new(payload);
    let key = r.str()?;
    let fingerprint = Fingerprint {
        hi: r.u64()?,
        lo: r.u64()?,
    };
    let verdict = match r.u8()? {
        VERDICT_VERIFIED => {
            let mut values = [0usize; 17];
            for v in &mut values {
                *v = usize::try_from(r.u64()?).ok()?;
            }
            Verdict::Verified(stats_from_values(values))
        }
        VERDICT_FAILED => {
            let n = r.u32()? as usize;
            if n > payload.len() / 5 {
                return None;
            }
            let failures = (0..n)
                .map(|_| {
                    Some(Obligation {
                        description: r.str()?,
                        outcome: decode_answer_code(r.u8()?)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?;
            let first_failure = r.str()?;
            let chunks = r.str_list()?;
            let path_condition = r.str_list()?;
            let hq = r.u32()? as usize;
            if hq > payload.len() / 30 {
                return None;
            }
            let hot_queries = (0..hq)
                .map(|_| {
                    Some(crate::diag::QueryCost {
                        description: r.str()?,
                        fuel: r.u64()?,
                        cache_hit: r.u8()? != 0,
                        learned: r.u64()?,
                        pc_hash: r.u64()?,
                        answer: decode_answer_code(r.u8()?)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?;
            Verdict::Failed {
                failures,
                report: FailureReport {
                    method: key.clone(),
                    first_failure,
                    chunks,
                    path_condition,
                    hot_queries,
                },
            }
        }
        _ => return None,
    };
    r.done().then_some((
        key,
        StoredVerdict {
            fingerprint,
            verdict,
        },
    ))
}

/// How a shard scan ended: cleanly, with `n` corrupt records skipped
/// mid-file, or with a truncated tail (`n` includes the cut-off
/// record).
enum ShardEnd {
    Clean,
    Corrupt(usize),
    Truncated(usize),
}

fn decode_shard(
    bytes: &[u8],
    shard: usize,
    entries: &mut BTreeMap<String, StoredVerdict>,
    replayed: &mut usize,
) -> ShardEnd {
    if bytes.len() < SHARD_HEADER_LEN || bytes[..SHARD_HEADER_LEN] != shard_header(shard) {
        // A shard whose very header is damaged (or belongs to another
        // index) contributes nothing: one counted skip for the file.
        return if bytes.is_empty() {
            ShardEnd::Clean
        } else {
            ShardEnd::Corrupt(1)
        };
    }
    let mut corrupt = 0usize;
    let mut pos = SHARD_HEADER_LEN;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER_LEN {
            // A frame header cut off mid-write.
            return ShardEnd::Truncated(corrupt + 1);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let kind = bytes[pos + 4];
        let sum = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8 bytes"));
        let start = pos + FRAME_HEADER_LEN;
        if len > bytes.len() - start {
            // The frame declares more payload than the file holds: the
            // classic crash-mid-append tail. Nothing after it can be
            // re-framed, so the scan stops here.
            return ShardEnd::Truncated(corrupt + 1);
        }
        let payload = &bytes[start..start + len];
        pos = start + len;
        if fnv64(payload) != sum {
            // Framing is intact, the payload is rotten: skip exactly
            // this record and keep scanning — the binary mirror of the
            // JSONL corrupt-line skip.
            corrupt += 1;
            continue;
        }
        match kind {
            RECORD_PUT => match decode_put_payload(payload) {
                Some((key, stored)) => {
                    *replayed += 1;
                    entries.insert(key, stored);
                }
                None => corrupt += 1,
            },
            RECORD_TOMBSTONE => match Reader::new(payload).str() {
                Some(key) => {
                    *replayed += 1;
                    entries.remove(&key);
                }
                None => corrupt += 1,
            },
            _ => corrupt += 1,
        }
    }
    if corrupt == 0 {
        ShardEnd::Clean
    } else {
        ShardEnd::Corrupt(corrupt)
    }
}

// ---------------------------------------------------------------------
// JSONL codec (legacy + import/export).
// ---------------------------------------------------------------------

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn answer_name(a: Answer) -> &'static str {
    match a {
        Answer::Valid => "valid",
        Answer::Invalid => "invalid",
        Answer::Unknown => "unknown",
    }
}

fn parse_answer(s: &str) -> Option<Answer> {
    match s {
        "valid" => Some(Answer::Valid),
        "invalid" => Some(Answer::Invalid),
        "unknown" => Some(Answer::Unknown),
        _ => None,
    }
}

/// The `(key, usize)` stat fields, in serialization order (wall time
/// and thread count are normalized away before persisting).
const STAT_KEYS: [&str; 17] = [
    "obligations",
    "solver_queries",
    "solver_branches",
    "solver_conflicts",
    "solver_restarts",
    "solver_propagations",
    "theory_props",
    "cache_hits",
    "cache_misses",
    "learned_clauses",
    "interned_terms",
    "symbols",
    "witnesses",
    "rebinds",
    "stability_skips",
    "states",
    "budget_exhausted",
];

fn stat_values(s: &VerifyStats) -> [usize; 17] {
    [
        s.obligations,
        s.solver_queries,
        s.solver_branches,
        s.solver_conflicts,
        s.solver_restarts,
        s.solver_propagations,
        s.theory_props,
        s.cache_hits,
        s.cache_misses,
        s.learned_clauses,
        s.interned_terms,
        s.symbols,
        s.witnesses,
        s.rebinds,
        s.stability_skips,
        s.states,
        s.budget_exhausted,
    ]
}

fn stats_from_values(v: [usize; 17]) -> VerifyStats {
    let mut s = VerifyStats {
        obligations: v[0],
        solver_queries: v[1],
        solver_branches: v[2],
        solver_conflicts: v[3],
        solver_restarts: v[4],
        solver_propagations: v[5],
        theory_props: v[6],
        cache_hits: v[7],
        cache_misses: v[8],
        learned_clauses: v[9],
        interned_terms: v[10],
        symbols: v[11],
        witnesses: v[12],
        rebinds: v[13],
        stability_skips: v[14],
        states: v[15],
        budget_exhausted: v[16],
        ..VerifyStats::default()
    };
    s.wall_nanos = 0;
    s.threads = 0;
    s
}

fn encode_stats(out: &mut String, s: &VerifyStats) {
    out.push('{');
    for (i, (key, v)) in STAT_KEYS.iter().zip(stat_values(s)).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", key, v);
    }
    out.push('}');
}

fn decode_stats(obj: &BTreeMap<String, Json>) -> Option<VerifyStats> {
    let get = |key: &str| -> Option<usize> {
        let n = obj.get(key)?.as_num()?;
        (n >= 0.0 && n.fract() == 0.0).then_some(n as usize)
    };
    let mut values = [0usize; 17];
    for (slot, key) in values.iter_mut().zip(STAT_KEYS) {
        *slot = get(key)?;
    }
    Some(stats_from_values(values))
}

fn encode_strings(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", esc(s));
    }
    out.push(']');
}

fn decode_strings(json: &Json) -> Option<Vec<String>> {
    json.as_arr()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect()
}

fn encode_line(out: &mut String, name: &str, stored: &StoredVerdict) {
    let _ = write!(
        out,
        "{{\"method\":\"{}\",\"fp\":\"{}\",",
        esc(name),
        stored.fingerprint
    );
    match &stored.verdict {
        Verdict::Verified(stats) => {
            out.push_str("\"verdict\":\"verified\",\"stats\":");
            encode_stats(out, stats);
        }
        Verdict::Failed { failures, report } => {
            out.push_str("\"verdict\":\"failed\",\"failures\":[");
            for (i, o) in failures.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"description\":\"{}\",\"outcome\":\"{}\"}}",
                    esc(&o.description),
                    answer_name(o.outcome)
                );
            }
            let _ = write!(
                out,
                "],\"report\":{{\"first_failure\":\"{}\",\"chunks\":",
                esc(&report.first_failure)
            );
            encode_strings(out, &report.chunks);
            out.push_str(",\"path_condition\":");
            encode_strings(out, &report.path_condition);
            out.push_str(",\"hot_queries\":[");
            for (i, q) in report.hot_queries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"description\":\"{}\",\"fuel\":{},\"cache_hit\":{},\"learned\":{},\
                     \"pc_hash\":\"{:016x}\",\"answer\":\"{}\"}}",
                    esc(&q.description),
                    q.fuel,
                    q.cache_hit,
                    q.learned,
                    q.pc_hash,
                    answer_name(q.answer)
                );
            }
            out.push_str("]}");
        }
        // `record` never admits these; encode defensively as a line
        // `decode_line` will reject.
        Verdict::Unknown { .. } | Verdict::CrashedInternal { .. } => {
            out.push_str("\"verdict\":\"unpersistable\"");
        }
    }
    out.push('}');
}

/// One decoded store line: an entry upsert or an evict tombstone
/// (appended by [`VerdictStore::record_durable`] for indefinite
/// verdicts).
enum Line {
    Put(String, StoredVerdict),
    Evict(String),
}

fn decode_any_line(line: &str) -> Option<Line> {
    let json = parse_json(line).ok()?;
    let obj = json.as_obj()?;
    if obj.get("verdict")?.as_str()? == "evict" {
        return Some(Line::Evict(obj.get("method")?.as_str()?.to_string()));
    }
    let (name, stored) = decode_line(line)?;
    Some(Line::Put(name, stored))
}

fn decode_line(line: &str) -> Option<(String, StoredVerdict)> {
    let json = parse_json(line).ok()?;
    let obj = json.as_obj()?;
    let name = obj.get("method")?.as_str()?.to_string();
    let fingerprint = Fingerprint::parse(obj.get("fp")?.as_str()?)?;
    let verdict = match obj.get("verdict")?.as_str()? {
        "verified" => Verdict::Verified(decode_stats(obj.get("stats")?.as_obj()?)?),
        "failed" => {
            let failures = obj
                .get("failures")?
                .as_arr()?
                .iter()
                .map(|f| {
                    let f = f.as_obj()?;
                    Some(Obligation {
                        description: f.get("description")?.as_str()?.to_string(),
                        outcome: parse_answer(f.get("outcome")?.as_str()?)?,
                    })
                })
                .collect::<Option<Vec<Obligation>>>()?;
            let r = obj.get("report")?.as_obj()?;
            let hot_queries = r
                .get("hot_queries")?
                .as_arr()?
                .iter()
                .map(|q| {
                    let q = q.as_obj()?;
                    Some(crate::diag::QueryCost {
                        description: q.get("description")?.as_str()?.to_string(),
                        fuel: q.get("fuel")?.as_num()? as u64,
                        cache_hit: matches!(q.get("cache_hit")?, Json::Bool(true)),
                        learned: q.get("learned")?.as_num()? as u64,
                        pc_hash: u64::from_str_radix(q.get("pc_hash")?.as_str()?, 16).ok()?,
                        answer: parse_answer(q.get("answer")?.as_str()?)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?;
            Verdict::Failed {
                failures,
                report: FailureReport {
                    method: name.clone(),
                    first_failure: r.get("first_failure")?.as_str()?.to_string(),
                    chunks: decode_strings(r.get("chunks")?)?,
                    path_condition: decode_strings(r.get("path_condition")?)?,
                    hot_queries,
                },
            }
        }
        _ => return None,
    };
    Some((
        name,
        StoredVerdict {
            fingerprint,
            verdict,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::QueryCost;
    use crate::exec::UnknownReason;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint { hi: n, lo: !n }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("daenerys-store-{}-{}", tag, std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_failed() -> Verdict {
        Verdict::Failed {
            failures: vec![Obligation {
                description: "postcondition: \"tricky\\path\"\n".to_string(),
                outcome: Answer::Invalid,
            }],
            report: FailureReport {
                // Matches the key the test stores the verdict under:
                // both codecs rebuild `report.method` from the entry's
                // key rather than persisting it twice.
                method: "bad".to_string(),
                first_failure: "[Invalid] postcondition".to_string(),
                chunks: vec!["acc(c.val, 1) ↦ $v0".to_string()],
                path_condition: vec!["0 < $n".to_string()],
                hot_queries: vec![QueryCost {
                    description: "postcondition".to_string(),
                    fuel: 3,
                    cache_hit: false,
                    learned: 1,
                    pc_hash: u64::MAX,
                    answer: Answer::Invalid,
                }],
            },
        }
    }

    #[test]
    fn fresh_stores_default_to_daes1_and_legacy_files_detect_jsonl() {
        let dir = temp_dir("detect");
        assert_eq!(VerdictStore::detect_format(&dir), StoreFormat::Daes1);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(VerdictStore::FILE_NAME), "").unwrap();
        assert_eq!(VerdictStore::detect_format(&dir), StoreFormat::Jsonl);
        // Shards outrank the legacy file once both exist.
        fs::write(dir.join(VerdictStore::shard_file_name(3)), "").unwrap();
        assert_eq!(VerdictStore::detect_format(&dir), StoreFormat::Daes1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn roundtrips_verified_and_failed() {
        for format in [StoreFormat::Daes1, StoreFormat::Jsonl] {
            let dir = temp_dir(&format!("roundtrip-{}", format.name()));
            let mut store = VerdictStore::open_with(&dir, format);
            let stats = VerifyStats {
                obligations: 2,
                solver_queries: 5,
                learned_clauses: 1,
                wall_nanos: 999,
                threads: 4,
                ..VerifyStats::default()
            };
            assert!(store.record("ok", fp(1), &Verdict::Verified(stats.clone())));
            assert!(store.record("bad", fp(2), &sample_failed()));
            store.save().unwrap();

            let reloaded = VerdictStore::open(&dir);
            assert_eq!(reloaded.format(), format, "saved format is detected");
            assert_eq!(reloaded.len(), 2);
            assert_eq!(
                reloaded.lookup("ok", fp(1)),
                Some(&Verdict::Verified(stats.normalized())),
                "stats are persisted normalized"
            );
            assert_eq!(reloaded.lookup("bad", fp(2)), Some(&sample_failed()));
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn fingerprint_mismatch_misses() {
        let dir = temp_dir("mismatch");
        let mut store = VerdictStore::open(&dir);
        store.record("m", fp(1), &Verdict::Verified(VerifyStats::default()));
        assert!(store.lookup("m", fp(1)).is_some());
        assert!(store.lookup("m", fp(9)).is_none());
        assert!(store.lookup("other", fp(1)).is_none());
    }

    #[test]
    fn indefinite_verdicts_are_never_persisted_and_evict() {
        let dir = temp_dir("indefinite");
        let mut store = VerdictStore::open(&dir);
        store.record("m", fp(1), &Verdict::Verified(VerifyStats::default()));
        assert!(!store.record(
            "m",
            fp(1),
            &Verdict::Unknown {
                reason: UnknownReason::OutOfFragment {
                    detail: "x".to_string()
                },
                failures: Vec::new(),
                report: FailureReport::default(),
            },
        ));
        assert!(
            store.lookup("m", fp(1)).is_none(),
            "an indefinite outcome evicts the stale definite entry"
        );
        assert!(!store.record(
            "m",
            fp(1),
            &Verdict::CrashedInternal {
                message: "boom".to_string()
            },
        ));
        assert!(store.is_empty());
    }

    #[test]
    fn corrupt_lines_are_tolerated() {
        let dir = temp_dir("corrupt");
        let mut store = VerdictStore::open_with(&dir, StoreFormat::Jsonl);
        store.record("keep", fp(7), &Verdict::Verified(VerifyStats::default()));
        store.save().unwrap();
        let path = dir.join(VerdictStore::FILE_NAME);
        let mut text = fs::read_to_string(&path).unwrap();
        text.insert_str(0, "not json at all\n{\"method\":\"half\"\n\n");
        text.push_str("{\"method\":\"x\",\"fp\":\"zz\",\"verdict\":\"verified\"}\n");
        fs::write(&path, text).unwrap();
        let reloaded = VerdictStore::open(&dir);
        assert_eq!(reloaded.format(), StoreFormat::Jsonl);
        assert_eq!(reloaded.len(), 1);
        assert!(reloaded.lookup("keep", fp(7)).is_some());
        assert_eq!(reloaded.corrupt_lines(), 3);
        assert!(
            !reloaded.truncated_tail(),
            "file ends in a newline, so the tail is complete"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_skipped_and_counted() {
        let dir = temp_dir("truncated");
        let mut store = VerdictStore::open_with(&dir, StoreFormat::Jsonl);
        store.record("keep", fp(7), &Verdict::Verified(VerifyStats::default()));
        store.save().unwrap();
        let path = dir.join(VerdictStore::FILE_NAME);
        let mut text = fs::read_to_string(&path).unwrap();
        // A crash mid-append: the final line is cut off with no newline.
        text.push_str("{\"method\":\"half\",\"fp\":\"dead");
        fs::write(&path, text).unwrap();
        let reloaded = VerdictStore::open(&dir);
        assert!(reloaded.lookup("keep", fp(7)).is_some());
        assert_eq!(reloaded.corrupt_lines(), 1);
        assert!(reloaded.truncated_tail());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_payload_corruption_is_skipped_and_counted() {
        let dir = temp_dir("shard-corrupt");
        let mut store = VerdictStore::open(&dir);
        assert_eq!(store.format(), StoreFormat::Daes1);
        store
            .record_durable("keep", fp(7), &Verdict::Verified(VerifyStats::default()))
            .unwrap();
        store
            .record_durable("bad", fp(2), &sample_failed())
            .unwrap();
        drop(store);
        // Flip one byte inside the *last* record's payload of each
        // non-empty shard file: framing stays intact, the checksum
        // catches the rot, and only that record is lost.
        let mut flipped = 0;
        for i in 0..VerdictStore::SHARD_COUNT {
            let path = dir.join(VerdictStore::shard_file_name(i));
            let Ok(mut bytes) = fs::read(&path) else {
                continue;
            };
            if bytes.len() > SHARD_HEADER_LEN + FRAME_HEADER_LEN {
                let last = bytes.len() - 1;
                bytes[last] ^= 0xff;
                fs::write(&path, bytes).unwrap();
                flipped += 1;
            }
        }
        assert!(flipped >= 1, "at least one shard held a record");
        let reloaded = VerdictStore::open(&dir);
        assert_eq!(reloaded.corrupt_lines(), flipped);
        assert!(
            !reloaded.truncated_tail(),
            "mid-record rot is corruption, not truncation"
        );
        assert!(
            reloaded.len() < 2,
            "each flipped shard lost exactly its damaged record"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_truncated_tail_is_skipped_and_counted() {
        let dir = temp_dir("shard-truncate");
        let mut store = VerdictStore::open(&dir);
        store
            .record_durable("keep", fp(7), &Verdict::Verified(VerifyStats::default()))
            .unwrap();
        drop(store);
        let shard = shard_of("keep");
        let path = dir.join(VerdictStore::shard_file_name(shard));
        let mut bytes = fs::read(&path).unwrap();
        // Append a frame whose declared payload never arrives — a
        // crash between the frame header and the payload write.
        let frame = encode_frame(RECORD_PUT, b"payload that will be cut");
        bytes.extend_from_slice(&frame[..frame.len() - 10]);
        fs::write(&path, &bytes).unwrap();
        let reloaded = VerdictStore::open(&dir);
        assert!(
            reloaded.lookup("keep", fp(7)).is_some(),
            "records before the cut survive"
        );
        assert_eq!(reloaded.corrupt_lines(), 1);
        assert!(reloaded.truncated_tail());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_header_damage_loses_only_that_shard() {
        let dir = temp_dir("shard-header");
        let mut store = VerdictStore::open(&dir);
        store.record("a", fp(1), &Verdict::Verified(VerifyStats::default()));
        store.record("b", fp(2), &Verdict::Verified(VerifyStats::default()));
        store.save().unwrap();
        let shard = shard_of("a");
        let path = dir.join(VerdictStore::shard_file_name(shard));
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xff; // break the magic
        fs::write(&path, &bytes).unwrap();
        let reloaded = VerdictStore::open(&dir);
        assert!(reloaded.lookup("a", fp(1)).is_none());
        assert_eq!(reloaded.corrupt_lines(), 1, "one skip per damaged shard");
        if shard_of("b") != shard {
            assert!(reloaded.lookup("b", fp(2)).is_some(), "other shards load");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_appends_survive_reopen_without_save() {
        for format in [StoreFormat::Daes1, StoreFormat::Jsonl] {
            let dir = temp_dir(&format!("durable-{}", format.name()));
            let mut store = VerdictStore::open_with(&dir, format);
            assert!(store
                .record_durable("ok", fp(1), &Verdict::Verified(VerifyStats::default()))
                .unwrap());
            assert!(store
                .record_durable("bad", fp(2), &sample_failed())
                .unwrap());
            drop(store); // no save(): the appends alone must persist
            let reloaded = VerdictStore::open(&dir);
            assert_eq!(reloaded.format(), format);
            assert_eq!(reloaded.len(), 2);
            assert!(reloaded.lookup("ok", fp(1)).is_some());
            assert_eq!(reloaded.lookup("bad", fp(2)), Some(&sample_failed()));
            assert_eq!(reloaded.corrupt_lines(), 0);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn durable_evict_tombstones_replay_last_wins() {
        for format in [StoreFormat::Daes1, StoreFormat::Jsonl] {
            let dir = temp_dir(&format!("tombstone-{}", format.name()));
            let mut store = VerdictStore::open_with(&dir, format);
            store
                .record_durable("m", fp(1), &Verdict::Verified(VerifyStats::default()))
                .unwrap();
            assert!(!store
                .record_durable(
                    "m",
                    fp(1),
                    &Verdict::CrashedInternal {
                        message: "boom".to_string(),
                    },
                )
                .unwrap());
            drop(store);
            let reloaded = VerdictStore::open(&dir);
            assert!(
                reloaded.lookup("m", fp(1)).is_none(),
                "the appended tombstone evicts the earlier entry on replay"
            );
            assert_eq!(
                reloaded.corrupt_lines(),
                0,
                "a tombstone is a decodable record, not corruption"
            );
            assert_eq!(
                reloaded.dead_records(),
                2,
                "the put and its tombstone are both dead weight on disk"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn later_lines_win() {
        let dir = temp_dir("lastwins");
        fs::create_dir_all(&dir).unwrap();
        let mut text = String::new();
        encode_line(
            &mut text,
            "m",
            &StoredVerdict {
                fingerprint: fp(1),
                verdict: Verdict::Verified(VerifyStats::default()),
            },
        );
        text.push('\n');
        encode_line(
            &mut text,
            "m",
            &StoredVerdict {
                fingerprint: fp(2),
                verdict: Verdict::Verified(VerifyStats::default()),
            },
        );
        text.push('\n');
        fs::write(dir.join(VerdictStore::FILE_NAME), text).unwrap();
        let store = VerdictStore::open(&dir);
        assert_eq!(store.format(), StoreFormat::Jsonl);
        assert!(store.lookup("m", fp(1)).is_none());
        assert!(store.lookup("m", fp(2)).is_some());
        assert_eq!(store.dead_records(), 1, "the buried line counts as dead");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_debt_triggers_auto_compaction() {
        for format in [StoreFormat::Daes1, StoreFormat::Jsonl] {
            let dir = temp_dir(&format!("compact-{}", format.name()));
            let mut store = VerdictStore::open_with(&dir, format);
            // Re-record one method far past the compaction threshold:
            // without compaction the log would hold every version.
            for round in 0..(COMPACT_MIN_DEAD * 3) as u64 {
                store
                    .record_durable("m", fp(round), &Verdict::Verified(VerifyStats::default()))
                    .unwrap();
            }
            assert!(
                store.dead_records() <= COMPACT_MIN_DEAD + 1,
                "debt was reclaimed (left: {})",
                store.dead_records()
            );
            drop(store);
            let reloaded = VerdictStore::open(&dir);
            assert_eq!(reloaded.len(), 1);
            assert!(
                reloaded.dead_records() <= COMPACT_MIN_DEAD + 1,
                "the on-disk log was compacted (dead: {})",
                reloaded.dead_records()
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn migration_roundtrip_is_bit_identical() {
        let dir = temp_dir("migrate");
        // Start from a legacy JSONL store with both verdict shapes.
        let mut store = VerdictStore::open_with(&dir, StoreFormat::Jsonl);
        store.record("ok", fp(1), &Verdict::Verified(VerifyStats::default()));
        store.record("bad", fp(2), &sample_failed());
        store.save().unwrap();
        let original = fs::read_to_string(dir.join(VerdictStore::FILE_NAME)).unwrap();

        let migrated = VerdictStore::migrate(&dir, StoreFormat::Daes1).unwrap();
        assert_eq!(migrated.format(), StoreFormat::Daes1);
        assert!(
            !dir.join(VerdictStore::FILE_NAME).exists(),
            "the source file is removed so detection is unambiguous"
        );
        let daes = VerdictStore::open(&dir);
        assert_eq!(daes.format(), StoreFormat::Daes1);
        assert_eq!(daes.len(), 2);
        assert_eq!(daes.lookup("bad", fp(2)), Some(&sample_failed()));

        let back = VerdictStore::migrate(&dir, StoreFormat::Jsonl).unwrap();
        assert_eq!(back.format(), StoreFormat::Jsonl);
        for i in 0..VerdictStore::SHARD_COUNT {
            assert!(!dir.join(VerdictStore::shard_file_name(i)).exists());
        }
        let roundtripped = fs::read_to_string(dir.join(VerdictStore::FILE_NAME)).unwrap();
        assert_eq!(
            original, roundtripped,
            "JSONL → DAES1 → JSONL reproduces the file bit for bit"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn graph_rides_along_with_the_store() {
        let dir = temp_dir("graph");
        let program = crate::parser::parse_program(
            "method a(n: Int) returns (r: Int) requires n >= 0 ensures r >= 0 { r := n }",
        )
        .unwrap();
        let mut store = VerdictStore::open(&dir);
        assert!(store.graph().is_empty());
        store.absorb_graph(&DepGraph::of_program(&program));
        store.persist_graph().unwrap();
        let reloaded = VerdictStore::open(&dir);
        assert_eq!(reloaded.graph().len(), 1);
        assert!(reloaded.graph().node("a").is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
